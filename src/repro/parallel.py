"""Deterministic multiprocess fan-out for independent simulation runs.

Every simulated run in this repository owns a private
:class:`~repro.sim.clock.VirtualClock`, so runs are embarrassingly
parallel across seeds, configs, stores, and crash labels — the only
shared state between two experiment units is the Python interpreter
itself.  This module exploits that: :func:`parallel_map` executes a
list of *spawn-safe task descriptors* (a module-level function plus a
tuple of picklable arguments) across a bounded pool of worker
processes and returns the results **in task order**.

The determinism contract
------------------------

``parallel_map(fn, tasks, jobs=N)`` returns byte-identical results for
every ``N``:

* each task is one self-contained simulation (it builds its own store
  and clock from its arguments — nothing is shared, nothing is
  inherited from a sibling task);
* results come back via pickle, which round-trips floats, ints, and
  bytes exactly;
* results are collected in task order, never completion order, so any
  downstream merge (``LatencyHistogram.merge`` /
  ``merge_registries`` / JSON serialization) sees the same sequence a
  serial loop would produce.

``jobs <= 1`` short-circuits to a plain in-process loop — the trivial
proof of the contract's base case, and the path every test of record
runs by default.

Workers are seeded by their task arguments alone: all randomness in an
experiment unit flows from explicit seeds in the descriptor, so a task
behaves identically no matter which worker (or how many siblings) runs
it.  Workers force ``REPRO_JOBS=1`` so a unit that itself calls
:func:`parallel_map` (for example an experiment invoked by the
``figs`` driver) runs serially instead of forking a second level of
processes.

The ``spawn`` start method is used unconditionally: forking a live
simulator process could duplicate open state, and spawn keeps behavior
identical across platforms.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["get_jobs", "set_jobs", "parallel_map"]

_ENV_VAR = "REPRO_JOBS"


def get_jobs() -> int:
    """The process-wide worker count (``REPRO_JOBS``, default 1)."""
    try:
        return max(1, int(os.environ.get(_ENV_VAR, "1")))
    except ValueError:
        return 1


def set_jobs(n: int) -> None:
    """Set the process-wide worker count (exported via ``REPRO_JOBS``)."""
    if n < 1:
        raise ValueError(f"jobs must be >= 1: {n}")
    os.environ[_ENV_VAR] = str(n)


def _init_worker() -> None:
    # Workers never nest: a unit that fans out internally runs serial.
    os.environ[_ENV_VAR] = "1"


def _invoke(job: Tuple[Callable, tuple]) -> object:
    fn, args = job
    return fn(*args)


def parallel_map(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: Optional[int] = None,
) -> List[object]:
    """Run ``fn(*task)`` for every task; results in task order.

    ``fn`` must be a module-level function and every task a tuple of
    picklable arguments (the spawn-safe task descriptor).  With
    ``jobs`` (default: :func:`get_jobs`) at 1 — or a single task —
    everything runs in-process, with no pickling and no pool.

    A worker exception propagates to the caller (the pool is torn
    down; remaining results are discarded), matching the serial loop's
    fail-fast behavior.
    """
    tasks = list(tasks)
    jobs = get_jobs() if jobs is None else max(1, int(jobs))
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    ctx = multiprocessing.get_context("spawn")
    workers = min(jobs, len(tasks))
    with ctx.Pool(workers, initializer=_init_worker) as pool:
        # map (not imap_unordered): ordered collection is what makes
        # merged output byte-identical to the serial loop.
        return pool.map(_invoke, [(fn, task) for task in tasks], chunksize=1)
