"""Elasticity experiment: scale out (and in) under live traffic.

The question this answers: can the cluster change membership *while
serving* without breaking its consistency contract or its tail?

Two runs on identically preloaded RF=2 quorum clusters driving
uniform YCSB-A:

* **scale-out** — a fourth shard joins at 25% of the ops; the
  background migrator streams the affected keys to it under the
  bandwidth budget while the workload keeps running;
* **scale-in** — shard 1 drains and retires at 25% of the ops, its
  keys streaming to the survivors.

Acceptance gates (:func:`check_rebalance`):

* **zero lost acked writes and zero stale reads after cutover** — the
  :class:`~repro.cluster.runner.WriteLedger` audit must come back
  clean (``lost_acked == 0 and wrong_value == 0``);
* **bounded blip** — read p99 *during* the migration window must stay
  within ``blip_factor`` (default 2×) of the steady-state read p99 of
  the same run;
* **time-to-rebalance recorded** — the migration must complete and
  report its cutover/duration in the metrics JSON
  (``rebalance.time_to_rebalance_seconds``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.cluster import YCSB_A_UNIFORM, _build
from repro.bench.experiments import scaled
from repro.parallel import parallel_map
from repro.cluster.runner import (
    ClusterRunResult,
    RebalancePlan,
    run_cluster_workload,
)

# The per-run migration budget: small enough that the copy stream
# genuinely overlaps with client traffic (the dual-read window is
# exercised), large enough that the run finishes it.
REBALANCE_BANDWIDTH = 256.0 * 1024


def cluster_rebalance(
    num_shards: int = 3,
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    clients_per_shard: int = 4,
    at_fraction: float = 0.25,
    bandwidth: float = REBALANCE_BANDWIDTH,
    replication_mode: str = "quorum",
) -> Dict[str, ClusterRunResult]:
    """YCSB-A with a mid-run scale-out and a mid-run scale-in.

    Returns ``{"scale_out": ..., "scale_in": ...}`` — each an audited
    :class:`ClusterRunResult` whose ``rebalance`` dict carries the
    migration outcome and phase-split read p99s.
    """
    num_keys = num_keys if num_keys is not None else scaled(8_000)
    num_ops = num_ops if num_ops is not None else scaled(16_000)
    plans = [
        RebalancePlan(
            action="add", at_fraction=at_fraction, bandwidth=bandwidth
        ),
        RebalancePlan(
            action="remove",
            shard_id=1,
            at_fraction=at_fraction,
            bandwidth=bandwidth,
        ),
    ]
    scale_out, scale_in = parallel_map(
        _rebalance_leg,
        [
            (
                plan, num_shards, replication_mode, num_keys, num_ops,
                clients_per_shard,
            )
            for plan in plans
        ],
    )
    return {"scale_out": scale_out, "scale_in": scale_in}


def _rebalance_leg(
    plan: RebalancePlan,
    num_shards: int,
    replication_mode: str,
    num_keys: int,
    num_ops: int,
    clients_per_shard: int,
) -> ClusterRunResult:
    cluster = _build(num_shards, 2, replication_mode, num_keys)
    result = run_cluster_workload(
        cluster,
        YCSB_A_UNIFORM,
        num_ops,
        num_keys,
        clients_per_shard=clients_per_shard,
        seed=5,
        rebalance_plan=plan,
    )
    cluster.close()
    return result


def check_rebalance(
    result: ClusterRunResult, blip_factor: float = 2.0
) -> Tuple[bool, str]:
    """The elasticity acceptance gate for one rebalance run."""
    problems = []
    reb = result.rebalance
    if not reb:
        return False, "rebalance never triggered"
    lost = result.audit.get("lost_acked")
    wrong = result.audit.get("wrong_value")
    if lost != 0:
        problems.append(f"{lost} acked writes lost")
    if wrong:
        problems.append(f"{wrong} stale/wrong final values")
    if not reb.get("completed"):
        problems.append("migration never completed")
    if reb.get("aborted"):
        problems.append("migration aborted")
    if reb.get("keys_lost"):
        problems.append(f"{reb['keys_lost']} keys lost in migration")
    steady = float(reb.get("read_p99_steady", 0.0))
    migr = float(reb.get("read_p99_migrating", 0.0))
    if reb.get("reads_migrating", 0) and steady > 0.0:
        ratio = migr / steady
        if ratio > blip_factor:
            problems.append(
                f"read p99 blip {ratio:.2f}x exceeds {blip_factor:g}x"
            )
    else:
        ratio = 0.0
    ttr = reb.get("time_to_rebalance")
    if ttr is None:
        problems.append("time-to-rebalance not recorded")
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"{reb['action']}: zero lost acked writes over "
        f"{result.audit.get('keys_checked', 0)} keys; "
        f"{reb.get('keys_moved', 0)} keys moved in {float(ttr):.6f}s virtual; "
        f"migration-window read p99 {ratio:.2f}x steady (gate: <= {blip_factor:g}x)"
    )
