"""Virtual-threaded workload execution.

The driver keeps a heap of virtual threads ordered by their local
clocks and always advances the earliest one, so operations from
different threads interleave in virtual time exactly as their
latencies dictate — that interleaving is what feeds contention into
the shared resources (device channels, locks, IO rings, the thread
combiner).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import DeviceSampler
from repro.sim.stats import LatencyRecorder, Timeline
from repro.sim.vthread import VThread
from repro.workloads.generator import InsertSequence, Op, OpStream, make_key, make_value
from repro.workloads.ycsb import WorkloadSpec

# Target number of device-state samples per run; the driver converts
# this into an every-N-ops cadence so short and long runs both get a
# usable timeseries without unbounded memory.
SAMPLE_POINTS = 128


@dataclass
class RunResult:
    """Everything one workload execution produced."""

    store_name: str
    workload: str
    ops: int
    duration: float  # virtual seconds
    latency: LatencyRecorder
    per_kind: Dict[str, LatencyRecorder]
    waf: float
    stats: Dict[str, float] = field(default_factory=dict)
    timeline: Optional[Timeline] = None
    metrics: Optional[Dict[str, object]] = None

    def histogram(self, name: str) -> Dict[str, object]:
        """A recorded histogram summary (e.g. ``op.all``) by name."""
        if not self.metrics:
            raise KeyError(f"run carries no metrics (wanted {name!r})")
        return self.metrics["histograms"][name]

    @property
    def throughput(self) -> float:
        """Operations per virtual second."""
        if self.duration <= 0:
            return 0.0
        return self.ops / self.duration

    @property
    def mops(self) -> float:
        return self.throughput / 1e6

    @property
    def kops(self) -> float:
        return self.throughput / 1e3

    def summary(self) -> str:
        return (
            f"{self.store_name:12} {self.workload:8} "
            f"{self.kops:10.1f} Kops/s  "
            f"avg {self.latency.average():8.1f}us  "
            f"p50 {self.latency.median():8.1f}us  "
            f"p99 {self.latency.p99():8.1f}us  "
            f"waf {self.waf:5.2f}"
        )


def _make_threads(store, count: int) -> List[VThread]:
    now = store.clock.now
    threads = []
    for tid in range(count):
        thread = VThread(tid, store.clock, name=f"app-{tid}")
        thread.now = now
        threads.append(thread)
    return threads


def preload(
    store,
    num_keys: int,
    value_size: int = 1024,
    num_threads: int = 1,
    seed: int = 1,
) -> None:
    """Load the dataset in random order (the paper's LOAD phase),
    without recording metrics."""
    threads = _make_threads(store, num_threads)
    seq = InsertSequence(0, shuffle_span=min(num_keys, 4096), seed=seed)
    heap = [(t.now, i) for i, t in enumerate(threads)]
    heapq.heapify(heap)
    # Honour the "without recording metrics" contract literally: a
    # store with phase tracing enabled gets the null registry for the
    # duration of the load, which also makes preloading large datasets
    # noticeably faster.  Metrics never touch virtual time, so the
    # loaded state is bit-identical either way.
    own = getattr(store, "metrics", None)
    if own is not None and own.enabled:
        store.metrics = NULL_REGISTRY
    else:
        own = None
    heappop = heapq.heappop
    heappush = heapq.heappush
    put = store.put
    seq_next = seq.next
    try:
        for _ in range(num_keys):
            _, i = heappop(heap)
            thread = threads[i]
            key = make_key(seq_next())
            put(key, make_value(key, value_size), thread)
            heappush(heap, (thread.now, i))
    finally:
        if own is not None:
            store.metrics = own


def run_workload(
    store,
    spec: WorkloadSpec,
    num_ops: int,
    num_keys: int,
    num_threads: int = 4,
    value_size: int = 1024,
    theta: float = 0.99,
    seed: int = 2,
    timeline_bucket: Optional[float] = None,
    warmup_ops: int = 0,
    collect_metrics: bool = True,
) -> RunResult:
    """Execute ``num_ops`` of ``spec`` against a loaded store.

    ``warmup_ops`` are executed first without being recorded, so the
    measured window reflects steady-state cache contents.  Stream seeds
    mix in the workload name so back-to-back runs on one store do not
    replay identical key sequences (which would make every cache look
    perfect).

    With ``collect_metrics`` (the default) the run gets a fresh
    :class:`MetricsRegistry`: per-op latency histograms (``op.all``
    plus ``op.<kind>``), periodic device samples (per-SSD queue depth
    and utilization, NVM flush traffic, PWB occupancy), and the store's
    structured GC/reclaim events from the measured window.  If the
    store itself traces phases (``enable_metrics``), its registry is
    swapped for the per-run one so phase histograms land in the same
    snapshot.  Collection only reads virtual time — results are
    bit-identical either way.
    """
    if num_ops < 1:
        raise ValueError(f"need at least one op: {num_ops}")
    threads = _make_threads(store, num_threads)
    insert_seq = (
        InsertSequence(0, shuffle_span=4096, seed=seed)
        if spec.name == "LOAD"
        else None
    )
    mixed_seed = zlib.crc32(f"{seed}:{spec.name}".encode())
    streams = [
        OpStream(
            spec,
            num_keys,
            value_size=value_size,
            theta=theta,
            seed=mixed_seed + i,
            insert_seq=insert_seq,
        )
        for i in range(num_threads)
    ]
    if warmup_ops:
        warm_iters = [
            streams[i].ops(warmup_ops // num_threads) for i in range(num_threads)
        ]
        heap = [(t.now, i) for i, t in enumerate(threads)]
        heapq.heapify(heap)
        live = set(range(num_threads))
        while live:
            _, i = heapq.heappop(heap)
            if i not in live:
                continue
            op = next(warm_iters[i], None)
            if op is None:
                live.discard(i)
                continue
            _execute(store, op, threads[i])
            heapq.heappush(heap, (threads[i].now, i))
    base = num_ops // num_threads
    extra = num_ops % num_threads
    iters = [
        streams[i].ops(base + (1 if i < extra else 0)) for i in range(num_threads)
    ]
    latency = LatencyRecorder("all")
    per_kind: Dict[str, LatencyRecorder] = {}
    timeline = Timeline(timeline_bucket) if timeline_bucket else None
    registry: Optional[MetricsRegistry] = None
    sampler: Optional[DeviceSampler] = None
    restore_store_registry = None
    sample_every = 0
    if collect_metrics:
        registry = MetricsRegistry()
        own = getattr(store, "metrics", None)
        if own is not None and own.enabled:
            # Phase tracing is on: point the store at the per-run
            # registry so phases and op latencies share one snapshot.
            restore_store_registry = own
            store.metrics = registry
        sampler = DeviceSampler(registry, store)
        sample_every = max(1, num_ops // SAMPLE_POINTS)
    start = max(t.now for t in threads)
    executed = 0
    heap = [(t.now, i) for i, t in enumerate(threads)]
    heapq.heapify(heap)
    live = set(range(num_threads))
    ssd_written_before = store.ssd_bytes_written()
    bytes_put_before = store.bytes_put
    if sampler is not None:
        sampler.sample(start)
    # Per-op instruments resolved once, outside the loop: the old
    # ``setdefault(kind, LatencyRecorder(kind))`` built (and discarded)
    # a recorder on *every* op, and the registry f-string lookups ran
    # per op as well.
    hist_all = registry.histogram("op.all") if registry is not None else None
    kind_hists: Dict[str, object] = {}
    heappop = heapq.heappop
    heappush = heapq.heappush
    # The measured loop runs once per simulated op; the dispatch of
    # _execute is inlined and the per-op sinks (sample list append +
    # histogram record, resolved per kind) are bound outside the loop.
    # elapsed is non-negative by clock monotonicity, so the recorders'
    # guard is skipped by appending to the sample lists directly.
    store_get = store.get
    store_put = store.put
    latency_append = latency.samples.append
    hist_all_record = hist_all.record if hist_all is not None else None
    kind_sinks: Dict[str, tuple] = {}
    try:
        while live:
            _, i = heappop(heap)
            if i not in live:
                continue
            thread = threads[i]
            op = next(iters[i], None)
            if op is None:
                live.discard(i)
                continue
            kind = op.kind
            before = thread.now
            if kind == "read":
                store_get(op.key, thread)
            elif kind == "update" or kind == "insert":
                store_put(op.key, op.value, thread)
            elif kind == "scan":
                store.scan(op.key, op.scan_length, thread)
            elif kind == "delete":
                store.delete(op.key, thread)
            else:
                raise ValueError(f"unknown op kind: {kind}")
            elapsed = thread.now - before
            latency_append(elapsed)
            sink = kind_sinks.get(kind)
            if sink is None:
                recorder = per_kind.get(kind)
                if recorder is None:
                    recorder = per_kind[kind] = LatencyRecorder(kind)
                kind_hist = None
                if hist_all_record is not None:
                    kind_hist = kind_hists.get(kind)
                    if kind_hist is None:
                        kind_hist = kind_hists[kind] = registry.histogram(
                            f"op.{kind}"
                        )
                sink = kind_sinks[kind] = (
                    recorder.samples.append,
                    kind_hist.record if kind_hist is not None else None,
                )
            sink[0](elapsed)
            if hist_all_record is not None:
                hist_all_record(elapsed)
                sink[1](elapsed)
            if timeline is not None:
                timeline.record(thread.now - start)
            executed += 1
            if sampler is not None and executed % sample_every == 0:
                sampler.sample(thread.now)
            heappush(heap, (thread.now, i))
    finally:
        if restore_store_registry is not None:
            store.metrics = restore_store_registry
    duration = max(t.now for t in threads) - start
    new_put = store.bytes_put - bytes_put_before
    new_ssd = store.ssd_bytes_written() - ssd_written_before
    waf = (new_ssd / new_put) if new_put else 0.0
    if timeline is not None:
        for at in getattr(store, "gc_events", []):
            if at >= start:
                timeline.mark(at - start, "gc")
    metrics_dict: Optional[Dict[str, object]] = None
    if registry is not None:
        if sampler is not None:
            sampler.sample(start + duration)
        store_events = getattr(store, "events", None)
        if store_events is not None:
            for event in getattr(store_events, "events", []):
                if event["at"] >= start:
                    registry.events(str(event["kind"])).events.append(dict(event))
        registry.gauge("ops").set(executed)
        registry.gauge("duration_s").set(duration)
        if duration > 0:
            registry.gauge("throughput_ops").set(executed / duration)
        registry.gauge("waf").set(waf)
        for key, value in store.stats().items():
            registry.gauge(f"stats.{key}").set(value)
        metrics_dict = registry.to_dict()
    return RunResult(
        store_name=store.name,
        workload=spec.name,
        ops=executed,
        duration=duration,
        latency=latency,
        per_kind=per_kind,
        waf=waf,
        stats=store.stats(),
        timeline=timeline,
        metrics=metrics_dict,
    )


def _execute(store, op: Op, thread: VThread) -> None:
    if op.kind == "read":
        store.get(op.key, thread)
    elif op.kind in ("update", "insert"):
        store.put(op.key, op.value, thread)
    elif op.kind == "scan":
        store.scan(op.key, op.scan_length, thread)
    elif op.kind == "delete":
        store.delete(op.key, thread)
    else:
        raise ValueError(f"unknown op kind: {op.kind}")
