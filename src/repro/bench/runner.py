"""Virtual-threaded workload execution.

The driver keeps a heap of virtual threads ordered by their local
clocks and always advances the earliest one, so operations from
different threads interleave in virtual time exactly as their
latencies dictate — that interleaving is what feeds contention into
the shared resources (device channels, locks, IO rings, the thread
combiner).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.stats import LatencyRecorder, Timeline
from repro.sim.vthread import VThread
from repro.workloads.generator import InsertSequence, Op, OpStream, make_key, make_value
from repro.workloads.ycsb import WorkloadSpec


@dataclass
class RunResult:
    """Everything one workload execution produced."""

    store_name: str
    workload: str
    ops: int
    duration: float  # virtual seconds
    latency: LatencyRecorder
    per_kind: Dict[str, LatencyRecorder]
    waf: float
    stats: Dict[str, float] = field(default_factory=dict)
    timeline: Optional[Timeline] = None

    @property
    def throughput(self) -> float:
        """Operations per virtual second."""
        if self.duration <= 0:
            return 0.0
        return self.ops / self.duration

    @property
    def mops(self) -> float:
        return self.throughput / 1e6

    @property
    def kops(self) -> float:
        return self.throughput / 1e3

    def summary(self) -> str:
        return (
            f"{self.store_name:12} {self.workload:8} "
            f"{self.kops:10.1f} Kops/s  "
            f"avg {self.latency.average():8.1f}us  "
            f"p50 {self.latency.median():8.1f}us  "
            f"p99 {self.latency.p99():8.1f}us  "
            f"waf {self.waf:5.2f}"
        )


def _make_threads(store, count: int) -> List[VThread]:
    now = store.clock.now
    threads = []
    for tid in range(count):
        thread = VThread(tid, store.clock, name=f"app-{tid}")
        thread.now = now
        threads.append(thread)
    return threads


def preload(
    store,
    num_keys: int,
    value_size: int = 1024,
    num_threads: int = 1,
    seed: int = 1,
) -> None:
    """Load the dataset in random order (the paper's LOAD phase),
    without recording metrics."""
    threads = _make_threads(store, num_threads)
    seq = InsertSequence(0, shuffle_span=min(num_keys, 4096), seed=seed)
    heap = [(t.now, i) for i, t in enumerate(threads)]
    heapq.heapify(heap)
    for _ in range(num_keys):
        _, i = heapq.heappop(heap)
        thread = threads[i]
        key = make_key(seq.next())
        store.put(key, make_value(key, value_size), thread)
        heapq.heappush(heap, (thread.now, i))


def run_workload(
    store,
    spec: WorkloadSpec,
    num_ops: int,
    num_keys: int,
    num_threads: int = 4,
    value_size: int = 1024,
    theta: float = 0.99,
    seed: int = 2,
    timeline_bucket: Optional[float] = None,
    warmup_ops: int = 0,
) -> RunResult:
    """Execute ``num_ops`` of ``spec`` against a loaded store.

    ``warmup_ops`` are executed first without being recorded, so the
    measured window reflects steady-state cache contents.  Stream seeds
    mix in the workload name so back-to-back runs on one store do not
    replay identical key sequences (which would make every cache look
    perfect).
    """
    if num_ops < 1:
        raise ValueError(f"need at least one op: {num_ops}")
    threads = _make_threads(store, num_threads)
    insert_seq = (
        InsertSequence(0, shuffle_span=4096, seed=seed)
        if spec.name == "LOAD"
        else None
    )
    mixed_seed = zlib.crc32(f"{seed}:{spec.name}".encode())
    streams = [
        OpStream(
            spec,
            num_keys,
            value_size=value_size,
            theta=theta,
            seed=mixed_seed + i,
            insert_seq=insert_seq,
        )
        for i in range(num_threads)
    ]
    if warmup_ops:
        warm_iters = [
            streams[i].ops(warmup_ops // num_threads) for i in range(num_threads)
        ]
        heap = [(t.now, i) for i, t in enumerate(threads)]
        heapq.heapify(heap)
        live = set(range(num_threads))
        while live:
            _, i = heapq.heappop(heap)
            if i not in live:
                continue
            op = next(warm_iters[i], None)
            if op is None:
                live.discard(i)
                continue
            _execute(store, op, threads[i])
            heapq.heappush(heap, (threads[i].now, i))
    base = num_ops // num_threads
    extra = num_ops % num_threads
    iters = [
        streams[i].ops(base + (1 if i < extra else 0)) for i in range(num_threads)
    ]
    latency = LatencyRecorder("all")
    per_kind: Dict[str, LatencyRecorder] = {}
    timeline = Timeline(timeline_bucket) if timeline_bucket else None
    start = max(t.now for t in threads)
    executed = 0
    heap = [(t.now, i) for i, t in enumerate(threads)]
    heapq.heapify(heap)
    live = set(range(num_threads))
    ssd_written_before = store.ssd_bytes_written()
    bytes_put_before = store.bytes_put
    while live:
        _, i = heapq.heappop(heap)
        if i not in live:
            continue
        thread = threads[i]
        op = next(iters[i], None)
        if op is None:
            live.discard(i)
            continue
        before = thread.now
        _execute(store, op, thread)
        elapsed = thread.now - before
        latency.record(elapsed)
        per_kind.setdefault(op.kind, LatencyRecorder(op.kind)).record(elapsed)
        if timeline is not None:
            timeline.record(thread.now - start)
        executed += 1
        heapq.heappush(heap, (thread.now, i))
    duration = max(t.now for t in threads) - start
    new_put = store.bytes_put - bytes_put_before
    new_ssd = store.ssd_bytes_written() - ssd_written_before
    waf = (new_ssd / new_put) if new_put else 0.0
    if timeline is not None:
        for at in getattr(store, "gc_events", []):
            if at >= start:
                timeline.mark(at - start, "gc")
    return RunResult(
        store_name=store.name,
        workload=spec.name,
        ops=executed,
        duration=duration,
        latency=latency,
        per_kind=per_kind,
        waf=waf,
        stats=store.stats(),
        timeline=timeline,
    )


def _execute(store, op: Op, thread: VThread) -> None:
    if op.kind == "read":
        store.get(op.key, thread)
    elif op.kind in ("update", "insert"):
        store.put(op.key, op.value, thread)
    elif op.kind == "scan":
        store.scan(op.key, op.scan_length, thread)
    elif op.kind == "delete":
        store.delete(op.key, thread)
    else:
        raise ValueError(f"unknown op kind: {op.kind}")
