"""Cluster experiments: throughput scaling and failover under load.

Two questions the serving layer must answer:

* **scaling** — does aggregate throughput grow with shard count?
  Shards share nothing but the virtual clock, so uniform YCSB-C
  (read-only, no hot keys) should scale near-linearly; the acceptance
  gate requires 4 shards ≥ 2.5× the 1-shard aggregate.
* **failover** — with replication factor 2 and quorum acks, killing a
  shard mid-run must lose **zero** acknowledged writes, and the
  background re-replication must complete (recovery time recorded in
  the metrics snapshot).

Both run through :func:`repro.cluster.runner.run_cluster_workload`
with client counts proportional to the cluster (``clients_per_shard``
virtual threads per shard).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bench.experiments import scaled
from repro.bench.runner import preload
from repro.cluster.router import ClusterConfig, PrismCluster
from repro.cluster.runner import ClusterRunResult, KillPlan, run_cluster_workload
from repro.parallel import parallel_map
from repro.workloads.ycsb import WorkloadSpec

# Uniform key choice isolates scaling from skew: a Zipfian hot set
# would concentrate on whichever shard owns the hot keys.
YCSB_C_UNIFORM = WorkloadSpec(
    name="C-uniform", read=1.0, distribution="uniform",
    description="Read-only, uniform keys (scaling probe)",
)
YCSB_A_UNIFORM = WorkloadSpec(
    name="A-uniform", read=0.5, update=0.5, distribution="uniform",
    description="50/50 read/update, uniform keys (failover probe)",
)


def _build(
    num_shards: int,
    replication_factor: int,
    replication_mode: str,
    num_keys: int,
    preload_threads: int = 4,
) -> PrismCluster:
    cluster = PrismCluster(
        ClusterConfig(
            num_shards=num_shards,
            replication_factor=replication_factor,
            replication_mode=replication_mode,
        )
    )
    preload(cluster, num_keys, num_threads=preload_threads, seed=1)
    return cluster


def cluster_scaling(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    clients_per_shard: int = 4,
) -> Dict[int, ClusterRunResult]:
    """Aggregate YCSB-C throughput vs shard count at RF=1."""
    num_keys = num_keys if num_keys is not None else scaled(20_000)
    num_ops = num_ops if num_ops is not None else scaled(40_000)
    units = parallel_map(
        _scaling_unit,
        [
            (shards, num_keys, num_ops, clients_per_shard)
            for shards in shard_counts
        ],
    )
    return dict(zip(shard_counts, units))


def _scaling_unit(
    shards: int, num_keys: int, num_ops: int, clients_per_shard: int
) -> ClusterRunResult:
    cluster = _build(shards, 1, "quorum", num_keys)
    result = run_cluster_workload(
        cluster,
        YCSB_C_UNIFORM,
        num_ops,
        num_keys,
        clients_per_shard=clients_per_shard,
        seed=2,
    )
    cluster.close()
    return result


def cluster_failover(
    num_shards: int = 4,
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    clients_per_shard: int = 4,
    kill_shard: int = 1,
    kill_fraction: float = 0.4,
    replication_mode: str = "quorum",
) -> Tuple[ClusterRunResult, ClusterRunResult]:
    """YCSB-A at RF=2 with and without a mid-run shard death.

    Returns ``(baseline, killed)``: the same workload on identical
    clusters, one undisturbed, one losing ``kill_shard`` at
    ``kill_fraction`` of the ops.
    """
    num_keys = num_keys if num_keys is not None else scaled(10_000)
    num_ops = num_ops if num_ops is not None else scaled(20_000)
    plans = [None, KillPlan(shard_id=kill_shard, at_fraction=kill_fraction)]
    baseline, killed = parallel_map(
        _failover_leg,
        [
            (
                plan, num_shards, replication_mode, num_keys, num_ops,
                clients_per_shard,
            )
            for plan in plans
        ],
    )
    return baseline, killed


def _failover_leg(
    plan: Optional[KillPlan],
    num_shards: int,
    replication_mode: str,
    num_keys: int,
    num_ops: int,
    clients_per_shard: int,
) -> ClusterRunResult:
    cluster = _build(num_shards, 2, replication_mode, num_keys)
    result = run_cluster_workload(
        cluster,
        YCSB_A_UNIFORM,
        num_ops,
        num_keys,
        clients_per_shard=clients_per_shard,
        seed=3,
        kill_plan=plan,
    )
    cluster.close()
    return result


def check_scaling(results: Dict[int, ClusterRunResult]) -> Tuple[bool, str]:
    """The acceptance gate: 4-shard aggregate ≥ 2.5× 1-shard."""
    if 1 not in results or 4 not in results:
        return True, "scaling gate skipped (need 1- and 4-shard runs)"
    base = results[1].throughput
    four = results[4].throughput
    speedup = four / base if base else 0.0
    ok = speedup >= 2.5
    return ok, f"4-shard speedup {speedup:.2f}x (gate: >= 2.5x)"


def check_failover(result: ClusterRunResult) -> Tuple[bool, str]:
    """The acceptance gate: no acked write lost, recovery completed."""
    problems = []
    lost = result.audit.get("lost_acked")
    wrong = result.audit.get("wrong_value")
    if lost != 0:
        problems.append(f"{lost} acked writes lost")
    if wrong:
        problems.append(f"{wrong} wrong final values")
    if result.killed_shard is None:
        problems.append("kill never triggered")
    if result.recovery_seconds is None:
        problems.append("re-replication never ran")
    stats = result.run.stats
    if stats.get("cluster_shards_down") != 1.0:
        problems.append("down-shard count != 1")
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"zero lost acked writes over {result.audit.get('keys_checked', 0)} keys; "
        f"recovery {result.recovery_seconds:.6f}s virtual"
    )
