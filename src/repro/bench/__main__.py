"""Command-line front end for the experiment suite.

Examples::

    python -m repro.bench list
    python -m repro.bench fig7
    python -m repro.bench fig12 --scale 0.5
    python -m repro.bench ablations
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench import experiments as ex
from repro.bench.extensions import media_matrix
from repro.bench.report import (
    latency_table,
    metrics_payload,
    throughput_table,
    write_metrics_json,
)


def _fig7(args):
    results = ex.ycsb_comparison()
    print(throughput_table("Figure 7 — YCSB throughput", results,
                           ("LOAD", "A", "B", "C", "D", "E")))
    print()
    print(latency_table("Table 3 — latency (us)", results, ("A", "C", "E")))
    return results


def _fig8(args):
    results = ex.slmdb_comparison()
    print(throughput_table("Figure 8 — Prism vs SLM-DB", results,
                           ("LOAD", "A", "B", "C", "D", "E")))
    print()
    print(latency_table("Table 4 — latency (us)", results, ("A", "C", "E")))
    return results


def _fig9(args):
    results = ex.skew_sweep()
    thetas = sorted(next(iter(next(iter(results.values())).values())))
    print("Figure 9 — relative throughput vs Zipfian coefficient")
    for store, by_wl in results.items():
        for wl, series in by_wl.items():
            base = series[0.99].throughput
            rel = " ".join(f"{t}:{series[t].throughput / base:5.2f}" for t in thetas)
            print(f"  {store:14} {wl:3} {rel}")
    return results


def _fig10(args):
    big = ex.large_dataset()
    print(throughput_table("Figure 10a — large dataset", big,
                           ("A", "B", "C", "D", "E")))
    nutanix = ex.nutanix_run()
    print("\nFigure 10b — Nutanix mix")
    for name, result in nutanix.items():
        print(f"  {name:8} {result.kops:10.1f} Kops/s")
    return {"large": big, "nutanix": nutanix}


def _fig11(args):
    results = ex.thread_combining_sweep()
    print("Figure 11 — TC vs TA (YCSB-C)")
    print(f"{'QD':>4} {'TC Kops':>10} {'TA Kops':>10} {'TC avg':>8} {'TA avg':>8}")
    for qd in sorted(results["TC"]):
        tc, ta = results["TC"][qd], results["TA"][qd]
        print(f"{qd:>4} {tc.kops:>10.1f} {ta.kops:>10.1f} "
              f"{tc.latency.average():>8.1f} {ta.latency.average():>8.1f}")
    return results


def _fig12(args):
    results = ex.waf_sweep()
    print("Figure 12 — SSD-level WAF vs skew")
    for size, by_store in results.items():
        print(f"\n value size {size} B")
        for store, series in by_store.items():
            row = " ".join(f"{t}:{w:5.2f}" for t, w in sorted(series.items()))
            print(f"  {store:10} {row}")
    return results


def _fig13(args):
    results = ex.ssd_scaling()
    print("Figures 13–14 — #SSD scaling")
    for store, by_wl in results.items():
        for wl, series in by_wl.items():
            row = " ".join(f"{n}:{r.kops:7.1f}" for n, r in sorted(series.items()))
            print(f"  {store:8} {wl:3} {row}  Kops")
    return results


def _fig15(args):
    results = ex.buffer_size_sweep()
    print("Figure 15 — buffer sizing")
    for size, runs in sorted(results["pwb"].items()):
        print(f"  PWB {size >> 20:3}MB  LOAD {runs['LOAD'].kops:8.1f}  "
              f"A {runs['A'].kops:8.1f} Kops")
    for size, runs in sorted(results["svc"].items()):
        print(f"  SVC {size >> 20:3}MB  C {runs['C'].kops:8.1f}  "
              f"E {runs['E'].kops:8.1f} Kops")
    return results


def _fig16(args):
    results = ex.multicore_scalability()
    print("Figure 16 — multicore scalability (Kops)")
    for store, by_wl in results.items():
        for wl, series in by_wl.items():
            row = " ".join(f"{t}:{r.kops:7.1f}" for t, r in sorted(series.items()))
            print(f"  {store:14} {wl:3} {row}")
    return results


def _fig17(args):
    result, store = ex.gc_timeline()
    print("Figure 17 — throughput timeline under GC")
    series = result.timeline.series()
    peak = max(series) if series else 1
    for i, rate in enumerate(series):
        marks = " <- GC" if i in result.timeline.events else ""
        print(f"  {i:4} {'#' * int(40 * rate / peak)}{marks}")
    print(f"  GC runs: {sum(vs.gc_runs for vs in store.storages)}")
    return {"timeline": result}


def _ablations(args):
    results = ex.ablations()
    print("§7.6 — ablations (Kops)")
    for variant, runs in results.items():
        row = " ".join(f"{wl}:{runs[wl].kops:8.1f}" for wl in ("A", "C", "E"))
        print(f"  {variant:18} {row}")
    return results


def _scalars(args):
    space = ex.nvm_space()
    print(f"NVM bytes/key: {space['bytes_per_key']:.1f} (paper ~54)")
    rec = ex.recovery_comparison()
    print(f"recovery: Prism {rec['prism_seconds'] * 1e3:.3f} ms "
          f"vs KVell {rec['kvell_seconds'] * 1e3:.3f} ms")
    return {"nvm_space": space, "recovery": rec}


def _faults(args):
    results = ex.fault_recovery()
    print("Robustness — YCSB-A under injected transient faults")
    print(f"{'rate':>10} {'Kops':>9} {'injected':>9} {'retries':>8} "
          f"{'audit':>6} {'recover(ms)':>12}")
    for label, run in results["runs"].items():
        stats = results["faults"][label]
        print(f"{label:>10} {run.kops:>9.1f} {stats['injected']:>9.0f} "
              f"{stats['retries']:>8.0f} {stats['audit_violations']:>6.0f} "
              f"{stats['recovery_seconds'] * 1e3:>12.3f}")
    return results


def _scrub(args):
    if getattr(args, "smoke", False):
        results = ex.scrub_sweep(
            bitflip_rates=(0.0, 1e-3), num_keys=600, num_ops=600, num_threads=2
        )
    else:
        results = ex.scrub_sweep()
    print("Integrity — YCSB-A with checksums, mirroring, scrub + rebuild")
    print(f"{'rate':>12} {'Kops':>8} {'injected':>9} {'detected':>9} "
          f"{'repaired':>9} {'unrec':>6} {'wrong':>6} {'degraded':>9} "
          f"{'rebuild(ms)':>12}")
    ok = True
    for label, run in results["runs"].items():
        stats = results["scrub"][label]
        print(f"{label:>12} {run.kops:>8.1f} {stats['silent_injected']:>9.0f} "
              f"{stats['detected']:>9.0f} {stats['repaired']:>9.0f} "
              f"{stats['unrecoverable']:>6.0f} {stats['wrong_values']:>6.0f} "
              f"{stats['degraded_reads']:>9.0f} "
              f"{stats['rebuild_seconds'] * 1e3:>12.3f}")
        if stats["wrong_values"] or stats["degraded_reads"]:
            ok = False
    print("integrity check:", "PASS" if ok else "FAIL")
    if not ok:
        raise SystemExit(1)
    return results


def _cluster(args):
    from repro.bench import cluster as cl

    if getattr(args, "smoke", False):
        scaling = cl.cluster_scaling(
            shard_counts=(1, 4), num_keys=2000, num_ops=4000,
            clients_per_shard=2,
        )
        baseline, killed = cl.cluster_failover(
            num_shards=2, num_keys=1500, num_ops=3000, clients_per_shard=2,
        )
    else:
        scaling = cl.cluster_scaling()
        baseline, killed = cl.cluster_failover()
    print("Cluster — aggregate throughput vs shard count (YCSB-C uniform, RF=1)")
    base = scaling[min(scaling)].throughput
    for shards, res in sorted(scaling.items()):
        print(f"  {shards:2} shards {res.run.kops:10.1f} Kops/s  "
              f"({res.throughput / base:4.2f}x)  "
              f"p99 {res.run.latency.p99():6.1f}us")
    ok_scale, scale_msg = cl.check_scaling(scaling)
    print(f"  scaling gate: {'PASS' if ok_scale else 'FAIL'} — {scale_msg}")
    print("\nCluster — failover under load (YCSB-A uniform, RF=2, quorum)")
    print(f"  baseline {baseline.run.kops:10.1f} Kops/s  "
          f"ok/shed/failed {baseline.ops_ok}/{baseline.ops_shed}/"
          f"{baseline.ops_failed}")
    print(f"  killed   {killed.run.kops:10.1f} Kops/s  "
          f"ok/shed/failed {killed.ops_ok}/{killed.ops_shed}/"
          f"{killed.ops_failed}")
    ok_fail, fail_msg = cl.check_failover(killed)
    print(f"  failover gate: {'PASS' if ok_fail else 'FAIL'} — {fail_msg}")
    if not (ok_scale and ok_fail):
        raise SystemExit(1)
    return {
        "scaling": {n: r.run for n, r in scaling.items()},
        "failover": {"baseline": baseline.run, "killed": killed.run},
    }


def _grayfail(args):
    from repro.bench import grayfail as gf

    if getattr(args, "smoke", False):
        results = gf.grayfail_comparison(num_keys=1200, num_ops=4000)
    else:
        results = gf.grayfail_comparison()
    print("Gray failure — fail-slow replica (10x), read-heavy uniform, "
          "RF=2 quorum")
    for label in ("healthy", "undefended", "defended"):
        res = results[label]
        reads = res.run.per_kind["read"]
        counters = (res.run.metrics or {}).get("counters", {})
        hedges = ""
        if label == "defended":
            hedges = (f"  hedges {counters.get('hedge.fired', 0)} fired / "
                      f"{counters.get('hedge.won', 0)} won / "
                      f"{counters.get('hedge.wasted', 0)} wasted; "
                      f"breaker opened {counters.get('breaker.opened', 0)}x")
        print(f"  {label:10} read p50 {reads.median():7.1f}us  "
              f"p99 {reads.p99():7.1f}us{hedges}")
    ok_tail, tail_msg = gf.check_tail(results["healthy"], results["defended"])
    ok_cost, cost_msg = gf.check_overhead(results["defended"])
    print(f"\n  tail gate:     {'PASS' if ok_tail else 'FAIL'} — {tail_msg}")
    print(f"  overhead gate: {'PASS' if ok_cost else 'FAIL'} — {cost_msg}")
    if not (ok_tail and ok_cost):
        raise SystemExit(1)
    return {label: res.run for label, res in results.items()}


def _rebalance(args):
    from repro.bench import rebalance as rb

    if getattr(args, "smoke", False):
        results = rb.cluster_rebalance(
            num_keys=1200, num_ops=3000, clients_per_shard=2,
            bandwidth=64.0 * 1024,
        )
    else:
        results = rb.cluster_rebalance()
    print("Elasticity — live resharding under load (YCSB-A uniform, "
          "RF=2, quorum)")
    all_ok = True
    for label in ("scale_out", "scale_in"):
        res = results[label]
        reb = res.rebalance
        print(f"  {label:9} {res.run.kops:9.1f} Kops/s  "
              f"ok/shed/failed {res.ops_ok}/{res.ops_shed}/{res.ops_failed}  "
              f"moved {reb.get('keys_moved', 0)} keys  "
              f"forwarded-read p99 window {reb.get('read_p99_migrating', 0.0):6.1f}us "
              f"vs steady {reb.get('read_p99_steady', 0.0):6.1f}us")
        ok, msg = rb.check_rebalance(res)
        print(f"  {label} gate: {'PASS' if ok else 'FAIL'} — {msg}")
        all_ok = all_ok and ok
    if not all_ok:
        raise SystemExit(1)
    return {label: res.run for label, res in results.items()}


def _cache(args):
    from repro.bench import cache as ca
    from repro.bench.stores import MB

    smoke = getattr(args, "smoke", False)
    if smoke:
        off, on = ca.storm_comparison(num_keys=2500, num_ops=5000)
        sweep = ca.cache_sweep(
            capacities=(64 * 1024, 1 * MB), thetas=(1.3,),
            num_keys=2500, num_ops=2500, num_threads=2,
        )
        cluster_runs = None
    else:
        off, on = ca.storm_comparison()
        sweep = ca.cache_sweep()
        cluster_runs = ca.cluster_hot_spread()
    print("Read cache — hot-key storm, cache off vs on")
    for label, run in (("off", off), ("on", on)):
        reads = run.per_kind["read"]
        print(f"  cache {label:3} {run.kops:10.1f} Kops/s  "
              f"read p50 {reads.median():7.2f}us  "
              f"p99 {reads.p99():7.2f}us  "
              f"hit ratio {ca.hit_ratio(run):6.1%}")
    print("\nRead cache — hit ratio vs capacity vs skew")
    for theta_label, row in sweep.items():
        cells = " ".join(
            f"{size}:{ca.hit_ratio(r):6.1%}" for size, r in row.items()
        )
        print(f"  {theta_label:12} {cells}")
    if cluster_runs is not None:
        primary, spread = cluster_runs
        print("\nCluster — storm reads, primary vs hot-key spread (RF=2)")
        for label, res in (("primary", primary), ("spread", spread)):
            reads = res.run.per_kind["read"]
            print(f"  {label:8} {res.run.kops:10.1f} Kops/s  "
                  f"read p50 {reads.median():6.2f}us  "
                  f"p99 {reads.p99():7.2f}us")
    ok_hits, hits_msg = ca.check_hit_ratio(on)
    ok_p99, p99_msg = ca.check_read_p99(off, on)
    print(f"\n  hit-ratio gate: {'PASS' if ok_hits else 'FAIL'} — {hits_msg}")
    print(f"  p99 gate:       {'PASS' if ok_p99 else 'FAIL'} — {p99_msg}")
    if not (ok_hits and ok_p99):
        raise SystemExit(1)
    results = {"storm": {"off": off, "on": on}, "sweep": sweep}
    if cluster_runs is not None:
        results["cluster"] = {
            "primary": cluster_runs[0].run, "spread": cluster_runs[1].run,
        }
    return results


def _tiering(args):
    from repro.bench import tiering as ti

    if getattr(args, "smoke", False):
        tiered, spread, allfast = ti.tiering_comparison(
            num_keys=1000, num_ops=6000
        )
    else:
        tiered, spread, allfast = ti.tiering_comparison()
    print("Tiering — Zipfian YCSB-B, working set 2x the fast tier")
    for label, run in (("tiered", tiered), ("spread", spread),
                       ("allfast", allfast)):
        reads = run.per_kind["read"]
        print(f"  {label:8} {run.kops:9.1f} Kops/s  "
              f"read p50 {reads.median():7.1f}us  "
              f"p99 {reads.p99():8.1f}us  "
              f"waf {run.waf:5.2f}  "
              f"${ti.cost_per_mop(run):8.2f}/Mops")
    stats = tiered.stats
    print(f"\n  tiered placement: {stats.get('tier_demotions', 0):.0f} GC "
          f"demotions + {stats.get('tier_cold_reclaims', 0):.0f} cold "
          f"reclaims, {stats.get('tier_promotions', 0):.0f} promotions "
          f"({stats.get('tier_promotions_stale', 0):.0f} stale-dropped)")
    print(f"  demotion WAF {stats.get('tier_demotion_waf', 0.0):.3f}  "
          f"fast occupancy {stats.get('tier_fast_occupancy', 0.0):5.1%}  "
          f"cold occupancy {stats.get('tier_cold_occupancy', 0.0):5.1%}")
    ok_p99, p99_msg = ti.check_read_p99(tiered, spread)
    ok_cost, cost_msg = ti.check_cost_per_op(tiered, allfast)
    ok_waf, waf_msg = ti.check_demotion_waf(tiered)
    print(f"\n  p99 gate:  {'PASS' if ok_p99 else 'FAIL'} — {p99_msg}")
    print(f"  cost gate: {'PASS' if ok_cost else 'FAIL'} — {cost_msg}")
    print(f"  waf gate:  {'PASS' if ok_waf else 'FAIL'} — {waf_msg}")
    if not (ok_p99 and ok_cost and ok_waf):
        raise SystemExit(1)
    return {"tiered": tiered, "spread": spread, "allfast": allfast}


def _perf(args):
    from repro.perf import run_perf

    smoke = getattr(args, "smoke", False)
    print(f"Perf — simulator wall-clock suite ({'smoke' if smoke else 'full'})")
    run_perf(smoke=smoke)
    return None  # run_perf writes BENCH_PERF.json itself


def _media(args):
    results = media_matrix()
    print("Extension — emerging media (Kops)")
    for label, runs in results.items():
        row = " ".join(f"{wl}:{runs[wl].kops:8.1f}" for wl in ("A", "C", "E"))
        print(f"  {label:22} {row}")
    return results


COMMANDS = {
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "ablations": _ablations,
    "cache": _cache,
    "cluster": _cluster,
    "faults": _faults,
    "grayfail": _grayfail,
    "perf": _perf,
    "rebalance": _rebalance,
    "scalars": _scalars,
    "scrub": _scrub,
    "tiering": _tiering,
    "media": _media,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "experiment", choices=sorted(COMMANDS) + ["figs", "list"]
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset/op multiplier (sets REPRO_SCALE)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="metrics JSON destination (default <experiment>.metrics.json; "
             "'none' disables)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast configuration (CI smoke; cache, cluster, grayfail, "
             "perf, rebalance, scrub, and tiering)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent runs out across N worker processes "
             "(default: $REPRO_JOBS or 1); all output is byte-identical "
             "to --jobs 1",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the experiment in cProfile and write a pstats dump "
             "next to the metrics JSON (profiles this process; with "
             "--jobs > 1 worker simulation time runs out of view)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    if args.jobs is not None:
        from repro.parallel import set_jobs

        set_jobs(args.jobs)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    if args.experiment == "figs":
        from repro.bench.figs import run_figs

        if profiler is not None:
            profiler.enable()
        rc = run_figs(scale=args.scale, smoke=args.smoke,
                      write_metrics=args.metrics_out != "none")
        if profiler is not None:
            profiler.disable()
            _dump_profile(profiler, args, "figs")
        return rc

    if profiler is not None:
        profiler.enable()
    results = COMMANDS[args.experiment](args)
    if profiler is not None:
        profiler.disable()
    if results is not None and args.metrics_out != "none":
        out = args.metrics_out or f"{args.experiment}.metrics.json"
        payload = metrics_payload(args.experiment, results)
        write_metrics_json(out, payload)
        print(f"\nmetrics: {out} ({len(payload['runs'])} runs)")
    if profiler is not None:
        _dump_profile(profiler, args, args.experiment)
    return 0


def _dump_profile(profiler, args, experiment: str) -> None:
    """Write the cProfile dump next to the metrics JSON."""
    base = args.metrics_out
    if base in (None, "none"):
        base = f"{experiment}.metrics.json"
    out = os.path.join(
        os.path.dirname(base) or ".", f"{experiment}.profile.pstats"
    )
    profiler.dump_stats(out)
    print(f"profile: {out} (inspect with python -m pstats)")


if __name__ == "__main__":
    sys.exit(main())
