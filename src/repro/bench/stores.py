"""Cost-parity store factories (Table 1, scaled 1/1000).

The paper equalizes hardware cost across stores: Prism gets 20 GB of
DRAM cache + 16 GB of NVM buffer; KVell spends the same dollars on
32 GB of DRAM; MatrixKV on 26 GB DRAM + 8 GB NVM.  Simulations scale
capacities by ~1000× (and datasets with them), preserving the ratios
that matter: cache:dataset and buffer:dataset.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.kvell import KVell, KVellConfig
from repro.baselines.matrixkv import MatrixKV, MatrixKVConfig
from repro.baselines.rocksdb_nvm import RocksDBNVM, RocksDBNVMConfig
from repro.baselines.slmdb import SLMDB, SLMDBConfig
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

MB = 1024**2
GB = 1024**3

# Default benchmark dataset: 20k keys x 1 KB (the paper's 100 GB,
# scaled).  Cache budgets below are the paper's Table 1 expressed as
# fractions of the dataset: Prism 20 GB DRAM + 16 GB NVM per 100 GB,
# KVell 32 GB DRAM, MatrixKV 26 GB DRAM + 8 GB NVM.
DEFAULT_DATASET = 20 * MB

# Simulated per-SSD capacity.  Small enough to keep chunk bookkeeping
# cheap, large enough that GC stays out of the way unless an experiment
# asks for space pressure.
DEFAULT_SSD_CAPACITY = 2 * GB


def _ssd_spec(capacity: int = DEFAULT_SSD_CAPACITY):
    return FLASH_SSD_GEN4_SPEC.with_capacity(capacity)


def build_prism(
    num_threads: int = 4,
    num_ssds: int = 2,
    dataset_bytes: int = DEFAULT_DATASET,
    svc_capacity: Optional[int] = None,
    pwb_total: Optional[int] = None,
    expected_keys: int = 200_000,
    ssd_capacity: int = DEFAULT_SSD_CAPACITY,
    config: Optional[PrismConfig] = None,
    **overrides,
) -> Prism:
    """Prism at the paper's $170 configuration (scaled): DRAM cache =
    20% of the dataset, NVM write buffer = 16%."""
    if config is None:
        if svc_capacity is None:
            svc_capacity = dataset_bytes // 5
        if pwb_total is None:
            pwb_total = (dataset_bytes * 16) // 100
        overrides.setdefault("ssd_spec", _ssd_spec(ssd_capacity))
        # Benchmarked instances trace per-op phases by default so every
        # experiment's metrics JSON carries latency attribution.
        overrides.setdefault("enable_metrics", True)
        config = PrismConfig(
            num_threads=num_threads,
            num_ssds=num_ssds,
            svc_capacity=svc_capacity,
            pwb_capacity=max(64 * 1024, pwb_total // num_threads),
            hsit_capacity=max(64, expected_keys * 4),
            **overrides,
        )
    return Prism(config)


def build_kvell(
    num_ssds: int = 2,
    workers_per_ssd: int = 3,
    dataset_bytes: int = DEFAULT_DATASET,
    page_cache: Optional[int] = None,
    ssd_capacity: int = DEFAULT_SSD_CAPACITY,
    **overrides,
) -> KVell:
    """KVell spending Prism's NVM budget on extra DRAM instead
    (32% of the dataset)."""
    if page_cache is None:
        page_cache = (dataset_bytes * 32) // 100
    return KVell(
        KVellConfig(
            num_ssds=num_ssds,
            workers_per_ssd=workers_per_ssd,
            ssd_spec=_ssd_spec(ssd_capacity),
            page_cache_bytes=page_cache,
            **overrides,
        )
    )


def build_matrixkv(
    num_ssds: int = 2,
    dataset_bytes: int = DEFAULT_DATASET,
    block_cache: Optional[int] = None,
    container: Optional[int] = None,
    ssd_capacity: int = DEFAULT_SSD_CAPACITY,
    **overrides,
) -> MatrixKV:
    """MatrixKV: 26% DRAM block cache + 8% NVM matrix container."""
    if block_cache is None:
        block_cache = (dataset_bytes * 26) // 100
    if container is None:
        container = (dataset_bytes * 8) // 100
    overrides.setdefault("memtable_bytes", max(64 * 1024, dataset_bytes // 100))
    return MatrixKV(
        MatrixKVConfig(
            num_ssds=num_ssds,
            ssd_spec=_ssd_spec(ssd_capacity),
            block_cache_bytes=block_cache,
            container_bytes=container,
            **overrides,
        )
    )


def build_rocksdb_nvm(
    dataset_bytes: int = DEFAULT_DATASET,
    block_cache: Optional[int] = None,
    **overrides,
) -> RocksDBNVM:
    """RocksDB with WAL + SSTables on NVM (cost-unbounded reference)."""
    if block_cache is None:
        block_cache = (dataset_bytes * 26) // 100
    overrides.setdefault("memtable_bytes", max(64 * 1024, dataset_bytes // 100))
    return RocksDBNVM(
        RocksDBNVMConfig(
            block_cache_bytes=block_cache,
            **overrides,
        )
    )


def build_slmdb(
    num_ssds: int = 2,
    memtable: int = 1 * MB,
    ssd_capacity: int = DEFAULT_SSD_CAPACITY,
    **overrides,
) -> SLMDB:
    """SLM-DB: single-threaded, NVM memtable, persistent B+-tree.

    The paper gives SLM-DB a 64 MB memtable regardless of dataset; the
    scaled default keeps that spirit."""
    return SLMDB(
        SLMDBConfig(
            num_ssds=num_ssds,
            ssd_spec=_ssd_spec(ssd_capacity),
            memtable_bytes=memtable,
            **overrides,
        )
    )
