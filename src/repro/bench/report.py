"""Paper-style result tables and machine-readable metrics dumps."""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bench.runner import RunResult


def ratio(a: float, b: float) -> float:
    """a / b with a guard (0 when b is 0)."""
    return a / b if b else 0.0


def format_table(
    title: str,
    rows: Sequence[str],
    cols: Sequence[str],
    cell,
    col_width: int = 14,
) -> str:
    """Render a rows x cols table; ``cell(row, col)`` supplies strings."""
    head = f"{'':14}" + "".join(f"{c:>{col_width}}" for c in cols)
    lines = [title, "=" * len(head), head, "-" * len(head)]
    for row in rows:
        line = f"{row:14}" + "".join(
            f"{cell(row, col):>{col_width}}" for col in cols
        )
        lines.append(line)
    return "\n".join(lines)


def throughput_table(
    title: str,
    results: Dict[str, Dict[str, RunResult]],
    workloads: Sequence[str],
    unit: str = "Kops",
) -> str:
    """Stores as rows, workloads as columns (Figure 7 / 8 layout)."""
    scale = 1e3 if unit == "Kops" else 1e6

    def cell(store: str, workload: str) -> str:
        result = results.get(store, {}).get(workload)
        if result is None:
            return "-"
        return f"{result.throughput / scale:.1f}"

    return format_table(
        f"{title}  ({unit}/s)", list(results), workloads, cell
    )


def latency_table(
    title: str,
    results: Dict[str, Dict[str, RunResult]],
    workloads: Sequence[str],
) -> str:
    """Average / median / p99 latency per store per workload (Table 3)."""
    lines = [title, "=" * 72]
    header = f"{'workload':10}{'metric':10}" + "".join(
        f"{name:>14}" for name in results
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload in workloads:
        for metric, fn in (
            ("avg", lambda r: r.latency.average()),
            ("median", lambda r: r.latency.median()),
            ("99%", lambda r: r.latency.p99()),
        ):
            row = f"{workload:10}{metric:10}"
            for name in results:
                result = results[name].get(workload)
                row += f"{fn(result):>14.1f}" if result else f"{'-':>14}"
            lines.append(row)
    return "\n".join(lines)


def paper_expectation(label: str, expected: str, measured: str) -> str:
    """One line of paper-vs-measured comparison for EXPERIMENTS.md."""
    return f"  {label:40} paper: {expected:20} measured: {measured}"


def iter_run_results(obj, prefix: Tuple = ()) -> Iterator[Tuple[str, RunResult]]:
    """Walk an arbitrarily nested experiment result (dicts keyed by
    store / workload / parameter, tuples, lists) and yield each
    :class:`RunResult` with a ``/``-joined path naming where it sits."""
    if isinstance(obj, RunResult):
        yield "/".join(str(p) for p in prefix) or obj.workload, obj
    elif isinstance(obj, dict):
        for key, value in obj.items():
            yield from iter_run_results(value, prefix + (key,))
    elif isinstance(obj, (list, tuple)):
        for idx, value in enumerate(obj):
            yield from iter_run_results(value, prefix + (idx,))


def metrics_payload(experiment: str, results) -> Dict[str, object]:
    """Bundle every run's metrics snapshot for one experiment."""
    runs: Dict[str, object] = {}
    for path, run in iter_run_results(results):
        if run.metrics is not None:
            runs[path] = run.metrics
    return {"experiment": experiment, "runs": runs}


def write_metrics_json(path: str, payload: Dict[str, object]) -> None:
    """Serialize a :func:`metrics_payload` bundle to ``path``."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
