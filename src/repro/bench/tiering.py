"""Tiered-placement experiments: working set 2× the fast tier.

The capacity story behind ISSUE 9: a dataset twice the size of the
fast flash tier, served three ways on seeded, identical workloads —

* **tiered** — one fast Gen4 SSD plus a pool of cheap QLC cold SSDs,
  temperature placement on.  Hot data (the Zipfian head) lives fast;
  GC/reclaim demote the cold tail; re-access promotes back.
* **spread** — the no-tiering baseline on *identical hardware*: new
  data round-robins across every device, so ~3/4 of reads land on the
  SATA-bound QLC pool and queue behind its bandwidth channel — the
  tail the gate compares against.
* **all-fast** — equal *total* capacity built purely from Gen4 flash:
  the performance ceiling, at more than twice the SSD dollars.

Gates: tiered read p99 <= 0.6x spread, tiered cost-per-op below
all-fast, and demotion WAF (extra cold-tier writes from GC demotions,
per application byte) accounted in the metrics JSON.

All runs are seeded and virtual-time deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.experiments import scaled
from repro.bench.runner import RunResult, preload, run_workload
from repro.bench.stores import build_prism
from repro.core.config import TIER_SPREAD, TIER_TEMPERATURE
from repro.parallel import parallel_map
from repro.storage.specs import QLC_SSD_SPEC
from repro.workloads.ycsb import YCSB_B

# 32 KB values for the same reason the cache storm uses them: transfers
# long enough that closed-loop readers queue on a saturated bandwidth
# channel.  On the 0.56 GB/s QLC tier that queueing is the whole
# experiment — spilled reads take milliseconds while unqueued fast
# reads stay near device latency.
TIER_VALUE_SIZE = 48 * 1024
TIER_THREADS = 16
DEFAULT_THETA = 1.2
NUM_FAST_SSDS = 2
NUM_COLD_SSDS = 4
MODES = ("tiered", "spread", "allfast")


def _build(mode: str, num_keys: int, num_threads: int, value_size: int):
    """One preloaded store; the dataset is 2x the fast-tier capacity.

    tiered/spread share hardware exactly (1 fast + 3 cold QLC);
    allfast matches their *total* capacity with 4 fast SSDs.
    """
    dataset = num_keys * value_size
    fast_capacity = dataset // 2  # dataset = 2x the fast tier
    # Every config gets 2.5x the dataset in total capacity, with the
    # cold pool supplying 2x of it.  Cheap capacity is the entire
    # point of a QLC tier: sized tightly it would sit under the GC
    # threshold and compact itself forever, and every cold read would
    # queue behind that churn.
    cold_capacity = (dataset * 2) // NUM_COLD_SSDS
    total_capacity = fast_capacity + NUM_COLD_SSDS * cold_capacity
    common = dict(
        num_threads=num_threads,
        dataset_bytes=dataset,
        # A deliberately thin DRAM cache (1% of the dataset): the
        # experiment is about device placement, and a dataset-sized
        # SVC would serve the hot set from DRAM in every config.
        svc_capacity=max(64 * 1024, dataset // 100),
        expected_keys=num_keys,
        # With 32 KB values a single reclaim batch spans whole chunks;
        # the default 15% GC threshold leaves too little headroom to
        # relocate into once the PWBs drain concurrently.  Reserve
        # the customary log-structured 30%.
        gc_free_threshold=0.3,
        # Sized to the 48 KB values: five records pack into a 256 KB
        # chunk with ~6% internal waste (128 KB would fit only two,
        # wasting a quarter of every chunk and tripling GC churn).
        chunk_size=256 * 1024,
    )
    num_devices = NUM_FAST_SSDS + NUM_COLD_SSDS
    if mode == "allfast":
        store = build_prism(
            num_ssds=num_devices,
            ssd_capacity=total_capacity // num_devices,
            **common,
        )
    else:
        store = build_prism(
            num_ssds=NUM_FAST_SSDS,
            ssd_capacity=fast_capacity // NUM_FAST_SSDS,
            enable_tiering=True,
            num_cold_ssds=NUM_COLD_SSDS,
            cold_ssd_spec=QLC_SSD_SPEC.with_capacity(cold_capacity),
            tier_policy=TIER_TEMPERATURE if mode == "tiered" else TIER_SPREAD,
            # Promote only into real slack: with the working set at 2x
            # the fast tier, a thin headroom floor lets promotions pin
            # occupancy against the GC threshold and thrash
            # (promote -> demote -> promote) on every Zipf-tail read.
            tier_fast_headroom=0.15,
            # A Zipf tail key crosses frequency 2 within a few thousand
            # ops; promoting at that bar cycles the whole tail through
            # the fast tier (promote -> demote -> promote).  Demand
            # real reheat before paying the migration write.
            tier_hot_threshold=3,
            tier_promote_threshold=3,
            **common,
        )
    preload(store, num_keys, value_size=value_size, num_threads=num_threads)
    return store


def tier_run(
    mode: str,
    num_keys: int,
    num_ops: int,
    num_threads: int = TIER_THREADS,
    theta: float = DEFAULT_THETA,
    seed: int = 4,
    value_size: int = TIER_VALUE_SIZE,
) -> RunResult:
    """One seeded Zipfian read-heavy run (YCSB-B mix) in one mode."""
    if mode not in MODES:
        raise ValueError(f"unknown tiering mode: {mode}")
    store = _build(mode, num_keys, num_threads, value_size)
    result = run_workload(
        store, YCSB_B, num_ops, num_keys,
        num_threads=num_threads, value_size=value_size, theta=theta,
        seed=seed, warmup_ops=num_ops // 4,
    )
    # Dollars of storage per million ops/s of delivered throughput —
    # the capacity story in one number.  Only the SSDs are priced
    # (DeviceSpec.cost()): the DRAM cache and NVM buffer budgets are
    # identical across the three configs, so they would only dilute
    # the variable under test.
    result.stats["ssd_cost"] = sum(
        ssd.spec.cost() for ssd in store.ssds + store.cold_ssds
    )
    result.stats["hardware_cost"] = store.config.hardware_cost()
    return result


def tiering_comparison(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = TIER_THREADS,
    theta: float = DEFAULT_THETA,
) -> Tuple[RunResult, RunResult, RunResult]:
    """The same workload, tiered vs spread vs all-fast.

    Returns ``(tiered, spread, allfast)``.
    """
    num_keys = num_keys if num_keys is not None else scaled(3_000)
    num_ops = num_ops if num_ops is not None else scaled(12_000)
    tiered, spread, allfast = parallel_map(
        _tier_task,
        [
            (mode, num_keys, num_ops, num_threads, theta)
            for mode in ("tiered", "spread", "allfast")
        ],
    )
    return tiered, spread, allfast


def _tier_task(
    mode: str, num_keys: int, num_ops: int, num_threads: int, theta: float
) -> RunResult:
    return tier_run(mode, num_keys, num_ops, num_threads, theta=theta)


def cost_per_mop(result: RunResult) -> float:
    """SSD dollars per million ops/s of delivered throughput."""
    if result.throughput <= 0:
        return float("inf")
    return result.stats["ssd_cost"] / (result.throughput / 1e6)


def check_read_p99(
    tiered: RunResult, spread: RunResult, ratio: float = 0.6
) -> Tuple[bool, str]:
    """Acceptance gate: tiered read p99 <= ratio x the spread baseline."""
    p_tiered = tiered.per_kind["read"].p99()
    p_spread = spread.per_kind["read"].p99()
    ok = p_tiered <= ratio * p_spread
    return ok, (
        f"read p99 {p_tiered:.1f}us tiered vs {p_spread:.1f}us spread "
        f"(gate: <= {ratio:.1f}x)"
    )


def check_cost_per_op(
    tiered: RunResult, allfast: RunResult
) -> Tuple[bool, str]:
    """Acceptance gate: tiered $/Mop/s below the all-fast build of
    equal total capacity."""
    c_tiered = cost_per_mop(tiered)
    c_allfast = cost_per_mop(allfast)
    ok = c_tiered < c_allfast
    return ok, (
        f"cost ${c_tiered:.2f}/Mops tiered vs ${c_allfast:.2f}/Mops "
        f"all-fast (gate: lower)"
    )


def check_demotion_waf(tiered: RunResult) -> Tuple[bool, str]:
    """Acceptance gate: demotion traffic is accounted — the tier
    moved data cold and reports the extra writes per application byte."""
    waf = tiered.stats.get("tier_demotion_waf")
    demoted = tiered.stats.get("tier_demotions", 0)
    ok = waf is not None and waf > 0 and demoted > 0
    shown = "absent" if waf is None else f"{waf:.3f}"
    return ok, (
        f"demotion WAF {shown} ({int(demoted)} GC demotions; "
        f"gate: present and > 0)"
    )
