"""Extension experiments: the paper's §8 discussion, implemented.

The paper closes by arguing its lessons transfer to emerging media —
CXL-based persistent memory, ultra-low-latency SSDs, PCIe Gen5 flash.
These experiments re-run Prism with those devices substituted, using
the same cost-parity harness as the evaluation:

* ``cxl_nvm``: the Persistent Write Buffer / HSIT / index move to
  CXL-attached persistent memory (one hop slower than DCPMM, cheaper
  and far more capacity).
* ``optane_value_storage``: Value Storage on ultra-low-latency Optane
  SSDs instead of flash — less bandwidth, 5x lower read latency.
* ``pcie5_flash``: next-generation flash doubles Value Storage
  bandwidth; the latency/bandwidth split widens further.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.experiments import (
    NUM_KEYS,
    NUM_OPS,
    NUM_THREADS,
    SCAN_OPS_DIVISOR,
    VALUE_SIZE,
    scaled,
)
from repro.bench.runner import RunResult, preload, run_workload
from repro.bench.stores import build_prism
from repro.parallel import parallel_map
from repro.storage.specs import (
    CXL_NVM_SPEC,
    FLASH_SSD_GEN4_SPEC,
    OPTANE_SSD_SPEC,
    PCIE5_SSD_SPEC,
    DeviceSpec,
)
from repro.workloads import WORKLOADS

GB = 1024**3


def media_matrix(
    num_keys: int = None,
    num_ops: int = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[str, RunResult]]:
    """Prism across device generations (§8), workloads A / C / E."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    data = num_keys * VALUE_SIZE
    variants: Dict[str, Dict[str, DeviceSpec]] = {
        "dcpmm+gen4 (paper)": {},
        "cxl-nvm+gen4": {"nvm_spec": CXL_NVM_SPEC},
        "dcpmm+optane-ssd": {
            "ssd_spec_base": OPTANE_SSD_SPEC,
        },
        "dcpmm+gen5": {
            "ssd_spec_base": PCIE5_SSD_SPEC,
        },
    }
    tasks = [
        (label, data, num_keys, num_ops, num_threads) for label in variants
    ]
    units = parallel_map(_media_unit, tasks)
    return dict(zip(variants, units))


def _media_unit(
    label: str, data: int, num_keys: int, num_ops: int, num_threads: int
) -> Dict[str, RunResult]:
    """One device-generation variant of the media matrix."""
    overrides: Dict[str, DeviceSpec] = {
        "dcpmm+gen4 (paper)": {},
        "cxl-nvm+gen4": {"nvm_spec": CXL_NVM_SPEC},
        "dcpmm+optane-ssd": {"ssd_spec_base": OPTANE_SSD_SPEC},
        "dcpmm+gen5": {"ssd_spec_base": PCIE5_SSD_SPEC},
    }[label]
    kwargs = {}
    if "nvm_spec" in overrides:
        kwargs["nvm_spec"] = overrides["nvm_spec"]
    if "ssd_spec_base" in overrides:
        kwargs["ssd_spec"] = overrides["ssd_spec_base"].with_capacity(2 * GB)
    store = build_prism(
        num_threads=num_threads,
        dataset_bytes=data,
        expected_keys=num_keys * 3,
        **kwargs,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    out: Dict[str, RunResult] = {}
    for wl in ("A", "C", "E"):
        spec = WORKLOADS[wl]
        ops = num_ops if spec.scan == 0 else max(200, num_ops // SCAN_OPS_DIVISOR)
        out[wl] = run_workload(
            store, spec, ops, num_keys, num_threads, VALUE_SIZE,
            warmup_ops=ops // 2,
        )
    return out
