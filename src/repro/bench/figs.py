"""Fig-suite driver: every paper-figure experiment in one command.

``python -m repro.bench figs --jobs N`` runs the whole figure suite,
one experiment per worker process.  Each experiment is already a
self-contained simulation (private clocks, explicit seeds), so the
suite is embarrassingly parallel at experiment granularity; workers
run their *internal* fan-out serially (``REPRO_JOBS`` is forced to 1
inside workers) to avoid nested pools.

Workers return their captured stdout plus the metrics payload; the
parent prints and writes both in suite order, so the terminal output
and every ``<experiment>.metrics.json`` are byte-identical to a
serial ``--jobs 1`` run.
"""

from __future__ import annotations

import contextlib
import io
import os
from typing import Optional, Tuple

# The paper-figure experiments (fig14 shares fig13's sweep; no fig14
# command exists).  Heavier sweeps lead so the pool drains evenly.
FIG_SUITE = (
    "fig9",
    "fig16",
    "fig12",
    "fig13",
    "fig7",
    "fig8",
    "fig10",
    "fig11",
    "fig15",
    "fig17",
    "ablations",
    "media",
    "scalars",
)


def _run_experiment(
    name: str, scale: Optional[float], smoke: bool
) -> Tuple[str, Optional[dict]]:
    """One whole experiment (spawn-safe): returns (stdout, payload)."""
    import argparse

    if scale is not None:
        os.environ["REPRO_SCALE"] = str(scale)
    # Imported lazily: this module is itself imported by the CLI.
    from repro.bench.__main__ import COMMANDS
    from repro.bench.report import metrics_payload

    args = argparse.Namespace(smoke=smoke)
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        results = COMMANDS[name](args)
    payload = metrics_payload(name, results) if results is not None else None
    return buf.getvalue(), payload


def run_figs(
    jobs: Optional[int] = None,
    scale: Optional[float] = None,
    smoke: bool = False,
    metrics_dir: str = ".",
    write_metrics: bool = True,
) -> int:
    """Run :data:`FIG_SUITE`; print and persist results in suite order."""
    from repro.bench.report import write_metrics_json
    from repro.parallel import parallel_map

    outputs = parallel_map(
        _run_experiment, [(name, scale, smoke) for name in FIG_SUITE], jobs=jobs
    )
    for name, (text, payload) in zip(FIG_SUITE, outputs):
        print(f"=== {name} ===")
        print(text, end="")
        if payload is not None and write_metrics:
            out = os.path.join(metrics_dir, f"{name}.metrics.json")
            write_metrics_json(out, payload)
            print(f"metrics: {out} ({len(payload['runs'])} runs)")
        print()
    return 0
