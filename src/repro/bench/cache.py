"""Read-cache experiments: hit ratio, tail latency, hot-key defense.

Three questions the DRAM value cache must answer:

* **storm** — under a hot-key storm (theta >= 1.2 with a handful of
  celebrity keys taking >30% of reads), does the cache absorb the hot
  set?  The acceptance gates require a >= 50% hit ratio and a lower
  read p99 than the identical cache-off run.
* **sweep** — how does hit ratio trade against cache size and skew?
  A grid of storm runs over (capacity, theta).
* **cluster** — with per-shard caches and the router's hot-key
  defense (``read_policy="spread"`` + ``hot_key_threshold``), do
  replicated reads relieve the celebrity shard versus primary-only
  reads?  (Full mode only; smoke skips it.)

All runs are seeded and virtual-time deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bench.experiments import scaled
from repro.bench.runner import RunResult, preload, run_workload
from repro.bench.stores import MB, build_prism
from repro.parallel import parallel_map
from repro.workloads.ycsb import WorkloadSpec

# The storm mix: read-heavy, Zipfian tail at extreme skew, with five
# celebrity keys taking 35% of the traffic on top (HotKeyStormGenerator
# defaults).  95/5 read/update keeps invalidation in the picture —
# cached celebrities are periodically overwritten and must re-admit.
STORM = WorkloadSpec(
    name="STORM", read=0.95, update=0.05, distribution="hotstorm",
    description="Hot-key storm: 95% reads, celebrity-skewed",
)

DEFAULT_THETA = 1.3
# Large objects on a single SSD: the configuration where a hot-key
# storm actually hurts.  32 KB values make SSD transfers long enough
# (32 KB / 7 GBps ≈ 4.6 us) that eight closed-loop readers queue on
# the device's bandwidth channel — the tail the cache then relieves.
# Small values at these op rates never saturate the channel, and the
# p99 is a bare device read with or without the cache.
STORM_VALUE_SIZE = 32 * 1024
STORM_THREADS = 8
STORM_SSDS = 1
DEFAULT_CACHE_CAPACITY = 16 * MB


def _build(
    num_keys: int,
    num_threads: int,
    cache_capacity: int,
    value_size: int = STORM_VALUE_SIZE,
    num_ssds: int = STORM_SSDS,
):
    """A preloaded Prism; ``cache_capacity == 0`` disables the cache.

    Storm runs shrink the SVC to 5% of the dataset (from the cost-parity
    default of 20%): the experiment measures the *read-cache* tier, so
    the layer below it must feel the storm — with the default SVC the
    hot set fits there too and both runs serve p99 from DRAM.
    """
    dataset = num_keys * value_size
    store = build_prism(
        num_threads=num_threads,
        num_ssds=num_ssds,
        dataset_bytes=dataset,
        svc_capacity=max(64 * 1024, dataset // 20),
        enable_read_cache=cache_capacity > 0,
        read_cache_capacity=cache_capacity or 8 * MB,
    )
    preload(store, num_keys, value_size=value_size, num_threads=num_threads)
    return store


def storm_run(
    num_keys: int,
    num_ops: int,
    num_threads: int,
    cache_capacity: int,
    theta: float = DEFAULT_THETA,
    seed: int = 2,
    warmup_ops: Optional[int] = None,
    value_size: int = STORM_VALUE_SIZE,
    num_ssds: int = STORM_SSDS,
) -> RunResult:
    """One seeded hot-key-storm run at the given cache capacity."""
    store = _build(
        num_keys, num_threads, cache_capacity,
        value_size=value_size, num_ssds=num_ssds,
    )
    if warmup_ops is None:
        warmup_ops = num_ops // 5
    return run_workload(
        store, STORM, num_ops, num_keys,
        num_threads=num_threads, value_size=value_size, theta=theta,
        seed=seed, warmup_ops=warmup_ops,
    )


def storm_comparison(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = STORM_THREADS,
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    theta: float = DEFAULT_THETA,
) -> Tuple[RunResult, RunResult]:
    """The same storm, cache off vs on (identical seeds and sizing).

    Returns ``(off, on)``.
    """
    num_keys = num_keys if num_keys is not None else scaled(4_000)
    num_ops = num_ops if num_ops is not None else scaled(16_000)
    off, on = parallel_map(
        storm_run,
        [
            (num_keys, num_ops, num_threads, 0, theta),
            (num_keys, num_ops, num_threads, cache_capacity, theta),
        ],
    )
    return off, on


def cache_sweep(
    capacities: Sequence[int] = (256 * 1024, 1 * MB, 4 * MB),
    thetas: Sequence[float] = (0.99, 1.2, 1.4),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = 4,
    value_size: int = 1024,
) -> Dict[str, Dict[str, RunResult]]:
    """Hit ratio vs cache size vs skew: a (theta, capacity) grid of
    storm runs with the cache on (1 KB values — the grid is about
    coverage, not device queueing)."""
    num_keys = num_keys if num_keys is not None else scaled(20_000)
    num_ops = num_ops if num_ops is not None else scaled(20_000)
    tasks = [
        (theta, capacity, num_keys, num_ops, num_threads, value_size)
        for theta in thetas
        for capacity in capacities
    ]
    units = parallel_map(_sweep_cell, tasks)
    results: Dict[str, Dict[str, RunResult]] = {
        f"theta={theta}": {} for theta in thetas
    }
    for (theta, capacity, *_rest), result in zip(tasks, units):
        label = (
            f"{capacity // MB}MB" if capacity >= MB
            else f"{capacity // 1024}KB"
        )
        results[f"theta={theta}"][label] = result
    return results


def _sweep_cell(
    theta: float,
    capacity: int,
    num_keys: int,
    num_ops: int,
    num_threads: int,
    value_size: int,
) -> RunResult:
    return storm_run(
        num_keys, num_ops, num_threads, capacity, theta=theta,
        value_size=value_size, num_ssds=2,
    )


def hit_ratio(result: RunResult) -> float:
    """Cache hit ratio from a run's store stats (0.0 when cache off)."""
    hits = result.stats.get("rc_hits", 0.0)
    misses = result.stats.get("rc_misses", 0.0)
    total = hits + misses
    return hits / total if total else 0.0


def check_hit_ratio(on: RunResult, minimum: float = 0.5) -> Tuple[bool, str]:
    """Acceptance gate: the storm's hit ratio must reach ``minimum``."""
    ratio = hit_ratio(on)
    ok = ratio >= minimum
    return ok, f"storm hit ratio {ratio:.1%} (gate: >= {minimum:.0%})"


def check_read_p99(off: RunResult, on: RunResult) -> Tuple[bool, str]:
    """Acceptance gate: cache-on read p99 strictly below cache-off."""
    p_off = off.per_kind["read"].p99()
    p_on = on.per_kind["read"].p99()
    ok = p_on < p_off
    return ok, (
        f"read p99 {p_on:.1f}us with cache vs {p_off:.1f}us without "
        f"(gate: lower)"
    )


# ----------------------------------------------------------------------
# Cluster hot-key defense (full mode only)
# ----------------------------------------------------------------------
def _cached_shard_factory(cache_capacity: int):
    """Like the default shard factory, plus a per-shard read cache."""
    from repro.core.config import PrismConfig
    from repro.core.prism import Prism
    from repro.faults.injector import FaultConfig
    from repro.obs.metrics import MetricsRegistry

    def factory(shard_id, clock):
        config = PrismConfig(
            faults=FaultConfig(seed=9000 + shard_id),
            enable_read_cache=True,
            read_cache_capacity=cache_capacity,
        )
        return Prism(
            config,
            metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
            clock=clock,
        )

    return factory


def cluster_hot_spread(
    num_shards: int = 4,
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    clients_per_shard: int = 4,
    cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    hot_key_threshold: int = 8,
    theta: float = DEFAULT_THETA,
    value_size: int = STORM_VALUE_SIZE,
):
    """Storm on a replicated cluster: primary reads vs hot-key spread.

    Both clusters run RF=2 with per-shard read caches; the second adds
    the router's hot-key defense so celebrity reads round-robin across
    replicas instead of hammering one shard.  Storm-sized (32 KB)
    values make the celebrity shard's DRAM channel the bottleneck —
    the serving capacity the spread doubles.  Returns
    ``(primary, spread)`` as :class:`ClusterRunResult`.
    """
    num_keys = num_keys if num_keys is not None else scaled(2_000)
    num_ops = num_ops if num_ops is not None else scaled(16_000)
    common = (
        num_shards, num_keys, num_ops, clients_per_shard,
        cache_capacity, theta, value_size,
    )
    primary, spread = parallel_map(
        _hot_spread_leg,
        [("primary", None) + common, ("spread", hot_key_threshold) + common],
    )
    return primary, spread


def _hot_spread_leg(
    read_policy: str,
    threshold: Optional[int],
    num_shards: int,
    num_keys: int,
    num_ops: int,
    clients_per_shard: int,
    cache_capacity: int,
    theta: float,
    value_size: int,
):
    from repro.cluster.router import ClusterConfig, PrismCluster
    from repro.cluster.runner import run_cluster_workload

    cluster = PrismCluster(
        ClusterConfig(
            num_shards=num_shards,
            replication_factor=2,
            replication_mode="quorum",
            read_policy=read_policy,
            hot_key_threshold=threshold,
        ),
        shard_factory=_cached_shard_factory(cache_capacity),
    )
    preload(
        cluster, num_keys, value_size=value_size, num_threads=4, seed=1
    )
    result = run_cluster_workload(
        cluster, STORM, num_ops, num_keys,
        clients_per_shard=clients_per_shard, value_size=value_size,
        theta=theta, seed=3,
    )
    cluster.close()
    return result
