"""Canonical experiment definitions: one function per paper figure/table.

Each function builds the stores at the paper's cost-parity
configuration (scaled), runs the workloads, and returns a structured
result; the ``benchmarks/`` suite calls these and prints paper-style
tables next to the values the paper reports.

Scale: ``REPRO_SCALE`` (env var, default 1.0) multiplies dataset and
op counts.  Results are virtual-time metrics, so ratios — not absolute
Kops — are the comparable quantities.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import RunResult, preload, run_workload
from repro.bench.stores import (
    build_kvell,
    build_matrixkv,
    build_prism,
    build_rocksdb_nvm,
    build_slmdb,
)
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.parallel import parallel_map
from repro.workloads import NUTANIX, WORKLOADS, WorkloadSpec

UPDATE_ONLY = WorkloadSpec(name="UPDATE", update=1.0)

MB = 1024**2


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(64, int(n * scale()))


# Default experiment sizing (multiplied by REPRO_SCALE).
NUM_KEYS = 12_000
NUM_OPS = 12_000
NUM_THREADS = 8
VALUE_SIZE = 1024
SCAN_OPS_DIVISOR = 5  # scans touch ~50 values each; fewer ops suffice


def _dataset_bytes(num_keys: int, value_size: int) -> int:
    return num_keys * value_size


def _run_series(
    store,
    workloads: Sequence[str],
    num_keys: int,
    num_ops: int,
    num_threads: int,
    value_size: int = VALUE_SIZE,
    theta: float = 0.99,
    warmup: bool = True,
) -> Dict[str, RunResult]:
    results: Dict[str, RunResult] = {}
    for name in workloads:
        spec = WORKLOADS[name] if name in WORKLOADS else NUTANIX
        ops = num_ops if spec.scan == 0 else max(200, num_ops // SCAN_OPS_DIVISOR)
        if name == "LOAD":
            results[name] = run_workload(
                store, spec, num_keys, num_keys, num_threads, value_size, theta
            )
            continue
        results[name] = run_workload(
            store,
            spec,
            ops,
            num_keys,
            num_threads,
            value_size,
            theta,
            warmup_ops=ops // 2 if warmup else 0,
        )
    return results


def _standard_stores(
    num_keys: int,
    num_threads: int,
    value_size: int = VALUE_SIZE,
    num_ssds: int = 2,
) -> Dict[str, Callable[[], object]]:
    data = _dataset_bytes(num_keys, value_size)
    return {
        "Prism": lambda: build_prism(
            num_threads=num_threads,
            num_ssds=num_ssds,
            dataset_bytes=data,
            expected_keys=num_keys * 3,
        ),
        "KVell": lambda: build_kvell(num_ssds=num_ssds, dataset_bytes=data),
        "MatrixKV": lambda: build_matrixkv(num_ssds=num_ssds, dataset_bytes=data),
        "RocksDB-NVM": lambda: build_rocksdb_nvm(dataset_bytes=data),
    }


# ----------------------------------------------------------------------
# Figure 7 + Table 3: YCSB throughput and latency, four stores
# ----------------------------------------------------------------------
def _ycsb_unit(
    name: str,
    workloads: Tuple[str, ...],
    num_keys: int,
    num_ops: int,
    num_threads: int,
) -> Dict[str, RunResult]:
    """One store's full workload series (spawn-safe task unit)."""
    store = _standard_stores(num_keys, num_threads)[name]()
    if "LOAD" not in workloads:
        preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
        return _run_series(store, workloads, num_keys, num_ops, num_threads)
    load = run_workload(
        store, WORKLOADS["LOAD"], num_keys, num_keys, num_threads, VALUE_SIZE
    )
    rest = _run_series(
        store,
        [w for w in workloads if w != "LOAD"],
        num_keys,
        num_ops,
        num_threads,
    )
    rest["LOAD"] = load
    return rest


def ycsb_comparison(
    workloads: Sequence[str] = ("LOAD", "A", "B", "C", "D", "E"),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
    stores: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Fig. 7 / Table 3: Prism vs KVell vs MatrixKV vs RocksDB-NVM."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(NUM_OPS) if num_ops is None else num_ops
    names = [
        k for k in _standard_stores(num_keys, num_threads)
        if stores is None or k in stores
    ]
    units = parallel_map(
        _ycsb_unit,
        [
            (name, tuple(workloads), num_keys, num_ops, num_threads)
            for name in names
        ],
    )
    return dict(zip(names, units))


# ----------------------------------------------------------------------
# Figure 8 + Table 4: Prism vs SLM-DB, single thread
# ----------------------------------------------------------------------
def slmdb_comparison(
    workloads: Sequence[str] = ("LOAD", "A", "B", "C", "D", "E"),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Fig. 8 / Table 4.  The paper gives both stores 64 MB buffers and
    8 M keys; scaled here, single-threaded like open-source SLM-DB."""
    num_keys = scaled(8_000) if num_keys is None else num_keys
    num_ops = scaled(6_000) if num_ops is None else num_ops
    names = ["Prism", "SLM-DB"]
    units = parallel_map(
        _slmdb_unit,
        [(name, tuple(workloads), num_keys, num_ops) for name in names],
    )
    return dict(zip(names, units))


def _slmdb_unit(
    name: str, workloads: Tuple[str, ...], num_keys: int, num_ops: int
) -> Dict[str, RunResult]:
    if name == "Prism":
        store = build_prism(
            num_threads=1,
            num_ssds=2,
            svc_capacity=1 * MB,
            pwb_total=1 * MB,
            expected_keys=num_keys * 3,
        )
    else:
        store = build_slmdb()
    load = run_workload(
        store, WORKLOADS["LOAD"], num_keys, num_keys, 1, VALUE_SIZE
    )
    rest = _run_series(
        store,
        [w for w in workloads if w != "LOAD"],
        num_keys,
        num_ops,
        1,
    )
    rest["LOAD"] = load
    return rest


# ----------------------------------------------------------------------
# Figure 9: skew sensitivity
# ----------------------------------------------------------------------
def skew_sweep(
    thetas: Sequence[float] = (0.5, 0.9, 0.99, 1.2, 1.5),
    workloads: Sequence[str] = ("A", "B", "C", "D", "E"),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
    stores: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[float, RunResult]]]:
    """Fig. 9: relative throughput vs Zipfian coefficient.

    Returns results[store][workload][theta]; normalize to theta=0.99
    like the paper."""
    num_keys = scaled(8_000) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    names = list(_standard_stores(num_keys, num_threads)) + ["SLM-DB"]
    if stores is not None:
        names = [k for k in names if k in stores]
    tasks = [
        (name, theta, tuple(workloads), num_keys, num_ops, num_threads)
        for name in names
        for theta in thetas
    ]
    units = parallel_map(_skew_unit, tasks)
    out: Dict[str, Dict[str, Dict[float, RunResult]]] = {
        name: {w: {} for w in workloads} for name in names
    }
    for (name, theta, *_rest), unit in zip(tasks, units):
        for w, result in unit.items():
            out[name][w][theta] = result
    return out


def _skew_unit(
    name: str,
    theta: float,
    workloads: Tuple[str, ...],
    num_keys: int,
    num_ops: int,
    num_threads: int,
) -> Dict[str, RunResult]:
    """One (store, theta) cell of the skew sweep (fresh store)."""
    if name == "SLM-DB":
        store, threads = build_slmdb(), 1
    else:
        store = _standard_stores(num_keys, num_threads)[name]()
        threads = num_threads
    preload(store, num_keys, VALUE_SIZE, num_threads=threads)
    out: Dict[str, RunResult] = {}
    for w in workloads:
        spec = WORKLOADS[w]
        ops = num_ops if spec.scan == 0 else max(200, num_ops // SCAN_OPS_DIVISOR)
        out[w] = run_workload(
            store,
            spec,
            ops,
            num_keys,
            threads,
            VALUE_SIZE,
            theta=theta,
            warmup_ops=ops // 2,
        )
    return out


# ----------------------------------------------------------------------
# Figure 10: large dataset + Nutanix production mix
# ----------------------------------------------------------------------
def large_dataset(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[str, RunResult]]:
    """Fig. 10a: the 1-billion-pair run, scaled 10x over the default
    dataset so cache:data ratios shrink the way the paper's did."""
    num_keys = scaled(40_000) if num_keys is None else num_keys
    num_ops = scaled(10_000) if num_ops is None else num_ops
    # Cache budgets stay at the default (small) dataset's size: the
    # dataset outgrew the hardware, exactly like 1 TB vs 36 GB.
    small = _dataset_bytes(scaled(NUM_KEYS), VALUE_SIZE)
    names = ["Prism", "KVell"]
    units = parallel_map(
        _large_dataset_unit,
        [(name, small, num_keys, num_ops, num_threads) for name in names],
    )
    return dict(zip(names, units))


def _large_dataset_unit(
    name: str, small: int, num_keys: int, num_ops: int, num_threads: int
) -> Dict[str, RunResult]:
    if name == "Prism":
        store = build_prism(
            num_threads=num_threads,
            dataset_bytes=small,
            expected_keys=num_keys * 2,
        )
    else:
        store = build_kvell(dataset_bytes=small)
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    return _run_series(
        store, ("A", "B", "C", "D", "E"), num_keys, num_ops, num_threads
    )


def nutanix_run(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, RunResult]:
    """Fig. 10b: the Nutanix production mix, Prism vs KVell."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(NUM_OPS) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    names = ["Prism", "KVell"]
    units = parallel_map(
        _nutanix_unit,
        [(name, data, num_keys, num_ops, num_threads) for name in names],
    )
    return dict(zip(names, units))


def _nutanix_unit(
    name: str, data: int, num_keys: int, num_ops: int, num_threads: int
) -> RunResult:
    if name == "Prism":
        store = build_prism(
            num_threads=num_threads,
            dataset_bytes=data,
            expected_keys=num_keys * 3,
        )
    else:
        store = build_kvell(dataset_bytes=data)
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    return run_workload(
        store,
        NUTANIX,
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 2,
    )


# ----------------------------------------------------------------------
# Figure 11: thread combining vs timeout-based async IO
# ----------------------------------------------------------------------
def thread_combining_sweep(
    queue_depths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[int, RunResult]]:
    """Fig. 11: YCSB-C throughput/latency vs queue depth, for
    opportunistic thread combining (TC) and the 100 us timeout
    strawman (TA)."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    tasks = [
        (mode, qd, data, num_keys, num_ops, num_threads)
        for mode in ("tc", "ta")
        for qd in queue_depths
    ]
    units = parallel_map(_combining_unit, tasks)
    out: Dict[str, Dict[int, RunResult]] = {"TC": {}, "TA": {}}
    for (mode, qd, *_rest), result in zip(tasks, units):
        out[mode.upper()][qd] = result
    return out


def _combining_unit(
    mode: str, qd: int, data: int, num_keys: int, num_ops: int, num_threads: int
) -> RunResult:
    store = build_prism(
        num_threads=num_threads,
        dataset_bytes=data,
        expected_keys=num_keys * 2,
        read_batching=mode,
        queue_depth=qd,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    return run_workload(
        store,
        WORKLOADS["C"],
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 4,
    )


# ----------------------------------------------------------------------
# Figure 12: SSD-level write amplification vs skew
# ----------------------------------------------------------------------
def waf_sweep(
    thetas: Sequence[float] = (0.5, 0.99, 1.2),
    value_sizes: Sequence[int] = (512, 1024),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[int, Dict[str, Dict[float, float]]]:
    """Fig. 12: update-only WAF for Prism / KVell / MatrixKV."""
    num_keys = scaled(8_000) if num_keys is None else num_keys
    num_ops = scaled(16_000) if num_ops is None else num_ops
    tasks = [
        (value_size, theta, name, num_keys, num_ops, num_threads)
        for value_size in value_sizes
        for theta in thetas
        for name in ("Prism", "KVell", "MatrixKV")
    ]
    units = parallel_map(_waf_unit, tasks)
    out: Dict[int, Dict[str, Dict[float, float]]] = {
        vs: {"Prism": {}, "KVell": {}, "MatrixKV": {}} for vs in value_sizes
    }
    for (value_size, theta, name, *_rest), waf in zip(tasks, units):
        out[value_size][name][theta] = waf
    return out


def _waf_unit(
    value_size: int,
    theta: float,
    name: str,
    num_keys: int,
    num_ops: int,
    num_threads: int,
) -> float:
    data = _dataset_bytes(num_keys, value_size)
    if name == "Prism":
        store = build_prism(
            num_threads=num_threads,
            dataset_bytes=data,
            expected_keys=num_keys * 2,
        )
    elif name == "KVell":
        store = build_kvell(dataset_bytes=data)
    else:
        store = build_matrixkv(dataset_bytes=data)
    preload(store, num_keys, value_size, num_threads=num_threads)
    ssd_before = store.ssd_bytes_written()
    put_before = store.bytes_put
    run_workload(
        store,
        UPDATE_ONLY,
        num_ops,
        num_keys,
        num_threads,
        value_size,
        theta=theta,
    )
    # Include the drain: buffered data eventually reaches flash (and
    # triggers the compactions the paper's long-running measurement
    # captured).
    store.flush()
    app = store.bytes_put - put_before
    ssd = store.ssd_bytes_written() - ssd_before
    return ssd / app if app else 0.0


# ----------------------------------------------------------------------
# Figures 13–14: number of SSDs
# ----------------------------------------------------------------------
def ssd_scaling(
    ssd_counts: Sequence[int] = (1, 2, 4, 8),
    workloads: Sequence[str] = ("A", "C"),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[str, Dict[int, RunResult]]]:
    """Figs. 13–14: throughput and latency vs aggregated SSDs."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    tasks = [
        (n, name, tuple(workloads), data, num_keys, num_ops, num_threads)
        for n in ssd_counts
        for name in ("Prism", "KVell")
    ]
    units = parallel_map(_ssd_scaling_unit, tasks)
    out: Dict[str, Dict[str, Dict[int, RunResult]]] = {
        "Prism": {w: {} for w in workloads},
        "KVell": {w: {} for w in workloads},
    }
    for (n, name, *_rest), unit in zip(tasks, units):
        for w, result in unit.items():
            out[name][w][n] = result
    return out


def _ssd_scaling_unit(
    n: int,
    name: str,
    workloads: Tuple[str, ...],
    data: int,
    num_keys: int,
    num_ops: int,
    num_threads: int,
) -> Dict[str, RunResult]:
    if name == "Prism":
        store = build_prism(
            num_threads=num_threads,
            num_ssds=n,
            dataset_bytes=data,
            expected_keys=num_keys * 2,
        )
    else:
        store = build_kvell(num_ssds=n, dataset_bytes=data)
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    return {
        w: run_workload(
            store,
            WORKLOADS[w],
            num_ops,
            num_keys,
            num_threads,
            VALUE_SIZE,
            warmup_ops=num_ops // 2,
        )
        for w in workloads
    }


# ----------------------------------------------------------------------
# Figure 15: PWB and SVC sizing
# ----------------------------------------------------------------------
def buffer_size_sweep(
    pwb_sizes: Sequence[int] = (1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB),
    svc_sizes: Sequence[int] = (1 * MB, 2 * MB, 4 * MB, 8 * MB, 12 * MB),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[int, Dict[str, RunResult]]]:
    """Fig. 15: (a) LOAD/A vs PWB size, (b) C/E vs SVC size."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    tasks = [
        ("pwb", size, num_keys, num_ops, num_threads) for size in pwb_sizes
    ] + [("svc", size, num_keys, num_ops, num_threads) for size in svc_sizes]
    units = parallel_map(_buffer_unit, tasks)
    out: Dict[str, Dict[int, Dict[str, RunResult]]] = {"pwb": {}, "svc": {}}
    for (kind, size, *_rest), unit in zip(tasks, units):
        out[kind][size] = unit
    return out


def _buffer_unit(
    kind: str, size: int, num_keys: int, num_ops: int, num_threads: int
) -> Dict[str, RunResult]:
    if kind == "pwb":
        store = build_prism(
            num_threads=num_threads,
            pwb_total=size,
            expected_keys=num_keys * 3,
        )
        load = run_workload(
            store, WORKLOADS["LOAD"], num_keys, num_keys, num_threads, VALUE_SIZE
        )
        a = run_workload(
            store, WORKLOADS["A"], num_ops, num_keys, num_threads, VALUE_SIZE
        )
        return {"LOAD": load, "A": a}
    store = build_prism(
        num_threads=num_threads,
        svc_capacity=size,
        expected_keys=num_keys * 3,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    c = run_workload(
        store,
        WORKLOADS["C"],
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 2,
    )
    e = run_workload(
        store,
        WORKLOADS["E"],
        max(200, num_ops // SCAN_OPS_DIVISOR),
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 10,
    )
    return {"C": c, "E": e}


# ----------------------------------------------------------------------
# Figure 16: multicore scalability
# ----------------------------------------------------------------------
def multicore_scalability(
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    workloads: Sequence[str] = ("A", "C", "E"),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[int, RunResult]]]:
    """Fig. 16: throughput vs core count — Prism, KVell (QD 64 and
    QD 1), MatrixKV."""
    num_keys = scaled(8_000) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    names = ["Prism", "KVell(QD64)", "KVell(QD1)", "MatrixKV"]
    tasks = [
        (name, t, tuple(workloads), data, num_keys, num_ops)
        for name in names
        for t in thread_counts
    ]
    units = parallel_map(_multicore_unit, tasks)
    out: Dict[str, Dict[str, Dict[int, RunResult]]] = {
        name: {w: {} for w in workloads} for name in names
    }
    for (name, t, *_rest), unit in zip(tasks, units):
        for w, result in unit.items():
            out[name][w][t] = result
    return out


def _multicore_unit(
    name: str,
    t: int,
    workloads: Tuple[str, ...],
    data: int,
    num_keys: int,
    num_ops: int,
) -> Dict[str, RunResult]:
    if name == "Prism":
        store = build_prism(
            num_threads=t, dataset_bytes=data, expected_keys=num_keys * 2
        )
    elif name == "KVell(QD64)":
        store = build_kvell(dataset_bytes=data, queue_depth=64)
    elif name == "KVell(QD1)":
        store = build_kvell(dataset_bytes=data, queue_depth=1)
    else:
        store = build_matrixkv(dataset_bytes=data)
    preload(store, num_keys, VALUE_SIZE, num_threads=t)
    out: Dict[str, RunResult] = {}
    for w in workloads:
        spec = WORKLOADS[w]
        ops = num_ops if spec.scan == 0 else max(200, num_ops // SCAN_OPS_DIVISOR)
        out[w] = run_workload(
            store,
            spec,
            ops,
            num_keys,
            t,
            VALUE_SIZE,
            warmup_ops=ops // 2,
        )
    return out


# ----------------------------------------------------------------------
# Figure 17: garbage-collection timeline
# ----------------------------------------------------------------------
def gc_timeline(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Tuple[RunResult, Prism]:
    """Fig. 17: YCSB-A throughput over time on a space-constrained
    Value Storage, with GC events marked."""
    num_keys = scaled(6_000) if num_keys is None else num_keys
    num_ops = scaled(30_000) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    # Squeeze Value Storage so GC must run: ~3x the dataset per store.
    store = build_prism(
        num_threads=num_threads,
        num_ssds=2,
        dataset_bytes=data,
        expected_keys=num_keys * 2,
        ssd_capacity=max(16 * MB, 2 * data),
        gc_free_threshold=0.3,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    result = run_workload(
        store,
        WORKLOADS["A"],
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        timeline_bucket=2e-3,
    )
    return result, store


# ----------------------------------------------------------------------
# §7.6 ablations: the impact of individual techniques
# ----------------------------------------------------------------------
def ablations(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, Dict[str, RunResult]]:
    """Per-technique ablation matrix (§7.6 "Impact of individual
    techniques"): async bandwidth-optimized writes (PWB), thread
    combining, SVC, scan-aware eviction."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(8_000) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    variants: Dict[str, Dict] = {
        "full": {},
        "no-pwb": {"enable_pwb": False},
        "sync-read": {"read_batching": "sync", "queue_depth": 1},
        "no-svc": {"enable_svc": False},
        "no-scan-aware": {"svc_scan_aware": False},
        "page-granule-svc": {"svc_page_mode": True},
    }
    tasks = [
        (overrides, data, num_keys, num_ops, num_threads)
        for overrides in variants.values()
    ]
    units = parallel_map(_ablation_unit, tasks)
    return dict(zip(variants, units))


def _ablation_unit(
    overrides: Dict, data: int, num_keys: int, num_ops: int, num_threads: int
) -> Dict[str, RunResult]:
    store = build_prism(
        num_threads=num_threads,
        dataset_bytes=data,
        expected_keys=num_keys * 3,
        **overrides,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    return _run_series(store, ("A", "C", "E"), num_keys, num_ops, num_threads)


# ----------------------------------------------------------------------
# §7.6: NVM space and recovery time
# ----------------------------------------------------------------------
def nvm_space(num_keys: Optional[int] = None) -> Dict[str, float]:
    """NVM footprint per key (the paper: ~5.4 GB per 100 M pairs,
    i.e. ~54 B/key for HSIT + key index)."""
    num_keys = scaled(20_000) if num_keys is None else num_keys
    store = build_prism(num_threads=4, expected_keys=num_keys * 2)
    preload(store, num_keys, VALUE_SIZE, num_threads=4)
    store.flush()
    hsit = store.hsit.nvm_bytes()
    index = store.index.nvm_bytes()
    return {
        "keys": float(num_keys),
        "hsit_bytes": float(hsit),
        "index_bytes": float(index),
        "bytes_per_key": (hsit + index) / num_keys,
    }


def recovery_comparison(
    num_keys: Optional[int] = None, num_threads: int = NUM_THREADS
) -> Dict[str, float]:
    """Recovery time: Prism (index+HSIT scan on NVM) vs KVell (full
    SSD scan).  The paper: 6.9 s vs 10.4 s for 100 GB."""
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    prism = build_prism(
        num_threads=num_threads, dataset_bytes=data, expected_keys=num_keys * 2
    )
    preload(prism, num_keys, VALUE_SIZE, num_threads=num_threads)
    prism.crash()
    report = prism.recover(recovery_threads=num_threads)
    kvell = build_kvell(dataset_bytes=data)
    preload(kvell, num_keys, VALUE_SIZE, num_threads=num_threads)
    return {
        "prism_seconds": report.duration,
        "prism_keys": float(report.recovered_keys),
        "kvell_seconds": kvell.recovery_time(),
    }


# ----------------------------------------------------------------------
# Robustness: throughput under injected faults + recovery after crash
# ----------------------------------------------------------------------
def fault_recovery(
    error_rates: Sequence[float] = (0.0, 1e-3, 5e-3),
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, object]:
    """YCSB-A under seeded transient device faults.

    For each error rate: run, report throughput degradation relative
    to the fault-free baseline plus retry/injection counters, audit
    the store (zero invariant violations expected despite faults),
    then crash + recover and report the recovery virtual time.
    """
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(NUM_OPS) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    tasks = [
        (rate, data, num_keys, num_ops, num_threads) for rate in error_rates
    ]
    units = parallel_map(_fault_unit, tasks)
    out: Dict[str, object] = {"runs": {}, "faults": {}}
    for rate, (result, stats) in zip(error_rates, units):
        label = f"rate={rate:g}"
        out["runs"][label] = result
        out["faults"][label] = stats
    return out


def _fault_unit(
    rate: float, data: int, num_keys: int, num_ops: int, num_threads: int
) -> Tuple[RunResult, Dict[str, float]]:
    from repro.core.checker import audit
    from repro.faults.injector import FaultConfig

    faults = None
    if rate > 0.0:
        faults = FaultConfig(
            seed=13,
            read_error_rate=rate,
            write_error_rate=rate,
            flush_error_rate=rate / 10,
            stuck_rate=rate / 10,
        )
    store = build_prism(
        num_threads=num_threads,
        dataset_bytes=data,
        expected_keys=num_keys * 3,
        faults=faults,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    result = run_workload(
        store,
        WORKLOADS["A"],
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 4,
    )
    report = audit(store)
    store.crash()
    recovery = store.recover(recovery_threads=num_threads)
    stats = {
        "injected": float(store.injector.total_injected) if store.injector else 0.0,
        "retries": float(store.retry_exec.retries),
        "audit_violations": float(len(report.violations)),
        "recovered_keys": float(recovery.recovered_keys),
        "recovery_seconds": recovery.duration,
    }
    return result, stats




# ----------------------------------------------------------------------
# Integrity: YCSB-A under silent corruption + scrub/repair/rebuild
# ----------------------------------------------------------------------
def scrub_sweep(
    bitflip_rates: Sequence[float] = (0.0, 1e-3, 1e-2),
    corrupt_fraction: float = 0.01,
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    num_threads: int = NUM_THREADS,
) -> Dict[str, object]:
    """End-to-end integrity sweep (checksums + mirroring enabled).

    For each write-path bit-flip rate: run YCSB-A, then (1) corrupt
    ``corrupt_fraction`` of the stored records at rest, (2) run one
    background scrub pass (detect + repair), (3) kill one Value
    Storage device and rebuild it onto the survivors, and (4) re-read
    every key against a pre-corruption snapshot.  The store must end
    with zero wrong values and zero degraded reads — every corrupted
    record either repaired or reported as a typed unrecoverable loss.
    """
    num_keys = scaled(NUM_KEYS) if num_keys is None else num_keys
    num_ops = scaled(NUM_OPS) if num_ops is None else num_ops
    data = _dataset_bytes(num_keys, VALUE_SIZE)
    tasks = [
        (rate, corrupt_fraction, data, num_keys, num_ops, num_threads)
        for rate in bitflip_rates
    ]
    units = parallel_map(_scrub_unit, tasks)
    out: Dict[str, object] = {"runs": {}, "scrub": {}}
    for rate, (result, stats) in zip(bitflip_rates, units):
        label = f"rate={rate:g}"
        out["runs"][label] = result
        out["scrub"][label] = stats
    return out


def _scrub_unit(
    rate: float,
    corrupt_fraction: float,
    data: int,
    num_keys: int,
    num_ops: int,
    num_threads: int,
) -> Tuple[RunResult, Dict[str, float]]:
    import random as _random

    from repro.faults.errors import ReadDegradedError, UnrecoverableCorruptionError
    from repro.faults.injector import FaultConfig
    from repro.repair import Scrubber, rebuild_storage

    counter_names = (
        "corruption.detected",
        "corruption.repaired",
        "corruption.unrecoverable",
        "scrub.chunks_scanned",
        "scrub.mirrors_refreshed",
    )
    # The injector is always attached here: even the rate-0 leg needs
    # it for at-rest corruption and the device kill.
    faults = FaultConfig(seed=29, bitflip_rate=rate, torn_write_rate=rate / 10)
    store = build_prism(
        num_threads=num_threads,
        dataset_bytes=data,
        expected_keys=num_keys * 3,
        faults=faults,
        enable_checksums=True,
        mirror_chunks=True,
    )
    preload(store, num_keys, VALUE_SIZE, num_threads=num_threads)
    result = run_workload(
        store,
        WORKLOADS["A"],
        num_ops,
        num_keys,
        num_threads,
        VALUE_SIZE,
        warmup_ops=num_ops // 4,
    )
    # Snapshot every key before injecting at-rest damage; these reads
    # are checksum-verified (and may already heal write-path bit
    # flips), so the snapshot is trustworthy.
    expected: Dict[bytes, bytes] = {}
    lost_before = 0
    for key, _idx in list(store.index.items()):
        try:
            value = store.get(key)
        except UnrecoverableCorruptionError:
            lost_before += 1
            continue
        if value is not None:
            expected[key] = value
    # (1) seeded bit-rot on a fraction of the stored records.
    records = []
    for vs in store.storages:
        for chunk_id, info in vs._chunks.items():
            for offset, slot in info.slots.items():
                if slot.valid:
                    records.append((vs, chunk_id, offset, slot.size))
    rng = _random.Random(31)
    n_corrupt = int(len(records) * corrupt_fraction)
    for vs, chunk_id, offset, size in rng.sample(records, n_corrupt):
        store.injector.corrupt_at_rest(
            vs.ssd,
            chunk_id * vs.chunk_size + offset,
            vs.header_size + size,
            at=store.clock.now,
        )
    # (2) one background scrub pass.
    scrub = Scrubber(store).scrub_once()
    # (3) lose a whole Value Storage, rebuild it onto survivors.
    victim = store.storages[0]
    store.injector.kill_device(victim.ssd.name, store.clock.now)
    rebuild = rebuild_storage(store, victim.vs_id)
    # (4) verify every snapshotted key.
    wrong = degraded = unrecoverable = 0
    for key, value in expected.items():
        try:
            got = store.get(key)
        except ReadDegradedError:
            degraded += 1
        except UnrecoverableCorruptionError:
            unrecoverable += 1
        else:
            if got != value:
                wrong += 1
    # Fold the integrity counters into the run's metrics snapshot
    # (scrub and rebuild happen after the workload's registry swap).
    if result.metrics is not None:
        counters = result.metrics.setdefault("counters", {})
        for name in counter_names:
            counters[name] = float(counters.get(name, 0)) + float(
                store.metrics.counter(name).value
            )
        result.metrics.setdefault("gauges", {})["repair.rebuild_seconds"] = (
            store.metrics.gauge("repair.rebuild_seconds").value
        )
    combined = result.metrics["counters"] if result.metrics else {}
    stats = {
        "silent_injected": float(store.injector.silent_injected),
        "at_rest_corrupted": float(n_corrupt),
        "detected": float(combined.get("corruption.detected", 0.0)),
        "repaired": float(combined.get("corruption.repaired", 0.0)),
        "unrecoverable": float(combined.get("corruption.unrecoverable", 0.0)),
        "chunks_scanned": float(scrub.chunks_scanned),
        "scrub_repaired": float(scrub.repaired),
        "mirrors_refreshed": float(scrub.mirrors_refreshed),
        "rebuild_records": float(rebuild.records_repaired),
        "rebuild_lost": float(rebuild.records_lost),
        "rebuild_seconds": rebuild.duration,
        "wrong_values": float(wrong),
        "degraded_reads": float(degraded),
        "unrecoverable_reads": float(unrecoverable),
        "lost_before_snapshot": float(lost_before),
    }
    return result, stats
