"""Benchmark harness: drives any store with N virtual threads and
collects the metrics the paper reports (throughput, latency
percentiles, WAF, timelines)."""

from repro.bench.runner import RunResult, preload, run_workload
from repro.bench.stores import (
    build_kvell,
    build_matrixkv,
    build_prism,
    build_rocksdb_nvm,
    build_slmdb,
)
from repro.bench.report import format_table, ratio

__all__ = [
    "RunResult",
    "preload",
    "run_workload",
    "build_prism",
    "build_kvell",
    "build_matrixkv",
    "build_rocksdb_nvm",
    "build_slmdb",
    "format_table",
    "ratio",
]
