"""Gray-failure experiment: a fail-slow replica vs the defended router.

The scenario: a read-heavy uniform workload on a 3-shard RF=2 quorum
cluster; a quarter of the way in, one replica's devices go *gray* —
every IO still succeeds but takes 10× as long.  Nothing errors, so the
fail-stop machinery (retries, failover, re-replication) never reacts;
only latency tells.  Three runs answer the question:

* **healthy** — no fault; the read-tail baseline;
* **undefended** — the gray fault with health monitoring off: the read
  p99 collapses toward the inflated device latency whenever the router
  reads from the slow replica;
* **defended** — the same fault with :class:`HealthConfig` armed:
  EWMA scoring flags the outlier, its circuit breaker opens and reads
  steer to healthy replicas, and reads that do overrun the adaptive
  hedge delay race a speculative read at the next healthy replica.

Stores are deliberately tight (tiny Scan-aware Value Cache and PWB) so
reads actually reach the SSDs — with the default 32 MB SVC the whole
working set is served from DRAM and device-level gray failures never
touch the read tail.

Acceptance gates:

* **tail** — the defended gray read p99 stays within ``2×`` the
  healthy baseline's (undefended it is ~10× here);
* **overhead** — hedging stays cheap: wasted hedges (speculative reads
  that lost the race) are under 10% of all reads.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.experiments import scaled
from repro.bench.runner import preload
from repro.cluster.health import HealthConfig
from repro.cluster.router import ClusterConfig, PrismCluster
from repro.cluster.runner import ClusterRunResult, GrayPlan, run_cluster_workload
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel import parallel_map
from repro.sim.clock import VirtualClock
from repro.storage.specs import FLASH_SSD_GEN4_SPEC
from repro.workloads.ycsb import WorkloadSpec

KB = 1024

READ_HEAVY_UNIFORM = WorkloadSpec(
    name="gray-read-heavy", read=0.95, update=0.05, distribution="uniform",
    description="95/5 read/update, uniform keys (gray-failure probe)",
)

GRAY_SHARD = 1
GRAY_MULTIPLIER = 10.0
GRAY_AT_FRACTION = 0.25

TAIL_GATE = 2.0  # defended p99 must stay within this × healthy p99
OVERHEAD_GATE = 0.10  # wasted hedges / reads must stay under this


def _tight_shard_factory(shard_id: int, clock: VirtualClock) -> Prism:
    """A store whose reads hit the SSDs: tiny SVC and PWB, so values
    live on flash and device latency inflation is visible end to end."""
    return Prism(
        PrismConfig(
            num_threads=2,
            num_ssds=2,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(4 * 1024 * KB),
            chunk_size=64 * KB,
            pwb_capacity=64 * KB,
            svc_capacity=64 * KB,
            hsit_capacity=50_000,
            faults=FaultConfig(seed=9000 + shard_id),
        ),
        metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
        clock=clock,
    )


def _build(health: Optional[HealthConfig], num_keys: int) -> PrismCluster:
    cluster = PrismCluster(
        ClusterConfig(
            num_shards=3,
            replication_factor=2,
            replication_mode="quorum",
            health=health,
        ),
        shard_factory=_tight_shard_factory,
    )
    preload(cluster, num_keys, num_threads=2, seed=1)
    return cluster


def grayfail_comparison(
    num_keys: Optional[int] = None,
    num_ops: Optional[int] = None,
    clients_per_shard: int = 2,
    multiplier: float = GRAY_MULTIPLIER,
) -> Dict[str, ClusterRunResult]:
    """The three runs: healthy, undefended gray, defended gray."""
    num_keys = num_keys if num_keys is not None else scaled(2_000)
    num_ops = num_ops if num_ops is not None else scaled(8_000)
    plan = GrayPlan(
        shard_id=GRAY_SHARD,
        at_fraction=GRAY_AT_FRACTION,
        multiplier=multiplier,
    )
    legs = [
        ("healthy", None, None),
        ("undefended", None, plan),
        ("defended", HealthConfig(), plan),
    ]
    units = parallel_map(
        _grayfail_leg,
        [
            (health, gray, num_keys, num_ops, clients_per_shard)
            for _label, health, gray in legs
        ],
    )
    return {label: unit for (label, *_), unit in zip(legs, units)}


def _grayfail_leg(
    health: Optional[HealthConfig],
    gray: Optional[GrayPlan],
    num_keys: int,
    num_ops: int,
    clients_per_shard: int,
) -> ClusterRunResult:
    cluster = _build(health, num_keys)
    result = run_cluster_workload(
        cluster,
        READ_HEAVY_UNIFORM,
        num_ops,
        num_keys,
        clients_per_shard=clients_per_shard,
        seed=5,
        gray_plan=gray,
    )
    cluster.close()
    return result


def read_p99(result: ClusterRunResult) -> float:
    """Read-only p99 in microseconds (the tail the gates judge)."""
    reads = result.run.per_kind.get("read")
    return reads.p99() if reads is not None else 0.0


def check_tail(
    healthy: ClusterRunResult, defended: ClusterRunResult
) -> Tuple[bool, str]:
    """Gate: hedging + breaker keep the gray read p99 near baseline."""
    base = read_p99(healthy)
    got = read_p99(defended)
    if base <= 0.0:
        return False, "healthy baseline recorded no reads"
    ratio = got / base
    ok = ratio <= TAIL_GATE
    return ok, (
        f"defended read p99 {got:.1f}us = {ratio:.2f}x healthy "
        f"{base:.1f}us (gate: <= {TAIL_GATE:.1f}x)"
    )


def check_overhead(defended: ClusterRunResult) -> Tuple[bool, str]:
    """Gate: speculation stays cheap — wasted hedges < 10% of reads."""
    counters = (defended.run.metrics or {}).get("counters", {})
    wasted = counters.get("hedge.wasted", 0)
    reads = defended.run.per_kind.get("read")
    total = len(reads) if reads is not None else 0
    if total == 0:
        return False, "defended run recorded no reads"
    frac = wasted / total
    ok = frac <= OVERHEAD_GATE
    return ok, (
        f"{wasted} wasted hedges over {total} reads = {frac:.1%} "
        f"(gate: <= {OVERHEAD_GATE:.0%})"
    )
