"""Metric primitives: counters, gauges, histograms, series, events.

Everything here measures *virtual* time and simulated state — recording
never advances any clock, so enabling metrics cannot change simulated
results, only observe them.

The registry comes in two flavours:

* :class:`MetricsRegistry` — the real thing.  Instruments are created
  on first use and keyed by name, so call sites stay one-liners.
* :data:`NULL_REGISTRY` — a shared no-op registry.  Every instrument
  it hands out swallows updates.  Components hold a registry reference
  unconditionally and the disabled path costs one attribute lookup and
  a no-op call, keeping the default configuration zero-cost.

Latency histograms are log-bucketed (HDR-style: power-of-two octaves
with 16 linear sub-buckets each, ≤ ~6% relative error per bucket) so
p50/p90/p99/p999 come from O(1)-space state instead of sorted sample
arrays, no matter how many operations a run records.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# Sub-bucket resolution: 16 linear buckets per power-of-two octave.
_SUB_BITS = 4
_SUB = 1 << _SUB_BITS  # 16


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class LatencyHistogram:
    """Log-bucketed latency distribution over virtual seconds.

    Values are quantized to integer nanoseconds and placed into
    HDR-style buckets: values below 16 ns get their own bucket; above
    that, each power-of-two octave is divided into 16 linear
    sub-buckets, bounding relative error at ~6%.  Percentiles report
    the bucket midpoint, in microseconds (the paper's unit).
    """

    __slots__ = ("name", "_buckets", "count", "total", "max_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0  # seconds
        self.max_ns = 0

    # -- bucket arithmetic --------------------------------------------
    @staticmethod
    def _index(ns: int) -> int:
        if ns < _SUB:
            return ns
        exp = ns.bit_length() - (_SUB_BITS + 1)
        return (exp << _SUB_BITS) + (ns >> exp)

    @staticmethod
    def _midpoint_ns(index: int) -> float:
        if index < 2 * _SUB:  # linear region covers indices [0, 32)
            return float(index) + 0.5
        exp = (index >> _SUB_BITS) - 1
        mantissa = index - (exp << _SUB_BITS)
        return (mantissa + 0.5) * (1 << exp)

    # -- recording -----------------------------------------------------
    def record(self, seconds: float) -> None:
        # Clamp fp jitter from virtual-time subtraction; observation
        # must never take the store down.  The bucket index computation
        # is _index() inlined — record() runs several times per op.
        ns = int(seconds * 1e9) if seconds > 0 else 0
        if ns < _SUB:
            idx = ns
        else:
            exp = ns.bit_length() - (_SUB_BITS + 1)
            idx = (exp << _SUB_BITS) + (ns >> exp)
        buckets = self._buckets
        buckets[idx] = buckets.get(idx, 0) + 1
        self.count += 1
        self.total += seconds
        if ns > self.max_ns:
            self.max_ns = ns

    def __len__(self) -> int:
        return self.count

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram, bucket-wise.

        Because both sides quantize to the same HDR bucket layout, a
        merge is exact: percentiles of the merged histogram equal the
        percentiles of recording every sample into one histogram.
        This is how cluster-wide p50/p99 are computed from per-shard
        histograms.  Returns ``self`` for chaining.
        """
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns
        return self

    # -- summaries -----------------------------------------------------
    def percentile(self, p: float) -> float:
        """The ``p``-th percentile in microseconds (bucket midpoint)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= target:
                return self._midpoint_ns(idx) / 1e3
        return self.max_ns / 1e3  # pragma: no cover - fp safety net

    def average(self) -> float:
        """Mean latency in microseconds."""
        if self.count == 0:
            return 0.0
        return (self.total / self.count) * 1e6

    def median(self) -> float:
        return self.percentile(50)

    def p90(self) -> float:
        return self.percentile(90)

    def p99(self) -> float:
        return self.percentile(99)

    def p999(self) -> float:
        return self.percentile(99.9)

    def buckets(self) -> Iterator[Tuple[float, int]]:
        """Yield (bucket midpoint in us, count), ascending."""
        for idx in sorted(self._buckets):
            yield self._midpoint_ns(idx) / 1e3, self._buckets[idx]

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "avg_us": self.average(),
            "p50_us": self.median(),
            "p90_us": self.p90(),
            "p99_us": self.p99(),
            "p999_us": self.p999(),
            "max_us": self.max_ns / 1e3,
            "buckets_us": [[mid, n] for mid, n in self.buckets()],
        }


class TimeSeries:
    """Samples of one quantity over virtual time."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def to_dict(self) -> Dict[str, List[float]]:
        return {"t": self.times, "v": self.values}


class EventLog:
    """Structured events (GC runs, reclamations) in virtual time.

    Each event is a plain dict carrying at least ``at`` (virtual time)
    and ``kind``; emitters attach whatever structured fields describe
    the event (victim counts, bytes moved, durations).
    """

    __slots__ = ("name", "events")

    def __init__(self, name: str = "events") -> None:
        self.name = name
        self.events: List[Dict[str, object]] = []

    def emit(self, at: float, kind: str, **fields: object) -> None:
        event: Dict[str, object] = {"at": at, "kind": kind}
        event.update(fields)
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.events)

    def to_list(self) -> List[Dict[str, object]]:
        return list(self.events)


class MetricsRegistry:
    """Named instruments, created on first use.

    Phase attribution uses dotted names: ``phase.<op>.<name>`` for the
    per-phase histograms and ``op.<kind>`` for whole-operation
    latencies, so a JSON consumer can group them without a schema.

    ``prefix`` namespaces every instrument this registry creates (e.g.
    ``shard3/``): two Prism instances living in one process — cluster
    shards — each get their own prefixed registry, so their counters
    stay distinguishable when snapshots are combined into one payload.
    :func:`merge_registries` strips the prefix when folding per-shard
    registries into a cluster-wide view.
    """

    enabled = True

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.event_logs: Dict[str, EventLog] = {}
        # (op, name) -> histogram, so phase() skips the f-string and
        # dict-of-strings lookup on the per-op hot path.  Lives on the
        # registry (not the store) because runners swap store.metrics.
        self._phase_cache: Dict[str, Dict[str, LatencyHistogram]] = {}

    def counter(self, name: str) -> Counter:
        name = self.prefix + name
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        name = self.prefix + name
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> LatencyHistogram:
        name = self.prefix + name
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = LatencyHistogram(name)
        return h

    def timeseries(self, name: str) -> TimeSeries:
        name = self.prefix + name
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name)
        return s

    def events(self, name: str) -> EventLog:
        name = self.prefix + name
        e = self.event_logs.get(name)
        if e is None:
            e = self.event_logs[name] = EventLog(name)
        return e

    def attach_events(self, name: str, log: EventLog) -> None:
        """Expose an externally owned event log through the registry."""
        self.event_logs[self.prefix + name] = log

    def phase(self, op: str, name: str, seconds: float) -> None:
        """Attribute ``seconds`` of an ``op`` to one phase.

        Phases are the highest-rate recordings in an instrumented run,
        so the histogram is resolved through a nested string-keyed
        cache (no tuple allocation) and record() is inlined.
        """
        ops = self._phase_cache.get(op)
        if ops is None:
            ops = self._phase_cache[op] = {}
        h = ops.get(name)
        if h is None:
            h = ops[name] = self.histogram(f"phase.{op}.{name}")
        ns = int(seconds * 1e9) if seconds > 0 else 0
        if ns < _SUB:
            idx = ns
        else:
            exp = ns.bit_length() - (_SUB_BITS + 1)
            idx = (exp << _SUB_BITS) + (ns >> exp)
        buckets = h._buckets
        buckets[idx] = buckets.get(idx, 0) + 1
        h.count += 1
        h.total += seconds
        if ns > h.max_ns:
            h.max_ns = ns

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.to_dict() for k, h in sorted(self.histograms.items())
            },
            "series": {k: s.to_dict() for k, s in sorted(self.series.items())},
            "events": {
                k: e.to_list() for k, e in sorted(self.event_logs.items())
            },
        }


def merge_registries(
    registries: "Sequence[MetricsRegistry]",
    into: Optional[MetricsRegistry] = None,
    strip_prefix: bool = True,
) -> MetricsRegistry:
    """Fold several registries into one cluster-wide view.

    Instruments are matched by name with each source registry's
    ``prefix`` stripped (unless ``strip_prefix=False``), so per-shard
    registries built with prefixes like ``shard0/`` and ``shard1/``
    merge ``shard0/op.get`` and ``shard1/op.get`` into one ``op.get``.

    Merge semantics per instrument type:

    * counters and gauges add (a cluster-wide op count is the sum of
      per-shard counts; gauges here are run totals, not instantaneous
      readings — combining snapshots is the only meaningful merge);
    * histograms merge bucket-wise (exact — see
      :meth:`LatencyHistogram.merge`), which is what makes cluster-wide
      p50/p99 computable from per-shard state;
    * timeseries and event logs concatenate and re-sort by virtual
      time, giving one cluster-wide timeline.
    """
    out = into if into is not None else MetricsRegistry()
    for reg in registries:
        cut = len(reg.prefix) if strip_prefix else 0
        for name, c in reg.counters.items():
            out.counter(name[cut:]).inc(c.value)
        for name, g in reg.gauges.items():
            target = out.gauge(name[cut:])
            target.set(target.value + g.value)
        for name, h in reg.histograms.items():
            out.histogram(name[cut:]).merge(h)
        for name, s in reg.series.items():
            target_series = out.timeseries(name[cut:])
            pairs = sorted(
                list(zip(target_series.times, target_series.values))
                + list(zip(s.times, s.values))
            )
            target_series.times = [t for t, _ in pairs]
            target_series.values = [v for _, v in pairs]
        for name, log in reg.event_logs.items():
            target_log = out.events(name[cut:])
            target_log.events.extend(dict(e) for e in log.events)
            target_log.events.sort(key=lambda e: e["at"])
    return out


# ----------------------------------------------------------------------
# the zero-cost disabled path
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(LatencyHistogram):
    __slots__ = ()

    def record(self, seconds: float) -> None:
        pass

    def merge(self, other: LatencyHistogram) -> LatencyHistogram:
        return self  # shared instrument: swallowing keeps it empty


class _NullTimeSeries(TimeSeries):
    __slots__ = ()

    def append(self, t: float, value: float) -> None:
        pass


class _NullEventLog(EventLog):
    __slots__ = ()

    def emit(self, at: float, kind: str, **fields: object) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Swallows every update; shared instruments, nothing stored."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")
        self._series_null = _NullTimeSeries("null")
        self._events = _NullEventLog("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str) -> LatencyHistogram:
        return self._histogram

    def timeseries(self, name: str) -> TimeSeries:
        return self._series_null

    def events(self, name: str) -> EventLog:
        return self._events

    def attach_events(self, name: str, log: EventLog) -> None:
        pass

    def phase(self, op: str, name: str, seconds: float) -> None:
        pass


NULL_REGISTRY = NullRegistry()
