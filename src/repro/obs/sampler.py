"""Device-level timeseries sampling.

The benchmark driver calls :meth:`DeviceSampler.sample` at a steady
virtual-time cadence while the workload runs.  Sampling only *reads*
simulated state — ring occupancy, byte counters, buffer heads — so it
can never perturb the experiment it observes.

Per sample, for a Prism-shaped store:

* ``ssd.<i>.queue_depth`` — in-flight requests on each Value Storage's
  io_uring ring (Figure 13's device-utilization argument);
* ``ssd.<i>.utilization`` — fraction of the sampling interval the
  device's bandwidth channels were busy, from byte-counter deltas;
* ``nvm.bytes_flushed`` / ``nvm.bytes_written`` — cumulative NVM
  traffic (cache-line flushes are the PWB critical path);
* ``pwb.occupancy.mean`` / ``pwb.occupancy.max`` — ring utilization
  across the per-thread write buffers (Figure 15's sizing argument).

Stores without these attributes (the baselines) are sampled for
whatever subset they expose.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


class DeviceSampler:
    """Periodic reader of device state into a registry's timeseries."""

    def __init__(self, registry: MetricsRegistry, store: object) -> None:
        self.registry = registry
        self.store = store
        # device name -> (last virtual time, last bytes_read, last bytes_written)
        self._last: Dict[str, Tuple[float, int, int]] = {}

    def _utilization(self, name: str, device, now: float) -> Optional[float]:
        """Busy fraction of the interval since this device's last sample."""
        prev = self._last.get(name)
        cur = (now, device.bytes_read, device.bytes_written)
        self._last[name] = cur
        if prev is None:
            return None
        dt = now - prev[0]
        if dt <= 0:
            return None
        read_time = (cur[1] - prev[1]) / device.spec.read_bandwidth
        write_time = (cur[2] - prev[2]) / device.spec.write_bandwidth
        return min(1.0, (read_time + write_time) / dt)

    def sample(self, now: float) -> None:
        reg = self.registry
        storages = getattr(self.store, "storages", None)
        if storages:
            for vs in storages:
                reg.timeseries(f"ssd.{vs.vs_id}.queue_depth").append(
                    now, vs.ring.inflight_snapshot(now)
                )
                util = self._utilization(f"ssd.{vs.vs_id}", vs.ssd, now)
                if util is not None:
                    reg.timeseries(f"ssd.{vs.vs_id}.utilization").append(now, util)
        nvm = getattr(self.store, "nvm", None)
        if nvm is not None:
            reg.timeseries("nvm.bytes_flushed").append(
                now, getattr(nvm, "bytes_flushed", 0)
            )
            reg.timeseries("nvm.bytes_written").append(now, nvm.bytes_written)
        pwbs = getattr(self.store, "pwbs", None)
        if pwbs:
            occ = [pwb.utilization() for pwb in pwbs]
            reg.timeseries("pwb.occupancy.mean").append(now, sum(occ) / len(occ))
            reg.timeseries("pwb.occupancy.max").append(now, max(occ))
