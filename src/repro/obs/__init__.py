"""Observability: metrics, tracing, and device sampling.

The paper's evaluation is built on distributions and timelines —
tail-latency tables (Table 3), GC timelines (Figure 17), batch-size
and device-utilization arguments (Figures 11/13) — none of which a
flat counter dump can support.  This package provides the layer that
makes those quantities observable in the reproduction:

* :class:`MetricsRegistry` — counters, gauges, log-bucketed latency
  histograms (p50/p90/p99/p999 in virtual time), timeseries, and
  structured event logs, all created on first use;
* :data:`NULL_REGISTRY` — the zero-cost disabled default: components
  always hold a registry reference, and the no-op variant swallows
  updates without touching virtual time;
* :class:`DeviceSampler` — periodic per-SSD queue-depth/utilization,
  NVM-flush, and PWB-occupancy sampling for the benchmark driver.
"""

from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    merge_registries,
    NullRegistry,
    NULL_REGISTRY,
    TimeSeries,
)
from repro.obs.sampler import DeviceSampler

__all__ = [
    "Counter",
    "DeviceSampler",
    "EventLog",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "merge_registries",
    "NullRegistry",
    "NULL_REGISTRY",
    "TimeSeries",
]
