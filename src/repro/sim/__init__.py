"""Virtual-time simulation kernel.

The reproduction runs on simulated hardware: device accesses and
critical sections advance *virtual* clocks instead of wall clocks.
Store code stays ordinary synchronous Python; concurrency effects
(queueing at devices, lock contention, IO batching) are modelled by
shared resources that serialize requests in virtual time.

Public surface:

* :class:`VirtualClock` — a monotonically advancing global clock.
* :class:`VThread` — a simulated thread with its own local time.
* :class:`FIFOServer` — a serially reusable resource (lock, CPU core).
* :class:`BandwidthChannel` — a rate-limited resource (device lane).
* :class:`LatencyRecorder` / :class:`Timeline` — measurement helpers.
"""

from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.sim.resources import BandwidthChannel, FIFOServer, VLock
from repro.sim.stats import LatencyRecorder, Timeline

__all__ = [
    "VirtualClock",
    "VThread",
    "FIFOServer",
    "BandwidthChannel",
    "VLock",
    "LatencyRecorder",
    "Timeline",
]
