"""Simulated threads.

A :class:`VThread` models one hardware thread (a core).  It owns a
local clock ``now``; executing work advances it.  Shared resources
(:mod:`repro.sim.resources`) mediate contention between threads by
comparing and updating their local clocks.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import VirtualClock


class VThread:
    """A virtual thread with its own position in virtual time.

    Parameters
    ----------
    tid:
        Small integer identifier; also used as the core number.
    clock:
        The global clock this thread reports its progress to.  When
        omitted a private clock is created, which is convenient for
        functional (non-benchmark) use of the stores.
    background:
        Background threads perform asynchronous work (reclamation,
        compaction, cache maintenance).  Their time does not count
        toward foreground request latency, but they still contend for
        device bandwidth.
    """

    __slots__ = (
        "tid", "name", "clock", "now", "background", "cpu_time", "deadline",
    )

    def __init__(
        self,
        tid: int = 0,
        clock: Optional[VirtualClock] = None,
        name: str = "",
        background: bool = False,
    ) -> None:
        self.tid = tid
        self.name = name or f"vthread-{tid}"
        self.clock = clock if clock is not None else VirtualClock()
        self.now = self.clock.now
        self.background = background
        self.cpu_time = 0.0
        # Absolute virtual time this thread's current operation must
        # finish by, or None.  Set by deadline-aware callers (the
        # cluster router's per-op budget); honoured by the retry layer,
        # which refuses to sleep a backoff past it.
        self.deadline: Optional[float] = None

    def spend(self, seconds: float) -> None:
        """Consume CPU time: advance the local clock by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot spend negative time: {seconds}")
        # Hot path: the clock observation is inlined (instead of calling
        # VirtualClock.observe) — this method runs several times per
        # simulated operation.
        now = self.now + seconds
        self.now = now
        self.cpu_time += seconds
        clock = self.clock
        if now > clock._now:
            clock._now = now

    def wait_until(self, t: float) -> None:
        """Block (idle) until virtual time ``t``."""
        if t > self.now:
            self.now = t
            clock = self.clock
            if t > clock._now:
                clock._now = t

    def fork_background(self, name: str) -> "VThread":
        """Create a background helper sharing this thread's clock."""
        helper = VThread(tid=-1, clock=self.clock, name=name, background=True)
        helper.now = self.now
        return helper

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bg" if self.background else "fg"
        return f"VThread({self.name}, {kind}, now={self.now:.9f})"
