"""Virtual clock shared by all simulated threads and resources."""

from __future__ import annotations


class VirtualClock:
    """A global virtual clock measured in seconds.

    The clock never runs by itself; it only records the latest point in
    virtual time any thread or resource has reached.  Background
    activities (reclamation, compaction, garbage collection) use it to
    decide *when* they logically happened relative to foreground work.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Latest virtual time observed anywhere in the simulation."""
        return self._now

    def observe(self, t: float) -> None:
        """Record that some activity reached virtual time ``t``."""
        if t > self._now:
            self._now = t

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.9f})"
