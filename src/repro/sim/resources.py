"""Shared resources that serialize virtual threads.

Two primitives cover everything the reproduction needs:

* :class:`FIFOServer` — a serially reusable resource.  Used for locks,
  per-worker queues (KVell), and single-request device command
  processing.  A request arriving at time ``t`` starts at
  ``max(t, free_at)`` and occupies the server for its hold time.

* :class:`BandwidthChannel` — a rate-limited resource with one or more
  parallel lanes.  Used for device bandwidth: a transfer of ``n`` bytes
  occupies a lane for ``n / bandwidth`` seconds after a fixed latency.

Both rely on the benchmark driver executing threads in ascending order
of their local clocks, which makes first-come-first-served allocation
in virtual time consistent.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.sim.vthread import VThread


class FIFOServer:
    """A serially reusable resource in virtual time."""

    __slots__ = ("name", "free_at", "busy_time", "requests")

    def __init__(self, name: str = "server") -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.requests = 0

    def service(self, at: float, hold: float) -> Tuple[float, float]:
        """Serve a request arriving at ``at`` for ``hold`` seconds.

        Returns ``(start, end)``.  The caller decides which thread's
        clock to advance with ``end``.
        """
        if hold < 0:
            raise ValueError(f"negative hold time: {hold}")
        start = max(at, self.free_at)
        end = start + hold
        self.free_at = end
        self.busy_time += hold
        self.requests += 1
        return start, end

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this server was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


class VLock:
    """A mutex in virtual time with explicit acquire/release.

    The critical-section length is whatever virtual time the owner
    spends between :meth:`acquire` and :meth:`release`; contending
    threads arriving earlier than the release are pushed behind it.
    """

    __slots__ = ("name", "free_at", "_owner", "hold_time", "acquisitions", "contended")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.free_at = 0.0
        self._owner: Optional[VThread] = None
        self.hold_time = 0.0
        self.acquisitions = 0
        self.contended = 0

    def acquire(self, thread: VThread) -> None:
        if self._owner is thread:
            raise RuntimeError(f"{self.name}: {thread.name} already holds the lock")
        if thread.now < self.free_at:
            self.contended += 1
            thread.wait_until(self.free_at)
        self._owner = thread
        self.acquisitions += 1

    def release(self, thread: VThread) -> None:
        if self._owner is not thread:
            raise RuntimeError(f"{self.name}: released by non-owner {thread.name}")
        self.free_at = thread.now
        self._owner = None

    def __enter__(self) -> "VLock":  # pragma: no cover - convenience only
        raise TypeError("VLock needs a thread; use lock.acquire(thread)")


class WaitList:
    """Event-ordered list of pending completion times.

    Replaces the compare-and-bump pattern over a ``heapq`` min-heap
    (``while heap and heap[0] <= now: heappop``) that device rings use
    to reap finished requests and stall on a full queue.  Entries are
    kept sorted (``bisect.insort``), so expiring a batch of completions
    is a cursor advance instead of one sift-down per entry — the heap
    version dominated the ``repro.storage`` CPU rows on IO-heavy
    workloads.

    Expired entries are removed lazily: :meth:`reap` and :meth:`stall`
    only advance ``_head``; the dead prefix is sliced off once it grows
    past a threshold, keeping amortized cost O(1) per entry.

    Determinism: both structures always surface the *minimum* pending
    time, and removal order for equal floats is value-identical, so
    every stall/bump decision — and therefore every simulated clock —
    is bit-identical to the heap implementation.
    """

    __slots__ = ("_times", "_head")

    # Slice off the expired prefix once it outgrows this many entries
    # (and the live suffix): keeps compaction amortized O(1).
    _COMPACT_TRIGGER = 128

    def __init__(self) -> None:
        self._times: List[float] = []
        self._head = 0

    def add(self, when: float) -> None:
        """Insert a pending completion time."""
        insort(self._times, when, self._head)

    def reap(self, now: float) -> None:
        """Expire every entry with completion time ``<= now``."""
        times = self._times
        head = self._head
        n = len(times)
        while head < n and times[head] <= now:
            head += 1
        self._head = head
        if head > self._COMPACT_TRIGGER and head >= n - head:
            del times[:head]
            self._head = 0

    def stall(self, t: float, limit: int) -> float:
        """Expire earliest entries until fewer than ``limit`` remain.

        Returns ``t`` pushed forward past each expired completion time
        that lies beyond it — the virtual-time analogue of blocking on
        a full ring until a slot frees.
        """
        times = self._times
        head = self._head
        n = len(times)
        while n - head >= limit:
            freed = times[head]
            head += 1
            if freed > t:
                t = freed
        self._head = head
        if head > self._COMPACT_TRIGGER and head >= n - head:
            del times[:head]
            self._head = 0
        return t

    def __len__(self) -> int:
        return len(self._times) - self._head

    def count_after(self, at: float) -> int:
        """Entries still pending strictly after ``at``, without expiring.

        Pure observation: expiring at one observer's clock would change
        stall decisions for threads still behind it.
        """
        times = self._times
        # Sorted order: binary-search the first entry > at.
        lo, hi = self._head, len(times)
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= at:
                lo = mid + 1
            else:
                hi = mid
        return len(times) - lo


class BandwidthChannel:
    """A rate-limited resource modelled as capacity over time.

    Time is divided into fixed buckets; each holds ``bandwidth x
    bucket`` bytes of transfer capacity.  A request drains capacity
    from its arrival bucket forward, so:

    * concurrent small requests pipeline freely (per-request
      ``latency`` delays only the completion, like an NVMe device
      overlapping in-flight commands);
    * sustained load saturates buckets and pushes completions out —
      the bandwidth ceiling;
    * a request stamped *earlier* than previously seen traffic can
      still use leftover capacity from its own time — essential
      because foreground threads and background work (reclamation,
      compaction) do not arrive in global timestamp order.
    """

    __slots__ = (
        "name",
        "bandwidth",
        "lanes",
        "bucket",
        "_used",
        "_capacity",
        "_horizon",
        "_full_floor",
        "bytes_moved",
        "busy_time",
    )

    # How far behind the newest traffic old buckets are kept (seconds).
    PRUNE_WINDOW = 0.2
    _PRUNE_TRIGGER = 1 << 16

    def __init__(
        self,
        bandwidth: float,
        lanes: int = 1,
        name: str = "bw",
        bucket: float = 10e-6,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if lanes < 1:
            raise ValueError(f"need at least one lane: {lanes}")
        if bucket <= 0:
            raise ValueError(f"bucket must be positive: {bucket}")
        self.name = name
        self.bandwidth = float(bandwidth) * lanes
        self.lanes = lanes
        self.bucket = bucket
        self._used: Dict[int, float] = {}
        self._capacity = self.bandwidth * bucket
        self._horizon = 0  # buckets below this are forgotten (treated full)
        # All buckets in [_horizon, _full_floor) are known full: lets a
        # saturated channel skip its backlog in O(1) instead of
        # re-walking every full bucket per request.
        self._full_floor = 0
        self.bytes_moved = 0
        self.busy_time = 0.0

    def request(self, at: float, nbytes: int, latency: float = 0.0) -> float:
        """Transfer ``nbytes`` starting no earlier than ``at``.

        Returns the completion time (transfer end + pipelined latency).

        Performance note: this is the single hottest function of the
        whole simulator (every timed byte of every device flows through
        it), so the common case — the arrival bucket alone absorbs the
        transfer — is special-cased ahead of the general bucket walk.
        Both paths perform the *same arithmetic in the same order* as
        the original single loop; completion times are bit-identical.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        self.bytes_moved += nbytes
        transfer = nbytes / self.bandwidth
        self.busy_time += transfer
        if nbytes == 0:
            return at + latency
        bucket = self.bucket
        cap = self._capacity
        used_map = self._used
        idx = int(at / bucket)
        if idx < self._horizon:
            idx = self._horizon
        full_floor = self._full_floor
        if idx < full_floor:
            idx = full_floor
            extends_floor = True
        else:
            extends_floor = idx == full_floor
        # Fast path: the whole transfer fits in the arrival bucket.
        # (int/float comparison and addition are exact here — nbytes is
        # far below 2**53 — so skipping the float() conversion keeps the
        # arithmetic bit-identical.)
        used = used_map.get(idx, 0.0)
        free = cap - used
        if free >= nbytes:
            new_used = used + nbytes
            used_map[idx] = new_used
            end = bucket * (idx + new_used / cap)
            if extends_floor and new_used >= cap:
                self._full_floor = idx + 1
            if len(used_map) > self._PRUNE_TRIGGER:
                self._prune(idx + 1)
            floor_end = at + transfer
            # Never faster than line rate from the actual start.
            return (end if end > floor_end else floor_end) + latency
        # General case: drain capacity bucket by bucket.
        remaining = float(nbytes)
        end = at
        while remaining > 0:
            used = used_map.get(idx, 0.0)
            free = cap - used
            if free > 0:
                take = min(free, remaining)
                new_used = used + take
                used_map[idx] = new_used
                remaining -= take
                end = bucket * (idx + new_used / cap)
                if extends_floor and new_used >= cap:
                    self._full_floor = idx + 1
                elif extends_floor:
                    extends_floor = False
            elif extends_floor:
                self._full_floor = idx + 1
            idx += 1
        if len(used_map) > self._PRUNE_TRIGGER:
            self._prune(idx)
        # Never faster than line rate from the actual start.
        floor_end = at + transfer
        return (end if end > floor_end else floor_end) + latency

    def _prune(self, newest_idx: int) -> None:
        cutoff = newest_idx - int(self.PRUNE_WINDOW / self.bucket)
        self._used = {i: v for i, v in self._used.items() if i >= cutoff}
        if cutoff > self._horizon:
            self._horizon = cutoff
        if cutoff > self._full_floor:
            self._full_floor = cutoff

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
