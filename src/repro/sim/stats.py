"""Measurement helpers: latency distributions and throughput timelines."""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class LatencyRecorder:
    """Collects per-operation latencies and summarizes them.

    Latencies are recorded in seconds and reported in microseconds,
    matching the units used throughout the paper's tables.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency: {seconds}")
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile latency in microseconds."""
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            value = ordered[lo]
        else:
            frac = rank - lo
            value = ordered[lo] * (1 - frac) + ordered[hi] * frac
        return value * 1e6

    def average(self) -> float:
        """Mean latency in microseconds."""
        if not self.samples:
            return 0.0
        return (sum(self.samples) / len(self.samples)) * 1e6

    def median(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(len(self.samples)),
            "avg_us": self.average(),
            "p50_us": self.median(),
            "p99_us": self.p99(),
        }


class Timeline:
    """Buckets operation completions over virtual time.

    Used for the garbage-collection timeline experiment (Figure 17):
    throughput per bucket reveals whether background work stalls the
    foreground.
    """

    def __init__(self, bucket_seconds: float = 1.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError(f"bucket must be positive: {bucket_seconds}")
        self.bucket_seconds = bucket_seconds
        self.buckets: Dict[int, int] = {}
        self.events: Dict[int, List[str]] = {}

    def record(self, at: float, count: int = 1) -> None:
        idx = int(at / self.bucket_seconds)
        self.buckets[idx] = self.buckets.get(idx, 0) + count

    def mark(self, at: float, label: str) -> None:
        """Annotate a point in time (e.g. "gc-start")."""
        idx = int(at / self.bucket_seconds)
        self.events.setdefault(idx, []).append(label)

    def series(self, until: Optional[float] = None) -> List[float]:
        """Ops/second per bucket, densely from t=0."""
        if not self.buckets:
            return []
        last = int(until / self.bucket_seconds) if until is not None else max(self.buckets)
        return [
            self.buckets.get(i, 0) / self.bucket_seconds for i in range(last + 1)
        ]

    def min_over_max(self) -> float:
        """Stability metric: worst bucket over best bucket."""
        series = self.series()
        interior = series[1:-1] if len(series) > 2 else series
        if not interior or max(interior) == 0:
            return 0.0
        return min(interior) / max(interior)
