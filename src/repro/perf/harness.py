"""The pinned perf suite: seeded workloads timed in host seconds.

Design notes
------------

* **Pinned seeds, pinned sizes.**  Every suite is fully determined by
  its entry in :data:`SUITES` (smoke scales the sizes down).  The
  simulated output of a suite is therefore byte-stable across runs and
  across optimization work — the whole point of the bit-identical
  hot-path discipline (see docs/simulation-model.md) is that wall
  clock is the *only* thing allowed to change here.
* **Observability off.**  The store is built with
  ``enable_metrics=False`` and the runner collects no metrics: the
  suite measures the simulator, not its instrumentation.  (The
  instrumented path has its own coverage via the determinism test,
  which asserts obs-on and obs-off produce identical simulated
  results.)
* **Timing and attribution are separate passes.**  cProfile slows the
  interpreter severalfold, so ops/sec comes from an unprofiled run and
  the per-subsystem CPU breakdown from a second, profiled run of the
  same configuration (capped op count — attribution is stable long
  before throughput is).
* **Peak RSS** uses ``resource.getrusage`` (no third-party deps).
  ``ru_maxrss`` is a process-lifetime high-water mark, so each suite
  reports the peak *as of its completion*; only growth between suites
  is attributable to a single suite.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import pstats
import resource
import sys
import time
from typing import Dict, Optional

OUTPUT_NAME = "BENCH_PERF.json"
BASELINE_NAME = "BENCH_PERF_BASELINE.json"
# CI gate: fail when ycsb_a throughput drops below (1 - tolerance) of
# the committed baseline.  Generous because wall clock on shared
# runners is noisy; real hot-path regressions are usually >2x.
REGRESSION_TOLERANCE = 0.30
GATED_SUITE = "ycsb_a"
# Attribution pass cap: profiling is ~4x slower than running.
PROFILE_OPS_CAP = 20_000

# name -> full-size spec; smoke divides ops/keys by `smoke_divisor`.
SUITES = {
    # The flagship suite (also the CI regression gate): mixed
    # read/update traffic exercises every subsystem — index descent,
    # PWB append + reclamation, HSIT publish, SVC admission.
    "ycsb_a": dict(kind="single", workload="A", ops=100_000, keys=20_000,
                   threads=4, smoke_divisor=20),
    "ycsb_b": dict(kind="single", workload="B", ops=100_000, keys=20_000,
                   threads=4, smoke_divisor=20),
    "ycsb_c": dict(kind="single", workload="C", ops=100_000, keys=20_000,
                   threads=4, smoke_divisor=20),
    # Scan-heavy: range reads walk the PACTree data layer and stream
    # through the Second-chance Value Cache.
    "scan_heavy": dict(kind="single", workload="E", ops=12_000, keys=20_000,
                       threads=4, smoke_divisor=12),
    # Read storm at twice the thread count: saturates the
    # thread-combining queue and the io_uring submission path.
    "tcq_storm": dict(kind="single", workload="C", ops=100_000, keys=20_000,
                      threads=8, smoke_divisor=20),
    # Sharded serving layer: 4 shards, RF=1, uniform read-only load.
    "cluster_4shard": dict(kind="cluster", shards=4, ops=40_000, keys=20_000,
                           clients_per_shard=4, smoke_divisor=10),
}


def _peak_rss_bytes() -> int:
    """Process-lifetime peak RSS in bytes (ru_maxrss is KB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def _subsystem_of(filename: str) -> str:
    """Map a profiled filename to a ``repro.*`` subsystem bucket."""
    marker = "repro/"
    pos = filename.rfind(marker)
    if pos < 0:
        if filename.startswith("<"):  # builtins / C calls
            return "interpreter"
        return "stdlib"
    rest = filename[pos + len(marker):]
    top = rest.split("/", 1)[0]
    if top.endswith(".py"):
        top = top[:-3]
    return f"repro.{top}"


def _cpu_by_subsystem(profile: cProfile.Profile) -> Dict[str, float]:
    """Percentage of profiled CPU (tottime) per repro subsystem."""
    stats = pstats.Stats(profile)
    totals: Dict[str, float] = {}
    grand = 0.0
    for (filename, _line, _name), entry in stats.stats.items():
        tottime = entry[2]
        grand += tottime
        bucket = _subsystem_of(filename)
        totals[bucket] = totals.get(bucket, 0.0) + tottime
    if grand <= 0:
        return {}
    return {
        bucket: round(100.0 * t / grand, 2)
        for bucket, t in sorted(totals.items(), key=lambda kv: -kv[1])
    }


def _scaled(spec: dict, smoke: bool) -> dict:
    if not smoke:
        return spec
    div = spec["smoke_divisor"]
    out = dict(spec)
    out["ops"] = max(200, spec["ops"] // div)
    out["keys"] = max(200, spec["keys"] // div)
    return out


def _run_single(spec: dict, profiled_ops: Optional[int]) -> dict:
    from repro.bench.runner import preload, run_workload
    from repro.bench.stores import build_prism
    from repro.workloads.ycsb import WORKLOADS

    workload = WORKLOADS[spec["workload"]]
    threads = spec["threads"]

    def one_run(ops: int, profile: Optional[cProfile.Profile]):
        store = build_prism(num_threads=threads, enable_metrics=False)
        preload(store, spec["keys"], num_threads=threads)
        if profile is not None:
            profile.enable()
        t0 = time.perf_counter()
        result = run_workload(
            store, workload, ops, spec["keys"], threads,
            collect_metrics=False,
        )
        wall = time.perf_counter() - t0
        if profile is not None:
            profile.disable()
        return result, wall

    result, wall = one_run(spec["ops"], None)
    entry = {
        "ops": result.ops,
        "wall_seconds": round(wall, 4),
        "ops_per_sec": round(result.ops / wall, 1) if wall > 0 else None,
        "virtual_seconds": result.duration,
        "peak_rss_bytes": _peak_rss_bytes(),
    }
    if profiled_ops:
        profile = cProfile.Profile()
        one_run(min(spec["ops"], profiled_ops), profile)
        entry["cpu_pct_by_subsystem"] = _cpu_by_subsystem(profile)
    return entry


def _run_cluster(spec: dict, profiled_ops: Optional[int]) -> dict:
    from repro.bench.cluster import YCSB_C_UNIFORM, _build
    from repro.cluster.runner import run_cluster_workload

    def one_run(ops: int, profile: Optional[cProfile.Profile]):
        cluster = _build(spec["shards"], 1, "quorum", spec["keys"])
        if profile is not None:
            profile.enable()
        t0 = time.perf_counter()
        result = run_cluster_workload(
            cluster, YCSB_C_UNIFORM, ops, spec["keys"],
            clients_per_shard=spec["clients_per_shard"], seed=2,
        )
        wall = time.perf_counter() - t0
        if profile is not None:
            profile.disable()
        cluster.close()
        return result, wall

    result, wall = one_run(spec["ops"], None)
    run = result.run
    entry = {
        "ops": run.ops,
        "wall_seconds": round(wall, 4),
        "ops_per_sec": round(run.ops / wall, 1) if wall > 0 else None,
        "virtual_seconds": run.duration,
        "peak_rss_bytes": _peak_rss_bytes(),
    }
    if profiled_ops:
        profile = cProfile.Profile()
        one_run(min(spec["ops"], profiled_ops), profile)
        entry["cpu_pct_by_subsystem"] = _cpu_by_subsystem(profile)
    return entry


def _run_suite(
    name: str, spec: dict, smoke: bool, profiled_ops: Optional[int]
) -> dict:
    """One complete suite (timing run + optional attribution run)."""
    spec = _scaled(spec, smoke)
    t0 = time.perf_counter()
    if spec["kind"] == "cluster":
        entry = _run_cluster(spec, profiled_ops)
    else:
        entry = _run_single(spec, profiled_ops)
    entry["_elapsed"] = time.perf_counter() - t0
    return entry


def deterministic_view(payload: dict) -> dict:
    """The byte-stable subset of a perf payload: simulated outputs only.

    ``wall_seconds`` / ``ops_per_sec`` / ``peak_rss_bytes`` are host
    measurements and can never be identical across runs or worker
    counts; ``ops`` and ``virtual_seconds`` come out of the simulator
    and must be — this is the view the ``--jobs`` identity tests pin.
    """
    return {
        "mode": payload.get("mode"),
        "suites": {
            name: {
                "ops": entry.get("ops"),
                "virtual_seconds": entry.get("virtual_seconds"),
            }
            for name, entry in payload.get("suites", {}).items()
        },
    }


def run_perf(
    smoke: bool = False,
    out_path: str = OUTPUT_NAME,
    baseline_path: Optional[str] = None,
    profile: bool = True,
) -> dict:
    """Run the pinned suite; write ``out_path``; return the payload.

    Raises ``SystemExit(1)`` when the regression gate fails.  With
    ``REPRO_JOBS > 1`` the suites run in parallel worker processes:
    simulated outputs stay byte-identical (see
    :func:`deterministic_view`) but wall-clock fields reflect core
    contention, so the regression gate self-skips.
    """
    from repro.parallel import get_jobs, parallel_map

    jobs = get_jobs()
    payload = {
        "schema": "bench-perf/v1",
        "mode": "smoke" if smoke else "full",
        "python": sys.version.split()[0],
        "jobs": jobs,
        "suites": {},
    }
    profiled_ops = PROFILE_OPS_CAP if profile else None
    names = list(SUITES)
    entries = parallel_map(
        _run_suite,
        [(name, SUITES[name], smoke, profiled_ops) for name in names],
    )
    for name, entry in zip(names, entries):
        elapsed = entry.pop("_elapsed")
        payload["suites"][name] = entry
        print(
            f"  {name:14} {entry['ops']:>8} ops  "
            f"{entry['wall_seconds']:>8.2f}s wall  "
            f"{entry['ops_per_sec']:>10.0f} ops/s  "
            f"rss {entry['peak_rss_bytes'] // (1 << 20)} MiB  "
            f"(suite total {elapsed:.1f}s)"
        )
        top = entry.get("cpu_pct_by_subsystem")
        if top:
            head = ", ".join(
                f"{k} {v:.0f}%" for k, v in list(top.items())[:4]
            )
            print(f"  {'':14} cpu: {head}")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    digest = hashlib.sha256(
        json.dumps(deterministic_view(payload), sort_keys=True).encode()
    ).hexdigest()
    print(f"sim digest: {digest}")
    if jobs > 1:
        print(
            "regression gate: skipped (--jobs > 1; wall clock under core "
            "contention is not comparable to the serial baseline)"
        )
        return payload
    ok, message = check_regression(payload, baseline_path)
    print(message)
    if not ok:
        raise SystemExit(1)
    return payload


def check_regression(
    payload: dict, baseline_path: Optional[str] = None
) -> "tuple[bool, str]":
    """Compare ``payload`` against the committed baseline, if any.

    Only the :data:`GATED_SUITE` gates, and only when the baseline was
    recorded in the same mode (smoke vs full) — cross-mode ops/sec are
    not comparable.
    """
    path = baseline_path or BASELINE_NAME
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        return True, f"regression gate: skipped (no {path})"
    if baseline.get("mode") != payload.get("mode"):
        return True, (
            f"regression gate: skipped (baseline mode "
            f"{baseline.get('mode')!r} != {payload.get('mode')!r})"
        )
    base = baseline.get("suites", {}).get(GATED_SUITE, {}).get("ops_per_sec")
    cur = payload.get("suites", {}).get(GATED_SUITE, {}).get("ops_per_sec")
    if not base or not cur:
        return True, "regression gate: skipped (missing ycsb_a ops/sec)"
    floor = base * (1.0 - REGRESSION_TOLERANCE)
    if cur < floor:
        return False, (
            f"regression gate: FAIL — {GATED_SUITE} {cur:.0f} ops/s is below "
            f"{floor:.0f} (baseline {base:.0f} - {REGRESSION_TOLERANCE:.0%})"
        )
    return True, (
        f"regression gate: PASS — {GATED_SUITE} {cur:.0f} ops/s vs baseline "
        f"{base:.0f} (floor {floor:.0f})"
    )
