"""Wall-clock performance harness for the simulator itself.

Everything else in this repository measures *virtual* time — how long
the modelled hardware would take.  This package measures *host* time:
how fast the pure-Python simulator grinds through a pinned suite of
seeded workloads.  It exists so that hot-path regressions (an
accidental allocation per op, a de-inlined call chain) show up as a
number in CI instead of as a mysteriously slow laptop six months
later.

Entry point::

    python -m repro.bench perf [--smoke]

which writes ``BENCH_PERF.json`` and, when a committed
``BENCH_PERF_BASELINE.json`` of the same mode exists, fails if the
YCSB-A suite's ops/sec regressed by more than the gate threshold.
"""

from repro.perf.harness import (
    BASELINE_NAME,
    OUTPUT_NAME,
    REGRESSION_TOLERANCE,
    check_regression,
    run_perf,
)

__all__ = [
    "BASELINE_NAME",
    "OUTPUT_NAME",
    "REGRESSION_TOLERANCE",
    "check_regression",
    "run_perf",
]
