"""TinyLFU-style frequency sketch (count-min with aging).

A compact popularity estimator: every access increments a few hashed
counters; an estimate reads their minimum.  Counters saturate at a
small ceiling and are periodically halved ("aging"), so the sketch
tracks *recent* frequency — a key that was hot an hour ago decays back
toward zero instead of squatting on its score forever.

Two consumers:

* :class:`repro.cache.read_cache.ReadCache` uses it for admission:
  a candidate only displaces a resident entry when its recent
  frequency beats the victim's, which is what keeps scan spray and
  YCSB-D "latest" churn from flushing the hot set.
* :class:`repro.cluster.router.PrismCluster` uses it to detect hot
  keys at the router and spread their reads across replicas.

Everything is deterministic (CRC32-based hashing, no RNG), so seeded
runs that consult the sketch stay reproducible.
"""

from __future__ import annotations

import zlib
from typing import List

# Per-row CRC salts: distinct initial CRC values de-correlate the rows
# the way independent hash functions would.
_SALTS = (0x00000000, 0x9E3779B9, 0x85EBCA6B, 0xC2B2AE35)


class FrequencySketch:
    """Count-min sketch with conservative update and periodic halving."""

    __slots__ = ("width", "depth", "max_count", "sample_size", "size", "_mask", "rows")

    def __init__(
        self,
        width: int = 4096,
        depth: int = 4,
        max_count: int = 15,
        sample_factor: int = 8,
    ) -> None:
        if width < 2 or width & (width - 1):
            raise ValueError(f"width must be a power of two >= 2: {width}")
        if not 1 <= depth <= len(_SALTS):
            raise ValueError(f"depth must be in [1, {len(_SALTS)}]: {depth}")
        if max_count < 1:
            raise ValueError(f"max_count must be positive: {max_count}")
        self.width = width
        self.depth = depth
        self.max_count = max_count
        # Aging period: after this many counted increments, halve every
        # counter.  Scales with width so bigger sketches age slower.
        self.sample_size = width * sample_factor
        self.size = 0
        self._mask = width - 1
        self.rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _indexes(self, key: bytes) -> List[int]:
        mask = self._mask
        return [zlib.crc32(key, _SALTS[row]) & mask for row in range(self.depth)]

    def add(self, key: bytes) -> None:
        """Count one access (conservative update: only the minimal
        counters grow, which tightens over-estimates)."""
        idxs = self._indexes(key)
        rows = self.rows
        current = min(rows[r][i] for r, i in enumerate(idxs))
        if current >= self.max_count:
            return
        for r, i in enumerate(idxs):
            if rows[r][i] == current:
                rows[r][i] = current + 1
        self.size += 1
        if self.size >= self.sample_size:
            self._age()

    def estimate(self, key: bytes) -> int:
        """Recent access frequency of ``key`` (never under the truth
        modulo aging; may over-estimate on hash collisions)."""
        rows = self.rows
        return min(rows[r][i] for r, i in enumerate(self._indexes(key)))

    def _age(self) -> None:
        for row in self.rows:
            for i, value in enumerate(row):
                if value:
                    row[i] = value >> 1
        self.size >>= 1
