"""DRAM read-cache tier (ISSUE 6).

Caching as a first-class storage medium: a size-bounded value cache in
front of the store that serves hot point reads at DRAM latency instead
of the full HSIT -> PWB/Value-Storage path.  Admission is frequency
based (TinyLFU-style count-min sketch), so one-hit wonders and
"latest"-churn never flush the resident hot set the way a plain LRU
would.
"""

from repro.cache.read_cache import ReadCache
from repro.cache.sketch import FrequencySketch

__all__ = ["FrequencySketch", "ReadCache"]
