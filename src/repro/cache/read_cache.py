"""Size-bounded DRAM value cache with TinyLFU admission.

Sits in front of the whole read path: :meth:`repro.core.prism.Prism.get`
consults it before touching the index, so a hit costs one DRAM read
instead of index lookup + HSIT read + PWB/Value-Storage fetch.  Misses
pass through untouched and the fetched value is *offered* to the cache,
which admits it only when its recent frequency (count-min sketch,
:class:`repro.cache.sketch.FrequencySketch`) beats the eviction
victim's — a plain LRU would let YCSB-D "latest" churn or a scan spray
flush the resident celebrity set; TinyLFU admission rejects those
one-hit wonders at the door.

Coherence is synchronous: every publish that changes or moves a key's
authoritative copy (put, delete, GC relocation) invalidates the cached
entry inside the same operation, before the mutation acknowledges, so
the cache can never serve a value the store has superseded.

Everything is modeled in virtual time: hits charge the DRAM device's
read latency/bandwidth, admissions charge the copy-in write, and
bookkeeping (sketch, LRU order) is treated as free CPU the same way
the SVC's list maintenance is.  With the cache disabled the store
never constructs one — runs are bit-identical to a build without this
module.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.cache.sketch import FrequencySketch
from repro.sim.vthread import VThread
from repro.storage.dram import DRAMDevice


class _Entry:
    """One cached value."""

    __slots__ = ("key", "hsit_idx", "value", "charged")

    def __init__(self, key: bytes, hsit_idx: int, value: bytes) -> None:
        self.key = key
        self.hsit_idx = hsit_idx
        self.value = value
        self.charged = len(value)


class ReadCache:
    """LRU-ordered value cache guarded by a TinyLFU admission sketch."""

    volatile = True  # crashed first by CrashScenario.power_failure

    def __init__(
        self,
        dram: DRAMDevice,
        capacity: int,
        sketch_width: int = 4096,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"read cache capacity must be positive: {capacity}")
        self.dram = dram
        self.capacity = capacity
        self.sketch = FrequencySketch(width=sketch_width)
        # LRU order: oldest first, most recently used last.
        self.entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        # HSIT index -> cached key, so relocation publishes (which know
        # only the index) can invalidate synchronously.
        self._by_idx: Dict[int, bytes] = {}
        self.used = 0
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.rejections = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Serve ``key`` from DRAM, or None on a miss.

        Every lookup — hit or miss — feeds the frequency sketch; that
        is how a repeatedly missed key earns admission.
        """
        self.sketch.add(key)
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.dram.read(thread, entry.charged)
        self.hits += 1
        return entry.value

    def admit(
        self,
        key: bytes,
        hsit_idx: int,
        value: bytes,
        thread: Optional[VThread] = None,
    ) -> bool:
        """Offer a freshly fetched value; admission-controlled.

        The candidate displaces LRU victims only while its sketch
        frequency strictly beats each victim's — ties keep the
        resident, so a one-hit wonder (frequency 1) can never push out
        an established entry.  Returns True when cached.
        """
        charged = len(value)
        if charged > self.capacity:
            self.rejections += 1
            return False
        old = self.entries.get(key)
        if old is not None:
            # Refresh in place (e.g. re-read after an invalidation that
            # raced a concurrent fill in the same virtual instant).
            self._remove(old)
        freq = self.sketch.estimate(key)
        entries = self.entries
        while self.used + charged > self.capacity:
            victim = next(iter(entries.values()))
            if self.sketch.estimate(victim.key) >= freq:
                self.rejections += 1
                return False
            self._remove(victim)
            self.evictions += 1
        entry = _Entry(key, hsit_idx, value)
        entries[key] = entry
        self._by_idx[hsit_idx] = key
        self.used += charged
        self.dram.write(thread, charged)
        self.admissions += 1
        return True

    # ------------------------------------------------------------------
    # coherence
    # ------------------------------------------------------------------
    def invalidate(self, key: bytes) -> bool:
        """Drop ``key``'s cached copy (its value changed or moved)."""
        entry = self.entries.get(key)
        if entry is None:
            return False
        self._remove(entry)
        self.invalidations += 1
        return True

    def invalidate_idx(self, hsit_idx: int) -> bool:
        """Drop whatever cached entry points at ``hsit_idx`` — the hook
        for publish paths (put/delete supersede, GC relocation) that
        know the HSIT slot but not the key."""
        key = self._by_idx.get(hsit_idx)
        if key is None:
            return False
        return self.invalidate(key)

    def _remove(self, entry: _Entry) -> None:
        del self.entries[entry.key]
        if self._by_idx.get(entry.hsit_idx) == entry.key:
            del self._by_idx[entry.hsit_idx]
        self.used -= entry.charged

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self.entries

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "rc_hits": float(self.hits),
            "rc_misses": float(self.misses),
            "rc_hit_ratio": self.hit_ratio(),
            "rc_admissions": float(self.admissions),
            "rc_rejections": float(self.rejections),
            "rc_evictions": float(self.evictions),
            "rc_invalidations": float(self.invalidations),
            "rc_used_bytes": float(self.used),
            "rc_entries": float(len(self.entries)),
        }

    def crash(self) -> None:
        """DRAM loses everything."""
        self.entries.clear()
        self._by_idx.clear()
        self.used = 0
