"""Bounded retry with virtual-time backoff and failure escalation.

One :class:`RetryExecutor` is shared by every retrying call site in a
store (NVM flushes on the put path, the TCQ leader's SSD submissions,
background reclamation/GC writes, recovery's timed reads), so the
per-device *consecutive failure* counters see the device's whole error
history: after ``fail_threshold`` consecutive failures the executor
declares the device dead through the injector, converting a stream of
transient errors into a permanent :class:`DeviceDeadError` exactly once.

Two flavours match the simulator's two timing styles:

* :meth:`run` — foreground: backoff blocks the calling
  :class:`VThread` (``wait_until``);
* :meth:`run_at` — background: the callable takes a start time and the
  backoff shifts that time forward.

Retries are observable: every attempt emits a ``retry`` event and bumps
``faults.retries``; exhaustion bumps ``faults.retry_exhausted``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

from repro.faults.errors import (
    DeadlineExceededError,
    DeviceDeadError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.obs.metrics import EventLog, MetricsRegistry, NULL_REGISTRY
from repro.sim.vthread import VThread

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Knobs of the retry/backoff/escalation behaviour."""

    max_retries: int = 4
    backoff_base: float = 20e-6  # virtual seconds before the first retry
    backoff_factor: float = 2.0
    # Consecutive failures (across operations) before a device is
    # declared permanently dead.  0 disables escalation.
    fail_threshold: int = 12
    # Bounded decorrelated jitter: each backoff is drawn uniformly from
    # ``[delay × (1 - jitter), delay]`` off a seeded stream, so virtual
    # threads that failed at the same instant stop retrying in lockstep
    # and a recovering device is not stampeded.  0.0 (the default)
    # draws nothing — the schedule stays the exact exponential series,
    # bit-identical to a build without jitter.
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0: {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if self.fail_threshold < 0:
            raise ValueError(f"fail_threshold must be >= 0: {self.fail_threshold}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        self._jitter_rng = (
            random.Random(self.jitter_seed) if self.jitter > 0.0 else None
        )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = self.backoff_base * (self.backoff_factor**attempt)
        rng = self._jitter_rng
        if rng is None or base <= 0.0:
            return base
        return base - base * self.jitter * rng.random()


class RetryExecutor:
    """Applies a :class:`RetryPolicy` to idempotent callables."""

    def __init__(
        self,
        policy: RetryPolicy,
        injector=None,
        events: Optional[EventLog] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.policy = policy
        self.injector = injector
        self.events = events if events is not None else EventLog("retries")
        self.metrics = metrics
        self.consecutive: Dict[str, int] = {}
        self.retries = 0
        self.exhausted = 0
        self.deadline_exceeded = 0

    # ------------------------------------------------------------------
    # failure accounting
    # ------------------------------------------------------------------
    def _note_failure(self, device: str, at: float, exc: Exception) -> None:
        """Count a failure; escalate to device death past the threshold."""
        count = self.consecutive.get(device, 0) + 1
        self.consecutive[device] = count
        threshold = self.policy.fail_threshold
        if threshold and count >= threshold and self.injector is not None:
            self.injector.kill_device(device, at)
            raise DeviceDeadError(
                device,
                getattr(exc, "op", "io"),
                f"{device}: declared dead after {count} consecutive failures",
            ) from exc

    def _note_success(self, device: str) -> None:
        if self.consecutive.get(device):
            self.consecutive[device] = 0

    def _backoff(self, attempt: int, exc: Exception) -> float:
        # A stuck IO already cost the submitter its timeout window.
        return getattr(exc, "timeout", 0.0) + self.policy.delay(attempt)

    def _record_retry(
        self, at: float, device: str, op: str, attempt: int, exc: Exception
    ) -> None:
        self.retries += 1
        self.metrics.counter("faults.retries").inc()
        self.events.emit(
            at,
            "retry",
            device=device,
            op=op,
            attempt=attempt + 1,
            error=type(exc).__name__,
        )

    def _give_up(self, device: str, op: str, attempts: int, exc: Exception) -> None:
        self.exhausted += 1
        self.metrics.counter("faults.retry_exhausted").inc()
        raise RetryExhaustedError(device, op, attempts) from exc

    def _past_deadline(
        self,
        deadline: Optional[float],
        at: float,
        backoff: float,
        device: str,
        op: str,
        exc: Exception,
    ) -> None:
        """Give up typed when the next backoff would outlive the deadline."""
        if deadline is None or at + backoff <= deadline:
            return
        self.deadline_exceeded += 1
        self.metrics.counter("faults.deadline_exceeded").inc()
        self.events.emit(
            at, "deadline_exceeded", device=device, op=op, deadline=deadline
        )
        raise DeadlineExceededError(device, op, deadline) from exc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[], T],
        thread: Optional[VThread] = None,
        device: str = "",
        op: str = "",
        deadline: Optional[float] = None,
    ) -> T:
        """Foreground retry: backoff advances the calling thread.

        ``deadline`` is an absolute virtual time past which no backoff
        may sleep; left ``None``, the calling thread's own
        ``thread.deadline`` (set by SLO-aware callers like the cluster
        router) applies.  A retry whose backoff would cross the
        deadline raises :class:`DeadlineExceededError` immediately
        instead of sleeping on a request that is already out of time.
        """
        if deadline is None and thread is not None:
            deadline = thread.deadline
        attempt = 0
        while True:
            try:
                result = fn()
            except TransientIOError as exc:
                at = thread.now if thread is not None else 0.0
                self._note_failure(device, at, exc)
                if attempt >= self.policy.max_retries:
                    self._give_up(device, op, attempt + 1, exc)
                backoff = self._backoff(attempt, exc)
                self._past_deadline(deadline, at, backoff, device, op, exc)
                if thread is not None:
                    thread.wait_until(thread.now + backoff)
                self._record_retry(at, device, op, attempt, exc)
                attempt += 1
            else:
                self._note_success(device)
                return result

    def run_at(
        self,
        fn: Callable[[float], T],
        at: float,
        device: str = "",
        op: str = "",
        deadline: Optional[float] = None,
    ) -> T:
        """Background retry: ``fn(at)`` re-runs at a later virtual time."""
        attempt = 0
        while True:
            try:
                result = fn(at)
            except TransientIOError as exc:
                self._note_failure(device, at, exc)
                if attempt >= self.policy.max_retries:
                    self._give_up(device, op, attempt + 1, exc)
                backoff = self._backoff(attempt, exc)
                self._past_deadline(deadline, at, backoff, device, op, exc)
                at += backoff
                self._record_retry(at, device, op, attempt, exc)
                attempt += 1
            else:
                self._note_success(device)
                return result
