"""Automated crash exploration over Prism's named crash points.

The sweep answers the question crash-consistency tests usually sample
by hand: *for every instrumented point in the protocol, does a power
failure there leave a recoverable, consistent store that honors the
durability contract?*

The contract it checks (§5.4–5.5 of the paper):

* **acknowledged durability** — every operation that returned before
  the crash is fully visible after recovery (puts readable with their
  exact value, deletes absent);
* **pending atomicity** — the one operation in flight when the crash
  struck is either fully applied or fully invisible, never torn;
* **auditable consistency** — :func:`repro.core.checker.audit` reports
  zero cross-media invariant violations on the recovered store.

Phases:

1. *Discovery*: run the workload once with the store's
   :class:`~repro.storage.crash.CrashPoint` in recording mode, then
   crash + recover while still recording — yielding every label the
   workload reaches and, separately, every label recovery reaches.
2. *Sweep*: for each workload label, replay on a fresh store with that
   label armed, let the simulated power failure fire, recover, and
   verify the contract.  For each recovery-phase label (crash during
   recovery), complete the workload, crash, arm, let recovery die at
   the label, then recover *again* — recovery must be idempotent.
3. *Fuzz* (optional): seeded random (label, occurrence) draws explore
   later occurrences of each point, where state differs from the first
   hit (ring wrap-around, GC pressure, chained reclamations).

Run directly (CI smoke job)::

    PYTHONPATH=src python -m repro.faults.crash_sweep --fuzz 5
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.storage.crash import SimulatedCrash

# One workload operation: ("put", key, value) | ("delete", key)
#                       | ("get", key) | ("scan", key, count)
Op = Tuple


@dataclass
class LabelOutcome:
    """Verdict for one armed crash point."""

    label: str
    occurrence: int
    fired: bool
    audit_violations: List[str] = field(default_factory=list)
    durability_violations: List[str] = field(default_factory=list)
    recovered_keys: int = 0
    during_recovery: bool = False

    @property
    def ok(self) -> bool:
        return self.fired and not self.audit_violations and not self.durability_violations

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else "FAIL"
        phase = " (during recovery)" if self.during_recovery else ""
        return (
            f"[{status}] {self.label}#{self.occurrence}{phase}: "
            f"fired={self.fired} audit={len(self.audit_violations)} "
            f"durability={len(self.durability_violations)}"
        )


@dataclass
class SweepReport:
    """Everything one sweep discovered and verified."""

    workload_labels: Dict[str, int] = field(default_factory=dict)
    recovery_labels: Dict[str, int] = field(default_factory=dict)
    outcomes: List[LabelOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def failures(self) -> List[LabelOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        lines = [
            f"crash sweep: {len(self.workload_labels)} workload labels, "
            f"{len(self.recovery_labels)} recovery labels, "
            f"{len(self.outcomes)} crashes injected"
        ]
        for outcome in self.outcomes:
            if not outcome.ok:
                lines.append(f"  FAIL {outcome.label}#{outcome.occurrence}")
                for v in outcome.audit_violations[:5]:
                    lines.append(f"       audit: {v}")
                for v in outcome.durability_violations[:5]:
                    lines.append(f"       durability: {v}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


class CrashSweep:
    """Discovers, arms, and verifies every reachable crash point."""

    def __init__(
        self,
        store_factory: Callable[[], "Prism"],
        ops: Sequence[Op],
        recovery_threads: int = 2,
    ) -> None:
        self.store_factory = store_factory
        self.ops = list(ops)
        self.recovery_threads = recovery_threads

    # ------------------------------------------------------------------
    # workload application with an acknowledged-state model
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_op(store, op: Op) -> None:
        kind = op[0]
        if kind == "put":
            store.put(op[1], op[2])
        elif kind == "delete":
            store.delete(op[1])
        elif kind == "get":
            store.get(op[1])
        elif kind == "scan":
            store.scan(op[1], op[2])
        else:
            raise ValueError(f"unknown workload op: {op!r}")

    def _replay(self, store) -> Tuple[Dict[bytes, Optional[bytes]], Optional[Op]]:
        """Run ops until completion or a simulated crash.

        Returns ``(acked, pending)``: the mutations whose calls
        returned (value, or None for a delete), and the op in flight
        when the crash struck (None when the workload completed).  An
        op is *acknowledged* exactly when its call returned — the
        moment a real client would consider it durable.
        """
        acked: Dict[bytes, Optional[bytes]] = {}
        for op in self.ops:
            try:
                self._apply_op(store, op)
            except SimulatedCrash:
                return acked, op
            if op[0] == "put":
                acked[op[1]] = op[2]
            elif op[0] == "delete":
                acked[op[1]] = None
        return acked, None

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Label → occurrence count, split into workload vs recovery phase."""
        store = self.store_factory()
        point = store.crash_point
        point.start_recording()
        for op in self.ops:
            self._apply_op(store, op)
        workload = dict(point.seen)
        store.crash()
        store.recover(self.recovery_threads)
        total = point.stop_recording()
        recovery = {
            label: count - workload.get(label, 0)
            for label, count in total.items()
            if count > workload.get(label, 0)
        }
        return workload, recovery

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify_recovered(
        self, store, acked: Dict[bytes, Optional[bytes]], pending: Optional[Op]
    ) -> List[str]:
        """Check acknowledged durability and pending-op atomicity."""
        from repro.faults.errors import DegradedError

        violations: List[str] = []
        pend_key = pending[1] if pending and pending[0] in ("put", "delete") else None
        for key, value in acked.items():
            if key == pend_key:
                continue
            try:
                got = store.get(key)
            except DegradedError as exc:
                violations.append(f"acked key {key!r} unreadable: {exc}")
                continue
            if value is None and got is not None:
                violations.append(f"deleted key {key!r} resurrected as {got[:16]!r}")
            elif value is not None and got != value:
                shown = got[:16] if got is not None else None
                violations.append(
                    f"acked key {key!r} lost: expected {value[:16]!r}, got {shown!r}"
                )
        if pend_key is not None:
            old = acked.get(pend_key)  # None covers both deleted and never-acked
            new = pending[2] if pending[0] == "put" else None
            got = store.get(pend_key)
            if got != old and got != new:
                shown = got[:16] if got is not None else None
                violations.append(
                    f"pending {pending[0]} on {pend_key!r} torn: got {shown!r}, "
                    f"expected old or new state"
                )
        return violations

    def verify_label(self, label: str, occurrence: int = 1) -> LabelOutcome:
        """Crash at one workload-phase point, recover, verify."""
        from repro.core.checker import audit

        store = self.store_factory()
        store.crash_point.arm(label, occurrence)
        acked, pending = self._replay(store)
        outcome = LabelOutcome(
            label=label, occurrence=occurrence, fired=store.crash_point.fired == label
        )
        if not outcome.fired:
            store.crash_point.disarm()
            return outcome
        report = store.recover(self.recovery_threads)
        outcome.recovered_keys = report.recovered_keys
        outcome.audit_violations = list(audit(store).violations)
        outcome.durability_violations = self._verify_recovered(store, acked, pending)
        return outcome

    def verify_recovery_label(self, label: str, occurrence: int = 1) -> LabelOutcome:
        """Crash *during recovery* at one point; recovery must be
        idempotent, so a second pass has to produce a clean store."""
        from repro.core.checker import audit

        store = self.store_factory()
        acked, pending = self._replay(store)
        assert pending is None, "recovery sweep requires an unarmed workload"
        store.crash()
        store.crash_point.arm(label, occurrence)
        fired = False
        try:
            store.recover(self.recovery_threads)
        except SimulatedCrash:
            fired = True
        outcome = LabelOutcome(
            label=label, occurrence=occurrence, fired=fired, during_recovery=True
        )
        if not fired:
            store.crash_point.disarm()
            return outcome
        report = store.recover(self.recovery_threads)
        outcome.recovered_keys = report.recovered_keys
        outcome.audit_violations = list(audit(store).violations)
        outcome.durability_violations = self._verify_recovered(store, acked, None)
        return outcome

    # ------------------------------------------------------------------
    # whole-sweep driver
    # ------------------------------------------------------------------
    def run(self, jobs: Optional[int] = None) -> SweepReport:
        """Discover serially, then verify every label (``jobs`` wide).

        Discovery is one recorded run and stays in-process; each
        verification replays on a fresh store with a private clock, so
        the label list partitions cleanly across workers.  Outcomes
        are collected in label order — identical to the serial sweep.
        (Parallel verification requires a picklable ``store_factory``:
        a module-level function, not a closure.)
        """
        from repro.parallel import parallel_map

        report = SweepReport()
        report.workload_labels, report.recovery_labels = self.discover()
        tasks = [
            (self, False, label, 1)
            for label in sorted(report.workload_labels)
        ] + [
            (self, True, label, 1)
            for label in sorted(report.recovery_labels)
        ]
        report.outcomes = parallel_map(_verify_task, tasks, jobs=jobs)
        return report

    def fuzz(
        self, trials: int, seed: int = 0, jobs: Optional[int] = None
    ) -> List[LabelOutcome]:
        """Seeded random draws over (label, occurrence) pairs."""
        from repro.parallel import parallel_map

        workload, recovery = self.discover()
        rng = random.Random(seed)
        draws: List[tuple] = []
        workload_pool = sorted(workload.items())
        recovery_pool = sorted(recovery.items())
        for _ in range(trials):
            use_recovery = bool(recovery_pool) and rng.random() < 0.25
            pool = recovery_pool if use_recovery else workload_pool
            if not pool:
                break
            label, count = pool[rng.randrange(len(pool))]
            occurrence = rng.randint(1, count)
            draws.append((self, use_recovery, label, occurrence))
        return parallel_map(_verify_task, draws, jobs=jobs)


def _verify_task(
    sweep: "CrashSweep", during_recovery: bool, label: str, occurrence: int
) -> LabelOutcome:
    """One armed crash point, replayed on a fresh store (spawn-safe)."""
    if during_recovery:
        return sweep.verify_recovery_label(label, occurrence)
    return sweep.verify_label(label, occurrence)


# ----------------------------------------------------------------------
# defaults for the CLI / CI smoke job
# ----------------------------------------------------------------------
def default_ops(num_ops: int = 300, num_keys: int = 60, seed: int = 7) -> List[Op]:
    """A deterministic mixed workload dense in protocol transitions:
    overwrites fragment the log (reclamation + GC), deletes exercise
    entry freeing, gets/scans drive cache admission and writeback."""
    rng = random.Random(seed)
    ops: List[Op] = []
    for i in range(num_ops):
        key = b"k%04d" % rng.randrange(num_keys)
        roll = rng.random()
        if roll < 0.55:
            value = bytes([i % 256]) + rng.randbytes(rng.randrange(64, 320))
            ops.append(("put", key, value))
        elif roll < 0.65:
            ops.append(("delete", key))
        elif roll < 0.9:
            ops.append(("get", key))
        else:
            ops.append(("scan", key, 8))
    return ops


def default_store_factory() -> "Prism":
    """A store tight enough that the workload reaches reclamation and
    GC labels, built fresh (and identically) for every replay."""
    from repro.core.config import PrismConfig
    from repro.core.prism import Prism
    from repro.storage.specs import FLASH_SSD_GEN4_SPEC

    kb = 1024
    return Prism(
        PrismConfig(
            num_threads=2,
            num_ssds=2,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(512 * kb),
            chunk_size=16 * kb,
            pwb_capacity=32 * kb,
            gc_free_threshold=0.4,
            svc_capacity=32 * kb,
            hsit_capacity=50_000,
            # Checksummed framing so every post-recovery audit also
            # exercises invariant I7 (stored CRCs match).
            enable_checksums=True,
        )
    )


def tiered_store_factory() -> "Prism":
    """A tiered store tight enough that the 300-op default workload
    reaches the demotion and promotion crash labels: a single tiny
    fast storage (so reclaim and GC fire constantly), one cold QLC
    storage, and a recency window short enough that records go cold
    within the run."""
    from repro.core.config import PrismConfig
    from repro.core.prism import Prism
    from repro.storage.specs import FLASH_SSD_GEN4_SPEC, QLC_SSD_SPEC

    kb = 1024
    return Prism(
        PrismConfig(
            num_threads=2,
            num_ssds=1,
            ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(256 * kb),
            chunk_size=16 * kb,
            pwb_capacity=32 * kb,
            gc_free_threshold=0.4,
            svc_capacity=32 * kb,
            hsit_capacity=50_000,
            enable_checksums=True,
            enable_tiering=True,
            num_cold_ssds=1,
            cold_ssd_spec=QLC_SSD_SPEC.with_capacity(512 * kb),
            tier_hot_threshold=3,
            tier_promote_threshold=2,
            tier_recency_window=32,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.crash_sweep",
        description="Crash at every discovered crash point; verify recovery.",
    )
    parser.add_argument("--ops", type=int, default=300, help="workload length")
    parser.add_argument("--keys", type=int, default=60, help="key-space size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--fuzz", type=int, default=0, help="extra randomized (label, occurrence) trials"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="verify crash labels across N worker processes "
             "(default: $REPRO_JOBS or 1); verdicts are identical to -j1",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="cluster mode: kill a whole shard at each crash point and "
             "audit durability through the router (repro.cluster)",
    )
    parser.add_argument(
        "--gray", type=int, default=None, metavar="SHARD",
        help="cluster mode: additionally latency-inflate this shard's "
             "devices 10x from the start (gray failure + fail-stop combined)",
    )
    parser.add_argument(
        "--rebalance", action="store_true",
        help="elasticity mode: kill a migration participant (source, "
             "target, and leaving shard) at every crash point reached "
             "during a live reshard, and audit through the router",
    )
    parser.add_argument(
        "--role", default="all",
        help="rebalance mode: which participant dies "
             "(source | target | leaving | all)",
    )
    parser.add_argument(
        "--tiering", action="store_true",
        help="tiered store: sweep the hot/cold placement crash points "
             "(tier.demote.*, tier.promote.*) alongside the usual ones",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        from repro.parallel import set_jobs

        set_jobs(args.jobs)

    if args.gray is not None and not args.cluster:
        parser.error("--gray requires --cluster")
    if args.rebalance and (args.cluster or args.gray is not None):
        parser.error("--rebalance and --cluster are mutually exclusive")
    if args.tiering and (args.cluster or args.rebalance):
        parser.error("--tiering runs on a single store; drop --cluster/--rebalance")

    if args.rebalance:
        from repro.cluster.crash_sweep import rebalance_main

        forwarded = [
            "--ops", str(args.ops), "--keys", str(args.keys),
            "--seed", str(args.seed), "--role", args.role,
        ]
        if args.fuzz:
            forwarded += ["--fuzz", str(args.fuzz)]
        return rebalance_main(forwarded)

    if args.cluster:
        from repro.cluster.crash_sweep import ClusterCrashSweep

        sweep = ClusterCrashSweep(
            ops=default_ops(args.ops, args.keys, args.seed),
            gray_shard=args.gray,
        )
        report = sweep.run()
        if args.fuzz:
            report.outcomes.extend(sweep.fuzz(args.fuzz, seed=args.seed))
        print(report.summary())
        return 0 if report.ok else 1

    factory = tiered_store_factory if args.tiering else default_store_factory
    sweep = CrashSweep(factory, default_ops(args.ops, args.keys, args.seed))
    report = sweep.run()
    if args.fuzz:
        report.outcomes.extend(sweep.fuzz(args.fuzz, seed=args.seed))
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
