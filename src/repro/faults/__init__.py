"""Fault injection, retrying IO, degraded mode, and crash exploration.

The subsystem has four layers:

* :mod:`repro.faults.errors` — the typed failure hierarchy under
  :class:`~repro.storage.base.StorageError`;
* :mod:`repro.faults.injector` — a seeded, deterministic
  :class:`FaultInjector` the simulated devices consult;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`/:class:`RetryExecutor`
  for bounded retries with virtual-time backoff and escalation to
  permanent device death;
* :mod:`repro.faults.crash_sweep` — automated crash exploration: it
  discovers every named crash point a workload reaches, crashes at each
  one, recovers, and checks the durability contract and the cross-media
  audit.

See the "Fault model" section of ``docs/simulation-model.md``.
"""

from repro.faults.errors import (
    DeadlineExceededError,
    DegradedError,
    DeviceDeadError,
    DeviceError,
    FlushError,
    NoHealthyStorageError,
    ReadDegradedError,
    RetryExhaustedError,
    StuckIOError,
    TransientIOError,
    TransientReadError,
    TransientWriteError,
)
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    SlowFault,
    slow_store_devices,
)
from repro.faults.retry import RetryExecutor, RetryPolicy

__all__ = [
    "DeadlineExceededError",
    "DegradedError",
    "DeviceDeadError",
    "DeviceError",
    "FaultConfig",
    "FaultInjector",
    "FlushError",
    "NoHealthyStorageError",
    "ReadDegradedError",
    "RetryExecutor",
    "RetryExhaustedError",
    "RetryPolicy",
    "SlowFault",
    "StuckIOError",
    "TransientIOError",
    "TransientReadError",
    "TransientWriteError",
    "slow_store_devices",
]
