"""Typed failure hierarchy for the fault-injection subsystem.

Everything derives from :class:`repro.storage.base.StorageError`, so
existing ``except StorageError`` sites keep working, while callers that
care can distinguish:

* **transient** faults (:class:`TransientIOError` and subclasses) —
  retryable; a bounded retry with virtual-time backoff usually clears
  them;
* **permanent** faults (:class:`DeviceDeadError`) — the device is gone;
  retrying is pointless and the store must degrade;
* **degraded-mode** outcomes (:class:`DegradedError` and subclasses) —
  not device events but the store's typed answer once a device has
  failed: the operation cannot be served, yet no state was corrupted.

The simulator's *raw* accessors (``read_raw``/``load`` without timing)
are never fault-injected: they are the omniscient test/recovery view of
the bytes, not the device interface.
"""

from __future__ import annotations

from repro.storage.base import StorageError


class DeviceError(StorageError):
    """A device-interface operation failed."""

    transient = False

    def __init__(self, device: str, op: str, message: str = "") -> None:
        super().__init__(message or f"{device}: {op} failed")
        self.device = device
        self.op = op


class TransientIOError(DeviceError):
    """Base for retryable device failures."""

    transient = True


class TransientReadError(TransientIOError):
    """A read returned bad data / errored; retrying may succeed."""


class TransientWriteError(TransientIOError):
    """A write was rejected or lost; retrying may succeed."""


class StuckIOError(TransientIOError):
    """An IO hung; the caller's (virtual-time) timeout fired.

    ``timeout`` is the virtual seconds the submitter loses before it
    can give up on the request — the retry layer charges it before
    backing off.
    """

    def __init__(self, device: str, op: str, timeout: float = 0.0) -> None:
        super().__init__(device, op, f"{device}: {op} stuck (timeout {timeout:g}s)")
        self.timeout = timeout


class FlushError(TransientIOError):
    """An NVM cache-line flush did not reach the media.

    The covered lines stay volatile (their undo snapshots survive), so
    re-issuing the flush is always safe — flush is idempotent.
    """

    def __init__(self, device: str, message: str = "") -> None:
        super().__init__(device, "flush", message or f"{device}: flush failed")


class DeviceDeadError(DeviceError):
    """The device has permanently failed; every IO on it errors."""

    def __init__(self, device: str, op: str = "io", message: str = "") -> None:
        super().__init__(device, op, message or f"{device}: device is dead")


class RetryExhaustedError(DeviceError):
    """A bounded retry gave up; the last transient error is chained."""

    def __init__(self, device: str, op: str, attempts: int) -> None:
        super().__init__(
            device, op, f"{device}: {op} failed after {attempts} attempts"
        )
        self.attempts = attempts


class DeadlineExceededError(DeviceError):
    """The operation's deadline budget ran out before a retry could run.

    Raised by the retry layer instead of sleeping a backoff past the
    caller's per-op deadline: the device may well recover eventually,
    but this *request* is out of time and the caller (a hedging router,
    an SLO-bound client) needs the typed give-up now.  The last
    transient error, when one triggered the check, is chained.
    """

    def __init__(self, device: str, op: str, deadline: float) -> None:
        super().__init__(
            device,
            op,
            f"{device}: {op} abandoned — deadline {deadline:.9f} exhausted",
        )
        self.deadline = deadline


class CorruptionError(StorageError):
    """Stored bytes fail their checksum — silent corruption detected.

    Raised by the checksum-verifying parse paths (Value Storage record
    reads, PWB reads, recovery scans) when the CRC32 carried in a
    record's header does not match its content.  ``device`` names the
    medium holding the bad copy and ``where`` localizes it (chunk and
    offset, or PWB id and offset).
    """

    def __init__(self, device: str, where: str = "", message: str = "") -> None:
        super().__init__(
            message or f"{device}: checksum mismatch at {where or 'record'}"
        )
        self.device = device
        self.where = where


class UnrecoverableCorruptionError(CorruptionError):
    """Corruption with no intact copy anywhere — typed data loss.

    Raised after the repair layer exhausted every source (mirror chunk,
    unreclaimed PWB copy): the value cannot be served, but the loss is
    reported explicitly instead of returning wrong bytes.
    """

    def __init__(self, device: str, where: str = "", key: bytes = b"") -> None:
        super().__init__(
            device,
            where,
            f"value for {key!r} lost: no intact copy ({device} at {where})"
            if key
            else f"record at {where or '?'} on {device} lost: no intact copy",
        )
        self.key = key


class DegradedError(StorageError):
    """Base for typed degraded-mode answers from the store."""


class ReadDegradedError(DegradedError):
    """The key's durable copy lives on a dead device.

    The index and every other key stay intact; only values whose sole
    copy is on the failed device are unreachable.
    """

    def __init__(self, device: str, key: bytes = b"") -> None:
        super().__init__(
            f"value for {key!r} unavailable: device {device} is dead"
            if key
            else f"read degraded: device {device} is dead"
        )
        self.device = device
        self.key = key


class NoHealthyStorageError(DegradedError):
    """Every Value Storage device has failed; writes cannot land."""

    def __init__(self, message: str = "no healthy Value Storage device") -> None:
        super().__init__(message)
