"""Seeded, deterministic device-fault injection.

A :class:`FaultInjector` is consulted by the timed device interfaces
(:meth:`SSDDevice.read`/``write``/``*_async``, :meth:`NVMDevice.flush`)
*before* any state changes or time is charged, and either returns (no
fault) or raises a typed error from :mod:`repro.faults.errors`:

* transient read/write errors at configured per-op rates;
* stuck IO — the request hangs and the submitter loses a virtual-time
  timeout before :class:`StuckIOError` surfaces (the retry layer
  charges the timeout);
* failed NVM flushes (the covered lines stay volatile);
* permanent device death — explicit (:meth:`kill_device`) or declared
  by the retry layer after too many consecutive failures.

Determinism: faults are drawn from one ``random.Random(seed)`` in
consult order, and a consult whose rates are all zero draws nothing.
With no injector attached (the default ``NULL_INJECTOR`` in
:mod:`repro.storage.base`) the hooks are no-ops that never touch
virtual time or randomness, so a fault-free run is bit-identical to a
build without the subsystem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.errors import (
    DeviceDeadError,
    FlushError,
    StuckIOError,
    TransientReadError,
    TransientWriteError,
)
from repro.obs.metrics import EventLog, MetricsRegistry, NULL_REGISTRY
from repro.storage.base import NULL_INJECTOR  # re-export for convenience

__all__ = ["FaultConfig", "FaultInjector", "NULL_INJECTOR", "SlowFault"]


@dataclass(frozen=True)
class SlowFault:
    """One fail-slow (gray-failure) schedule: the device stays alive
    but serves IO with inflated latency.

    Unlike every other fault kind, fail-slow never raises — the consult
    hooks return an extra virtual-time *penalty* the device adds to the
    IO's completion.  The penalty for one IO at virtual time ``at`` is::

        add_latency + (multiplier - 1) × base device latency
        [+ stall_penalty when ``at`` falls inside a stall burst]

    where the base latency is the device spec's per-op latency for the
    direction (read/write; flush uses the write latency).  The fault is
    active on ``[start, start + duration)`` of virtual time; stall
    bursts, when configured, open for ``stall_duration`` at the head of
    every ``stall_interval`` within the active window.  The schedule is
    purely a function of virtual time — no randomness is drawn — so two
    identical runs inject identically and a run with no slow faults is
    bit-identical to one without the feature.
    """

    devices: Tuple[str, ...] = ()  # empty = every consulted device
    multiplier: float = 1.0
    add_latency: float = 0.0
    start: float = 0.0
    duration: float = float("inf")
    stall_interval: float = 0.0  # 0 disables stall bursts
    stall_duration: float = 0.0
    stall_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        for name in ("add_latency", "stall_interval", "stall_duration",
                     "stall_penalty"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0: {getattr(self, name)}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.stall_interval > 0 and self.stall_duration > self.stall_interval:
            raise ValueError(
                "stall_duration must fit inside stall_interval: "
                f"{self.stall_duration} > {self.stall_interval}"
            )

    def active(self, at: float) -> bool:
        return self.start <= at < self.start + self.duration

    def penalty(self, base_latency: float, at: float) -> float:
        """Extra virtual seconds for one IO at ``at`` (0.0 if inactive)."""
        if not self.active(at):
            return 0.0
        extra = self.add_latency + (self.multiplier - 1.0) * base_latency
        if (
            self.stall_interval > 0.0
            and (at - self.start) % self.stall_interval < self.stall_duration
        ):
            extra += self.stall_penalty
        return extra


@dataclass
class FaultConfig:
    """Knobs of one fault schedule.

    Rates are per *consult* (one timed IO or flush).  ``stuck_timeout``
    is the virtual time a submitter loses before a stuck request
    surfaces as :class:`StuckIOError`.  ``max_faults`` bounds the total
    number of injected faults (handy for "exactly one error" tests);
    ``dead_devices`` names devices that are dead from the start.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    flush_error_rate: float = 0.0
    stuck_rate: float = 0.0
    stuck_timeout: float = 2e-3
    # Silent corruption (never raises — only checksums can catch it):
    # per SSD write, probability the stored bytes get one flipped bit /
    # get truncated mid-record while the device still reports success.
    bitflip_rate: float = 0.0
    torn_write_rate: float = 0.0
    max_faults: Optional[int] = None
    dead_devices: Tuple[str, ...] = ()
    # Fail-slow (gray-failure) schedules: latency inflation that never
    # raises.  More can be added at run time with
    # :meth:`FaultInjector.add_slow_fault`.
    slow: Tuple[SlowFault, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "flush_error_rate",
            "stuck_rate",
            "bitflip_rate",
            "torn_write_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if self.stuck_timeout < 0:
            raise ValueError(f"stuck_timeout must be >= 0: {self.stuck_timeout}")


class FaultInjector:
    """Decides, per IO, whether a device misbehaves."""

    enabled = True

    def __init__(
        self,
        config: FaultConfig,
        events: Optional[EventLog] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.events = events if events is not None else EventLog("faults")
        self.metrics = metrics
        self.dead: set = set(config.dead_devices)
        self.injected: Dict[str, int] = {}
        self.consults = 0
        # Silent corruptions delivered so far (bit flips, torn writes,
        # at-rest rot) — the scrubber uses this to know whether a scan
        # pass can possibly find anything.
        self.silent_injected = 0
        # Fail-slow: active schedules, per-device onset announcements,
        # and the count of delayed IOs (``fault.slow_injections``).
        self._slow: List[SlowFault] = list(config.slow)
        self._slow_seen: set = set()
        self.slow_injections = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _budget_left(self) -> bool:
        limit = self.config.max_faults
        return limit is None or self.total_injected < limit

    def _emit(self, at: float, device: str, op: str, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.events.emit(at, "fault", device=device, op=op, fault=kind)
        self.metrics.counter(f"faults.injected.{kind}").inc()

    # ------------------------------------------------------------------
    # permanent death
    # ------------------------------------------------------------------
    def kill_device(self, name: str, at: float = 0.0) -> None:
        """Mark a device permanently failed (idempotent)."""
        if name in self.dead:
            return
        self.dead.add(name)
        self.events.emit(at, "device_dead", device=name)
        self.metrics.counter("faults.device_deaths").inc()

    def kill_devices(self, names: Iterable[str], at: float = 0.0) -> None:
        """Kill several devices at one instant (correlated failure)."""
        for name in names:
            self.kill_device(name, at)

    def is_dead(self, name: str) -> bool:
        return name in self.dead

    # ------------------------------------------------------------------
    # fail-slow (gray failures): latency inflation, never raising
    # ------------------------------------------------------------------
    def add_slow_fault(self, fault: SlowFault, at: float = 0.0) -> None:
        """Attach one fail-slow schedule mid-run (gray-failure onset)."""
        self._slow.append(fault)
        self.events.emit(
            at,
            "slow_fault_added",
            devices=list(fault.devices) or ["*"],
            multiplier=fault.multiplier,
            add_latency=fault.add_latency,
            start=fault.start,
        )

    def clear_slow_faults(self, at: float = 0.0) -> int:
        """Drop every fail-slow schedule (the device recovers)."""
        count = len(self._slow)
        self._slow.clear()
        if count:
            self.events.emit(at, "slow_faults_cleared", count=count)
        return count

    def slow_penalty(self, device, op: str, at: float) -> float:
        """Extra virtual seconds the IO loses to active fail-slow faults.

        Purely a function of the schedule and ``at`` — no randomness —
        so identical runs inject identically and zero-schedule runs
        never diverge.
        """
        name = device.name
        spec = device.spec
        base = spec.read_latency if op == "read" else spec.write_latency
        penalty = 0.0
        for fault in self._slow:
            if fault.devices and name not in fault.devices:
                continue
            penalty += fault.penalty(base, at)
        if penalty > 0.0:
            self.slow_injections += 1
            self.metrics.counter("fault.slow_injections").inc()
            if name not in self._slow_seen:
                self._slow_seen.add(name)
                self.events.emit(
                    at, "slow_onset", device=name, op=op, penalty=penalty
                )
        return penalty

    # ------------------------------------------------------------------
    # consult hooks (called by devices before charging any time)
    # ------------------------------------------------------------------
    def before_io(self, device, op: str, at: float) -> float:
        """May raise a typed error for one read/write on ``device``.

        Returns the fail-slow latency penalty (virtual seconds) the
        device must add to this IO's completion — 0.0 unless a
        :class:`SlowFault` is active for the device at ``at``.
        """
        self.consults += 1
        name = device.name
        if name in self.dead:
            raise DeviceDeadError(name, op)
        cfg = self.config
        rate = cfg.read_error_rate if op == "read" else cfg.write_error_rate
        if rate > 0.0 and self._budget_left() and self.rng.random() < rate:
            self._emit(at, name, op, f"{op}_error")
            if op == "read":
                raise TransientReadError(name, op)
            raise TransientWriteError(name, op)
        if (
            cfg.stuck_rate > 0.0
            and self._budget_left()
            and self.rng.random() < cfg.stuck_rate
        ):
            self._emit(at, name, op, "stuck")
            raise StuckIOError(name, op, timeout=cfg.stuck_timeout)
        if self._slow:
            return self.slow_penalty(device, op, at)
        return 0.0

    def before_flush(self, device, at: float) -> float:
        """May fail one NVM cache-line flush on ``device``.

        Returns the fail-slow latency penalty, like :meth:`before_io`.
        """
        self.consults += 1
        name = device.name
        if name in self.dead:
            raise DeviceDeadError(name, "flush")
        cfg = self.config
        if (
            cfg.flush_error_rate > 0.0
            and self._budget_left()
            and self.rng.random() < cfg.flush_error_rate
        ):
            self._emit(at, name, "flush", "flush_error")
            raise FlushError(name)
        if self._slow:
            return self.slow_penalty(device, "flush", at)
        return 0.0

    # ------------------------------------------------------------------
    # silent corruption (never raises — only checksums can catch it)
    # ------------------------------------------------------------------
    def silent_corruption_possible(self) -> bool:
        """True when this schedule can (or did) corrupt stored bytes."""
        cfg = self.config
        return (
            cfg.bitflip_rate > 0.0
            or cfg.torn_write_rate > 0.0
            or self.silent_injected > 0
        )

    def corrupt_write(self, device, at: float, offset: int, data: bytes) -> bytes:
        """Maybe mutate the bytes an SSD write is about to store.

        Called by the timed write paths after :meth:`before_io` — the
        device still reports success; the caller stores the returned
        bytes.  Zero rates return ``data`` untouched without drawing
        randomness, keeping fault-free runs bit-identical.
        """
        cfg = self.config
        if cfg.bitflip_rate <= 0.0 and cfg.torn_write_rate <= 0.0:
            return data
        if not data or not self._budget_left():
            return data
        if cfg.bitflip_rate > 0.0 and self.rng.random() < cfg.bitflip_rate:
            bit = self.rng.randrange(len(data) * 8)
            mutated = bytearray(data)
            mutated[bit // 8] ^= 1 << (bit % 8)
            self.silent_injected += 1
            self._emit(at, device.name, "write", "bitflip")
            return bytes(mutated)
        if (
            cfg.torn_write_rate > 0.0
            and len(data) > 1
            and self.rng.random() < cfg.torn_write_rate
        ):
            cut = self.rng.randrange(1, len(data))
            self.silent_injected += 1
            self._emit(at, device.name, "write", "torn_write")
            return data[:cut]
        return data

    def corrupt_at_rest(
        self, device, offset: int, size: int, at: float = 0.0
    ) -> int:
        """Flip one seeded bit inside ``[offset, offset + size)`` on
        ``device`` (bit-rot while the data sat on media).

        Explicit test/benchmark hook — not consulted by any IO path.
        Returns the absolute byte offset that was corrupted.
        """
        if size <= 0:
            raise ValueError(f"corrupt_at_rest needs a positive size: {size}")
        bit = self.rng.randrange(size * 8)
        raw = bytearray(device.read_raw(offset + bit // 8, 1))
        raw[0] ^= 1 << (bit % 8)
        device.write_raw(offset + bit // 8, bytes(raw))
        self.silent_injected += 1
        self._emit(at, device.name, "at_rest", "bitrot")
        return offset + bit // 8


# ----------------------------------------------------------------------
# failure scenarios spanning a whole store
# ----------------------------------------------------------------------
def store_device_names(store) -> List[str]:
    """Every fault-injectable device of a Prism-shaped store: the NVM
    DIMM, all Value Storage SSDs (fast and cold tier), and any
    chunk-mirror SSDs."""
    names = [store.nvm.name]
    names.extend(ssd.name for ssd in store.ssds)
    names.extend(ssd.name for ssd in getattr(store, "cold_ssds", ()))
    names.extend(ssd.name for ssd in getattr(store, "mirror_ssds", ()))
    return names


def kill_store_devices(store, at: float = 0.0) -> List[str]:
    """Whole-node death: permanently fail every device of one store.

    This is the cluster layer's shard-failure scenario — a machine (or
    its storage backplane) dying takes the NVM buffer, every Value
    Storage SSD, and every mirror with it, so nothing on the node
    remains readable.  Requires the store to have been built with a
    :class:`FaultConfig` (an injector to record the deaths in).
    Returns the device names killed.
    """
    if store.injector is None:
        raise ValueError(
            "store has no fault injector; build it with config.faults set"
        )
    names = store_device_names(store)
    store.injector.kill_devices(names, at)
    return names


def slow_store_devices(
    store,
    at: float = 0.0,
    multiplier: float = 10.0,
    add_latency: float = 0.0,
    duration: float = float("inf"),
    stall_interval: float = 0.0,
    stall_duration: float = 0.0,
    stall_penalty: float = 0.0,
) -> List[str]:
    """Gray-failure onset for a whole node: every device of one store
    starts serving IO with inflated latency from ``at`` on.

    The fail-slow sibling of :func:`kill_store_devices` — the node
    stays alive and keeps acknowledging, it just gets slow, which is
    exactly the failure mode health scoring and hedged reads exist to
    defend against.  Returns the device names inflated.
    """
    if store.injector is None:
        raise ValueError(
            "store has no fault injector; build it with config.faults set"
        )
    names = store_device_names(store)
    store.injector.add_slow_fault(
        SlowFault(
            devices=tuple(names),
            multiplier=multiplier,
            add_latency=add_latency,
            start=at,
            duration=duration,
            stall_interval=stall_interval,
            stall_duration=stall_duration,
            stall_penalty=stall_penalty,
        ),
        at,
    )
    return names
