"""Background integrity scrubber.

A virtual-time vthread walks every in-use Value Storage chunk at a
configurable bandwidth budget, re-reads each valid record, verifies its
checksum, and triggers read-repair for mismatches.  When the primary
copy is clean but the mirror copy has rotted, the mirror region is
refreshed from the primary (restoring redundancy before a second fault
makes the record unrecoverable).

What the scrubber can catch: any corruption of *stored* bytes on a
live primary (bit flips, torn chunk writes, at-rest rot) and rotted
mirror copies of clean primaries.  What it cannot: corruption on a
dead device (the rebuild path handles those records), and anything the
checksum does not cover (DRAM-side slot metadata, which is rebuilt
from the HSIT).

Determinism: a scrub pass is a structural no-op — zero device traffic,
zero clock movement, zero randomness — unless checksums are enabled
*and* an attached injector reports silent corruption is possible, so a
store without corruption injection is bit-identical with or without
scrubbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults.errors import CorruptionError, UnrecoverableCorruptionError
from repro.repair.repair import read_repair
from repro.sim.vthread import VThread
from repro.storage.base import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.prism import Prism


@dataclass
class ScrubReport:
    """What one scrub pass scanned, found, and fixed."""

    chunks_scanned: int = 0
    records_verified: int = 0
    corrupt_found: int = 0
    repaired: int = 0
    unrecoverable: int = 0
    mirrors_refreshed: int = 0
    bytes_read: int = 0
    duration: float = 0.0  # virtual seconds


class Scrubber:
    """Walks chunks, verifies checksums, and repairs what it finds."""

    def __init__(self, store: "Prism", bandwidth: Optional[float] = None) -> None:
        self.store = store
        self.bandwidth = (
            bandwidth if bandwidth is not None else store.config.scrub_bandwidth
        )
        if self.bandwidth <= 0:
            raise ValueError(f"scrub bandwidth must be positive: {bandwidth}")
        self.thread = VThread(-7, store.clock, name="scrubber", background=True)
        self.passes = 0

    def active(self) -> bool:
        """A pass can only find something when checksums are on and the
        fault schedule can (or did) silently corrupt bytes."""
        store = self.store
        if not store.config.enable_checksums:
            return False
        if store.injector is None:
            return False
        return store.injector.silent_corruption_possible()

    def scrub_once(self) -> ScrubReport:
        """One full pass over every healthy Value Storage."""
        report = ScrubReport()
        if not self.active():
            return report
        store, t = self.store, self.thread
        if t.now < store.clock.now:
            t.now = store.clock.now
        start = t.now
        m = store.metrics
        for vs in store.storages:
            if store._vs_dead(vs):
                continue  # rebuild_storage owns records on dead devices
            for chunk_id in sorted(vs._chunks):
                info = vs._chunks.get(chunk_id)
                if info is None:
                    continue  # released while we were scrubbing
                span = max(info.write_head, 1)
                io_start = t.now
                try:
                    io_done = vs.ssd.read_async(t.now, chunk_id * vs.chunk_size, span)
                except StorageError:
                    continue  # device erroring: skip the chunk this pass
                # Bandwidth budget: the pass never scans faster than
                # ``bandwidth`` bytes per virtual second.
                t.wait_until(max(io_done, io_start + span / self.bandwidth))
                report.chunks_scanned += 1
                report.bytes_read += span
                m.counter("scrub.chunks_scanned").inc()
                for offset, slot in list(info.slots.items()):
                    if not slot.valid:
                        continue
                    report.records_verified += 1
                    try:
                        vs.read_record_raw(chunk_id, offset)
                    except CorruptionError:
                        report.corrupt_found += 1
                        m.counter("corruption.detected").inc()
                        store.events.emit(
                            t.now,
                            "scrub_corruption",
                            vs_id=vs.vs_id,
                            chunk=chunk_id,
                            offset=offset,
                        )
                        try:
                            read_repair(
                                store, slot.hsit_idx, b"", vs.vs_id,
                                chunk_id, offset, t,
                            )
                            report.repaired += 1
                        except UnrecoverableCorruptionError:
                            report.unrecoverable += 1
                        continue
                    self._refresh_mirror(vs, chunk_id, offset, report)
        self.passes += 1
        report.duration = t.now - start
        store.events.emit(
            start,
            "scrub",
            chunks=report.chunks_scanned,
            records=report.records_verified,
            corrupt=report.corrupt_found,
            repaired=report.repaired,
            unrecoverable=report.unrecoverable,
            mirrors_refreshed=report.mirrors_refreshed,
            duration=report.duration,
        )
        return report

    def _refresh_mirror(
        self, vs, chunk_id: int, offset: int, report: ScrubReport
    ) -> None:
        """Re-duplicate a clean primary record whose mirror copy rotted."""
        store = self.store
        if vs.mirror is None:
            return
        if store.injector is not None and store.injector.is_dead(vs.mirror.name):
            return
        try:
            vs.read_record_mirror(chunk_id, offset)
            return  # mirror copy intact
        except CorruptionError:
            pass
        except StorageError:
            return
        nbytes = vs.header_size + vs.slot_size(chunk_id, offset)
        addr = chunk_id * vs.chunk_size + offset
        prim = vs.ssd.read_raw(addr, nbytes)
        try:
            self.thread.wait_until(vs.mirror.write_async(self.thread.now, addr, prim))
        except StorageError:
            return  # mirror device failing; try again next pass
        report.mirrors_refreshed += 1
        store.metrics.counter("scrub.mirrors_refreshed").inc()
        store.events.emit(
            self.thread.now,
            "scrub_mirror_refresh",
            vs_id=vs.vs_id,
            chunk=chunk_id,
            offset=offset,
        )
