"""Record repair: re-materialise corrupt or dead Value Storage records.

Repair sources, in order:

1. **Mirror chunk** — when the storage was built with ``mirror_chunks``
   every chunk write was duplicated onto a dedicated mirror SSD; the
   copy is checksum-verified and well-coupledness-checked before use.
2. **Unreclaimed PWB copy** — a record whose reclamation published the
   Value Storage pointer but whose PWB window has not been released yet
   still has its exact bytes on NVM.  A PWB copy is accepted only when
   it is unambiguous: per buffer the *newest* well-coupled record wins
   (append order is version order within one thread), and matches from
   different buffers must agree byte-for-byte — ambiguity could serve a
   stale version, which would be silent wrongness.

A successful repair rewrites the value through the normal publish path
(chunk write on a healthy storage, HSIT pointer flip, old-slot
invalidation), so the healed record is indistinguishable from a fresh
write.  When every source fails the caller gets a typed
:class:`UnrecoverableCorruptionError` — loss is reported, never served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core import pointers as ptr
from repro.faults.errors import UnrecoverableCorruptionError
from repro.sim.vthread import VThread
from repro.storage.base import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.prism import Prism


def _mirror_dead(store: "Prism", vs) -> bool:
    return (
        vs.mirror is not None
        and store.injector is not None
        and store.injector.is_dead(vs.mirror.name)
    )


def fetch_value(
    store: "Prism",
    idx: int,
    vs_id: int,
    chunk_id: int,
    offset: int,
    at: Optional[float] = None,
) -> Optional[Tuple[bytes, str]]:
    """Find an intact copy of the record at (vs_id, chunk_id, offset).

    Returns ``(value, source)`` — source is ``"mirror"`` or ``"pwb"`` —
    or ``None`` when no trustworthy copy exists.  ``at`` (optional)
    timestamps the mirror read for bandwidth accounting.
    """
    vs = store.storages[vs_id]
    # 1. mirror copy (checksum- and coupling-verified)
    if vs.mirror is not None and not _mirror_dead(store, vs):
        try:
            nbytes = vs.header_size + vs.slot_size(chunk_id, offset)
            back, value = vs.read_record_mirror(chunk_id, offset)
            if back == idx:
                if at is not None:
                    vs.mirror.charge_read_async(at, nbytes)
                return value, "mirror"
        except StorageError:
            pass  # mirror copy rotted too (or slot gone); fall through
    # 2. latest unambiguous PWB copy
    candidates: List[bytes] = []
    scanned = 0
    for pwb in store.pwbs:
        best: Optional[bytes] = None
        try:
            for _off, back, value in pwb.records_between(pwb.tail, pwb.head):
                scanned += pwb.header_size + len(value)
                if back == idx:
                    best = value  # newest wins within one buffer
        except StorageError:
            continue  # corrupt PWB region: distrust this buffer entirely
        if best is not None:
            candidates.append(best)
    if scanned:
        store.nvm.charge_read(None, scanned)
    if candidates and all(c == candidates[0] for c in candidates):
        return candidates[0], "pwb"
    return None


def read_repair(
    store: "Prism",
    idx: int,
    key: bytes,
    vs_id: int,
    chunk_id: int,
    offset: int,
    thread: VThread,
) -> bytes:
    """Heal one record in place: fetch an intact copy, rewrite it
    through the normal publish path, and flip the pointer.

    The caller's thread pays the repair latency (this *is* read-repair).
    Raises :class:`UnrecoverableCorruptionError` when no source has an
    intact copy.
    """
    at = thread.now
    vs = store.storages[vs_id]
    where = f"vs{vs_id} chunk {chunk_id} off {offset}"
    fetched = fetch_value(store, idx, vs_id, chunk_id, offset, at=at)
    if fetched is None:
        store.metrics.counter("corruption.unrecoverable").inc()
        store.events.emit(
            at,
            "corruption_unrecoverable",
            vs_id=vs_id,
            chunk=chunk_id,
            offset=offset,
        )
        raise UnrecoverableCorruptionError(vs.ssd.name, where, key)
    value, source = fetched
    target = store._pick_storage(thread.now)
    placements, done = store._retrying_write(target, thread.now, [(idx, value)])
    thread.wait_until(done)
    new_chunk, new_off, _size = placements[0]
    old = store.hsit.publish_location(
        idx, ptr.encode_vs(target.vs_id, new_chunk, new_off), thread
    )
    store._supersede(idx, old, thread)
    store.metrics.counter("corruption.repaired").inc()
    store.events.emit(
        at,
        "repair",
        vs_id=vs_id,
        chunk=chunk_id,
        offset=offset,
        source=source,
        target_vs=target.vs_id,
    )
    return value


@dataclass
class RebuildReport:
    """Outcome of one full dead-storage rebuild."""

    vs_id: int
    records_repaired: int = 0
    records_lost: int = 0
    bytes_restored: int = 0
    duration: float = 0.0  # virtual seconds

    @property
    def ok(self) -> bool:
        return self.records_lost == 0


def rebuild_storage(
    store: "Prism", vs_id: int, batch: int = 64
) -> RebuildReport:
    """Re-materialise every record of one Value Storage onto the
    remaining healthy devices (background, virtual-time-charged).

    Walks the index, finds every key whose durable copy lives on
    ``vs_id``, repairs each from a source (mirror first, then PWB), and
    publishes the new locations in batches through the normal write
    path.  Records with no intact copy anywhere are counted as lost —
    their pointers stay, so reads surface typed errors rather than
    silent absence.
    """
    vs = store.storages[vs_id]
    rt = VThread(-8, store.clock, name=f"rebuild-vs{vs_id}", background=True)
    rt.now = store.clock.now
    start = rt.now
    report = RebuildReport(vs_id=vs_id)
    pending: List[Tuple[int, bytes]] = []

    def _flush_batch() -> None:
        if not pending:
            return
        target = store._pick_storage(rt.now)
        placements, done = store._retrying_write(target, rt.now, list(pending))
        rt.wait_until(done)
        for (idx, value), (chunk_id, offset, _sz) in zip(pending, placements):
            old = store.hsit.publish_location(
                idx, ptr.encode_vs(target.vs_id, chunk_id, offset), rt
            )
            store._supersede(idx, old, rt)
            report.records_repaired += 1
            report.bytes_restored += len(value)
            store.metrics.counter("corruption.repaired").inc()
        pending.clear()

    for _key, idx in list(store.index.items()):
        word = store.hsit.location_word(idx)
        loc = ptr.decode(ptr.clear_dirty(word))
        if not loc.in_vs or loc.vs_id != vs_id:
            continue
        fetched = fetch_value(
            store, idx, vs_id, loc.chunk_id, loc.vs_offset, at=rt.now
        )
        if fetched is None:
            report.records_lost += 1
            store.metrics.counter("corruption.unrecoverable").inc()
            store.events.emit(
                rt.now,
                "rebuild_lost",
                vs_id=vs_id,
                chunk=loc.chunk_id,
                offset=loc.vs_offset,
            )
            continue
        pending.append((idx, fetched[0]))
        if len(pending) >= batch:
            _flush_batch()
    _flush_batch()
    report.duration = rt.now - start
    store.metrics.gauge("repair.rebuild_seconds").set(report.duration)
    store.events.emit(
        start,
        "rebuild",
        vs_id=vs_id,
        records=report.records_repaired,
        lost=report.records_lost,
        bytes=report.bytes_restored,
        duration=report.duration,
    )
    return report
