"""Cross-device self-healing (ISSUE 3).

Shared repair machinery used by the read path (read-repair of corrupt
or dead records), the GC (healing victims before moving them), the
background :class:`Scrubber`, and the explicit dead-device rebuild.
"""

from repro.repair.repair import (
    RebuildReport,
    fetch_value,
    read_repair,
    rebuild_storage,
)
from repro.repair.scrubber import Scrubber, ScrubReport

__all__ = [
    "RebuildReport",
    "ScrubReport",
    "Scrubber",
    "fetch_value",
    "read_repair",
    "rebuild_storage",
]
