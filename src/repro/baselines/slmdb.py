"""SLM-DB (FAST '19): single-level LSM with a persistent B+-tree index.

Design points reproduced:

* the memtable lives on NVM, so writes need no WAL — each insert
  persists its record with store+flush;
* flushed data lands directly in a *single* on-flash level of SSTables
  (which may overlap); a global persistent B+-tree on NVM maps every
  key to its exact SSTable block, so point reads never search levels;
* *selective* compaction merges only SSTables whose live-key ratio
  dropped below a threshold (garbage from overwrites), instead of
  rewriting whole levels;
* like the open-source release, the store is single-threaded — the
  harness drives it with one thread (§7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.interface import KVStore
from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable, _unpack_block
from repro.index.pactree import PACTree
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice
from repro.storage.raid import RAID0
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, NVM_SPEC, DeviceSpec
from repro.storage.ssd import SSDDevice

MB = 1024**2
_BLOCK_BITS = 20  # slot encoding: table_id << 20 | block_no


@dataclass
class SLMDBConfig:
    num_ssds: int = 2
    ssd_spec: DeviceSpec = field(default_factory=lambda: FLASH_SSD_GEN4_SPEC)
    nvm_spec: DeviceSpec = field(default_factory=lambda: NVM_SPEC)
    memtable_bytes: int = 1 * MB  # the paper gives SLM-DB 64 MB; scaled
    sstable_target_bytes: int = 2 * MB
    # Selective compaction: merge tables whose live ratio fell below this.
    live_ratio_threshold: float = 0.5
    compaction_cpu_per_byte: float = 2e-9
    # A persistent NVM skiplist insert is expensive: node allocation,
    # several ordered store+clwb+sfence sequences, and B+-tree
    # bookkeeping (FAST '19 reports write paths of this magnitude).
    write_cpu: float = 6.0e-6
    read_cpu: float = 0.5e-6
    # read() syscall + copy for a page-cache hit (no O_DIRECT).
    page_cache_hit_cost: float = 1.5e-6
    # Inserting one key into the persistent B+-tree during a flush:
    # NVM node allocation, logging, and splits make this the dominant
    # flush cost (the FAST '19 write path is tens of microseconds).
    index_insert_cost: float = 40e-6
    max_compaction_lag: float = 2e-3
    # SLM-DB does not support O_DIRECT, so it leans on the OS page
    # cache and "consumes more memory" than the other stores (§7.4).
    os_page_cache_bytes: int = 10 * MB


class SLMDB(KVStore):
    """Single-Level Merge DB."""

    def __init__(self, config: Optional[SLMDBConfig] = None) -> None:
        self.config = config or SLMDBConfig()
        cfg = self.config
        self.clock = VirtualClock()
        self.nvm = NVMDevice(cfg.nvm_spec)
        self.ssds = [SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)]
        raid = RAID0(self.ssds) if len(self.ssds) > 1 else self.ssds[0]
        self.table_store = BlockStore(raid)
        self.memtable = MemTable()
        self.index = PACTree(self.nvm)  # key -> table_id << 20 | block_no
        self.tables: Dict[int, SSTable] = {}
        from collections import OrderedDict

        self.page_cache: "OrderedDict" = OrderedDict()
        self._cache_blocks = cfg.os_page_cache_bytes // 4096
        self._bg = VThread(-1, self.clock, name="slmdb-bg", background=True)
        self._default_thread = VThread(0, self.clock, name="caller")
        self.bytes_put = 0
        self.puts = 0
        self.gets = 0
        self.scans = 0
        self.flushes = 0
        self.compactions = 0
        self.stall_time = 0.0

    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    @staticmethod
    def _slot(table_id: int, block_no: int) -> int:
        return (table_id << _BLOCK_BITS) | block_no

    @staticmethod
    def _unslot(slot: int) -> Tuple[int, int]:
        return slot >> _BLOCK_BITS, slot & ((1 << _BLOCK_BITS) - 1)

    # ------------------------------------------------------------------
    # write path: persistent memtable, no WAL
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        thread = self._thread(thread)
        self._throttle(thread)
        thread.spend(self.config.write_cpu)
        # The memtable is NVM-resident: persist the record itself.
        self.nvm.charge_write(thread, len(key) + len(value) + 16)
        self.memtable.insert(key, value)
        self.bytes_put += len(value)
        self.puts += 1
        if self.memtable.approximate_size >= self.config.memtable_bytes:
            self._flush_memtable(thread.now, thread)

    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        thread = self._thread(thread)
        thread.spend(self.config.write_cpu)
        self.nvm.charge_write(thread, len(key) + 16)
        existed = self.get(key, thread) is not None
        self.memtable.insert(key, None)
        if self.memtable.approximate_size >= self.config.memtable_bytes:
            self._flush_memtable(thread.now, thread)
        return existed

    def _throttle(self, thread: VThread) -> None:
        debt = self._bg.now - thread.now
        if debt > self.config.max_compaction_lag:
            stall_until = self._bg.now - self.config.max_compaction_lag
            self.stall_time += stall_until - thread.now
            thread.wait_until(stall_until)

    # ------------------------------------------------------------------
    # flush: memtable -> single-level SSTable + B+-tree index updates
    # ------------------------------------------------------------------
    def _flush_memtable(self, at: float, blocking: Optional[VThread] = None) -> None:
        """Flush the memtable to a single-level SSTable.

        SLM-DB is single-threaded: when ``blocking`` is given, the
        flush (SSTable build + per-key B+-tree inserts) runs on the
        caller — the stall the paper's Table 4 shows as SLM-DB's
        millisecond-scale p99 writes."""
        if self._bg.now < at:
            self._bg.now = at
        entries = list(self.memtable.items())
        self.memtable = MemTable()
        live = [(k, v) for k, v in entries if v is not None]
        dead = [k for k, v in entries if v is None]
        if live:
            if blocking is not None:
                table, _ = SSTable.build(self.table_store, live, thread=blocking)
                self._bg.now = max(self._bg.now, blocking.now)
            else:
                table, done = SSTable.build(self.table_store, live, at=self._bg.now)
                self._bg.wait_until(done)
            self.tables[table.table_id] = table
            self._index_table(table, live, blocking)
            self.flushes += 1
        for key in dead:
            old = self.index.lookup(key)
            if old is not None:
                self.index.delete(key, self._bg)
                self._decrement_live(old)
        self._selective_compaction()

    def _index_table(
        self,
        table: SSTable,
        entries: List[Tuple[bytes, Optional[bytes]]],
        blocking: Optional[VThread] = None,
    ) -> None:
        """Point the global B+-tree at each key's block."""
        worker = blocking if blocking is not None else self._bg
        block_no = 0
        # Recompute block boundaries the same way the builder did.
        from repro.baselines.lsm.sstable import BLOCK_SIZE, _pack_record

        used = 0
        for key, value in entries:
            rec = len(_pack_record(key, value))
            if used and used + rec > BLOCK_SIZE:
                block_no += 1
                used = 0
            used += rec
            old = self.index.lookup(key)
            worker.spend(self.config.index_insert_cost)
            self.index.insert(key, self._slot(table.table_id, block_no), worker)
            if old is not None:
                self._decrement_live(old)
        if blocking is not None:
            self._bg.now = max(self._bg.now, blocking.now)

    def _decrement_live(self, slot: int) -> None:
        table_id, _ = self._unslot(slot)
        table = self.tables.get(table_id)
        if table is not None:
            table.live_entries -= 1

    # ------------------------------------------------------------------
    # selective compaction
    # ------------------------------------------------------------------
    def _selective_compaction(self) -> None:
        cfg = self.config
        victims = [
            t
            for t in self.tables.values()
            if t.entry_count
            and t.live_entries / t.entry_count < cfg.live_ratio_threshold
        ]
        for victim in victims:
            self._compact_table(victim)

    def _compact_table(self, victim: SSTable) -> None:
        _, done = self.table_store.read_async(self._bg.now, victim.offset, victim.size)
        self._bg.wait_until(done)
        self._bg.spend(victim.size * self.config.compaction_cpu_per_byte)
        survivors: List[Tuple[bytes, Optional[bytes]]] = []
        for key, value in victim.all_items():
            slot = self.index.lookup(key)
            if slot is None:
                continue
            table_id, _ = self._unslot(slot)
            if table_id == victim.table_id and value is not None:
                survivors.append((key, value))
        del self.tables[victim.table_id]
        victim.release()
        if survivors:
            table, done = SSTable.build(self.table_store, survivors, at=self._bg.now)
            self._bg.wait_until(done)
            self.tables[table.table_id] = table
            table.live_entries = 0  # _index_table re-raises it
            self._index_table_compacted(table, survivors)
        self.compactions += 1

    def _index_table_compacted(
        self, table: SSTable, entries: List[Tuple[bytes, Optional[bytes]]]
    ) -> None:
        from repro.baselines.lsm.sstable import BLOCK_SIZE, _pack_record

        block_no = 0
        used = 0
        live = 0
        for key, value in entries:
            rec = len(_pack_record(key, value))
            if used and used + rec > BLOCK_SIZE:
                block_no += 1
                used = 0
            used += rec
            self.index.insert(key, self._slot(table.table_id, block_no), self._bg)
            live += 1
        table.live_entries = live

    # ------------------------------------------------------------------
    # reads: memtable, then a single index lookup + one block read
    # ------------------------------------------------------------------
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        thread = self._thread(thread)
        thread.spend(self.config.read_cpu)
        self.gets += 1
        found, value = self.memtable.get(key)
        if found:
            return value
        slot = self.index.lookup(key, thread)
        if slot is None:
            return None
        table_id, block_no = self._unslot(slot)
        table = self.tables.get(table_id)
        if table is None:
            return None
        thread.spend(self.config.page_cache_hit_cost)
        block = table.read_block(block_no, thread, self.page_cache)
        self._trim_page_cache()
        for k, v in _unpack_block(block):
            if k == key:
                return v
        return None

    def _trim_page_cache(self) -> None:
        while len(self.page_cache) > self._cache_blocks:
            self.page_cache.popitem(last=False)

    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Ordered walk of the B+-tree; values scattered across tables."""
        thread = self._thread(thread)
        thread.spend(self.config.read_cpu)
        self.scans += 1
        # Merge memtable entries with indexed entries.
        indexed = self.index.scan(start, count * 2, thread)
        merged: Dict[bytes, Optional[int]] = {k: s for k, s in indexed}
        mem: Dict[bytes, Optional[bytes]] = {}
        for k, v in self.memtable.items_from(start):
            mem[k] = v
            if len(mem) >= count * 2:
                break
        keys = sorted(set(merged) | set(mem))
        out: List[Tuple[bytes, bytes]] = []
        block_memo: Dict[Tuple[int, int], bytes] = {}
        for key in keys:
            if len(out) >= count:
                break
            if key in mem:
                if mem[key] is not None:
                    out.append((key, mem[key]))
                continue
            slot = merged[key]
            table_id, block_no = self._unslot(slot)
            table = self.tables.get(table_id)
            if table is None:
                continue
            memo_key = (table_id, block_no)
            block = block_memo.get(memo_key)
            if block is None:
                thread.spend(self.config.page_cache_hit_cost)
                block = table.read_block(block_no, thread, self.page_cache)
                self._trim_page_cache()
                block_memo[memo_key] = block
            for k, v in _unpack_block(block):
                if k == key and v is not None:
                    out.append((key, v))
                    break
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self, thread: Optional[VThread] = None) -> None:
        if len(self.memtable):
            self._flush_memtable(self.clock.now, thread)

    def ssd_bytes_written(self) -> int:
        return sum(ssd.bytes_written for ssd in self.ssds)

    def recovery_time(self) -> float:
        """Memtable and index are already persistent: nothing to replay."""
        return 0.0

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base.update(
            {
                "puts": float(self.puts),
                "gets": float(self.gets),
                "flushes": float(self.flushes),
                "compactions": float(self.compactions),
                "tables": float(len(self.tables)),
                "stall_time": self.stall_time,
            }
        )
        return base
