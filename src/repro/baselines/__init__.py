"""Baseline key-value stores the paper compares against (§7.1).

All four comparators are implemented from scratch on the same
simulated devices as Prism:

* :class:`KVell` — shared-nothing sharded store (SOSP '19): per-worker
  indexes, page-granularity IO, no commit log, DRAM page cache.
* :class:`RocksDBNVM` — a leveled LSM-tree with WAL and all SSTables
  on NVM (the paper's upper bound for LSM designs).
* :class:`MatrixKV` — LSM-tree with an NVM-resident L0 matrix
  container and fine-grained column compaction (ATC '20).
* :class:`SLMDB` — single-level LSM with an NVM memtable and a global
  persistent B+-tree index (FAST '19); single-threaded, like the
  open-source release.
"""

from repro.baselines.interface import KVStore
from repro.baselines.kvell import KVell, KVellConfig
from repro.baselines.lsm.lsm import LSMStore, LSMConfig
from repro.baselines.matrixkv import MatrixKV, MatrixKVConfig
from repro.baselines.rocksdb_nvm import RocksDBNVM, RocksDBNVMConfig
from repro.baselines.slmdb import SLMDB, SLMDBConfig

__all__ = [
    "KVStore",
    "KVell",
    "KVellConfig",
    "LSMStore",
    "LSMConfig",
    "MatrixKV",
    "MatrixKVConfig",
    "RocksDBNVM",
    "RocksDBNVMConfig",
    "SLMDB",
    "SLMDBConfig",
]
