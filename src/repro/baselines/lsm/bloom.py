"""Bloom filters for SSTable point lookups."""

from __future__ import annotations

import math
import zlib


class BloomFilter:
    """A classic k-hash bloom filter over byte keys.

    Sized from the expected element count and target false-positive
    rate, like RocksDB's per-SSTable filters.
    """

    def __init__(self, expected: int, fp_rate: float = 0.01) -> None:
        if expected < 1:
            expected = 1
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1): {fp_rate}")
        ln2 = math.log(2)
        self.bits = max(8, int(-expected * math.log(fp_rate) / (ln2 * ln2)))
        self.hashes = max(1, round((self.bits / expected) * ln2))
        self._bitmap = 0
        self.count = 0

    def _positions(self, key: bytes):
        # Double hashing: h1 + i*h2 reaches k independent positions.
        h1 = zlib.crc32(key)
        h2 = zlib.adler32(key) | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bitmap |= 1 << pos
        self.count += 1

    def might_contain(self, key: bytes) -> bool:
        return all(self._bitmap >> pos & 1 for pos in self._positions(key))

    def size_bytes(self) -> int:
        return self.bits // 8 + 1
