"""A file-system-ish allocator over a device, for SSTables and WALs.

LSM engines create and delete whole files (SSTables, log segments).
:class:`BlockStore` provides that on top of any simulated device —
flash (single SSD or RAID-0) or NVM — with a size-bucketed free list
so compaction churn does not leak address space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice
from repro.storage.raid import RAID0
from repro.storage.ssd import SSDDevice

_EXTENT_ALIGN = 4096

Backing = Union[SSDDevice, RAID0, NVMDevice]


class BlockStore:
    """Allocate/free extents and do timed block IO on them."""

    def __init__(self, device: Backing, capacity: Optional[int] = None) -> None:
        self.device = device
        self.capacity = capacity if capacity is not None else device.capacity
        self._brk = 0
        # freed extents bucketed by (aligned) size for exact reuse
        self._free: Dict[int, List[int]] = {}
        self.live_bytes = 0

    @property
    def is_nvm(self) -> bool:
        return isinstance(self.device, NVMDevice)

    @staticmethod
    def _aligned(size: int) -> int:
        return -(-size // _EXTENT_ALIGN) * _EXTENT_ALIGN

    def alloc(self, size: int) -> int:
        """Reserve an extent; returns its base offset."""
        if size <= 0:
            raise ValueError(f"extent size must be positive: {size}")
        need = self._aligned(size)
        bucket = self._free.get(need)
        if bucket:
            offset = bucket.pop()
        else:
            if self._brk + need > self.capacity:
                raise MemoryError(
                    f"block store exhausted: need {need}, brk {self._brk}, "
                    f"capacity {self.capacity}"
                )
            offset = self._brk
            self._brk += need
        self.live_bytes += need
        return offset

    def free(self, offset: int, size: int) -> None:
        need = self._aligned(size)
        self._free.setdefault(need, []).append(offset)
        self.live_bytes -= need

    def used_bytes(self) -> int:
        return self.live_bytes

    # ------------------------------------------------------------------
    # timed IO (synchronous: caller waits)
    # ------------------------------------------------------------------
    def read(self, thread: Optional[VThread], offset: int, size: int) -> bytes:
        if self.is_nvm:
            return self.device.load(thread, offset, size)
        if isinstance(self.device, RAID0):
            return self.device.read(thread, offset, size)
        return self.device.read(thread, offset, size)

    def write(self, thread: Optional[VThread], offset: int, data: bytes) -> None:
        if self.is_nvm:
            self.device.write_durable(thread, offset, data)
        elif isinstance(self.device, RAID0):
            self.device.write(thread, offset, data)
        else:
            self.device.write(thread, offset, data)

    # ------------------------------------------------------------------
    # background-timed IO (returns completion, blocks nobody)
    # ------------------------------------------------------------------
    def read_async(self, at: float, offset: int, size: int) -> Tuple[bytes, float]:
        if self.is_nvm:
            data = self.device._read_raw(offset, size)
            done = self.device.charge_read_async(at, size)
            return data, done
        if isinstance(self.device, RAID0):
            return self.device.read_async(at, offset, size)
        data = self.device.read_raw(offset, size)
        return data, self.device.read_async(at, offset, size)

    def write_async(self, at: float, offset: int, data: bytes) -> float:
        if self.is_nvm:
            return self.device.write_durable_async(at, offset, data)
        if isinstance(self.device, RAID0):
            return self.device.write_async(at, offset, data)
        return self.device.write_async(at, offset, data)

    def bytes_written(self) -> int:
        if isinstance(self.device, RAID0):
            return self.device.bytes_written
        return self.device.bytes_written
