"""Leveled LSM-tree store.

The generic engine behind the paper's LSM comparators: WAL + memtable
→ immutable memtables → L0 (overlapping) → leveled L1..Ln
(non-overlapping), with background flush/compaction whose *virtual*
time creates genuine write stalls: when compaction debt grows, the
foreground is throttled — the paper's core argument against LSM
designs on fast storage (§2.2, §7.2).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.interface import KVStore
from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import BLOCK_SIZE, SSTable
from repro.baselines.lsm.wal import WriteAheadLog
from repro.sim.clock import VirtualClock
from repro.sim.resources import VLock
from repro.sim.vthread import VThread
from repro.storage.raid import RAID0
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, NVM_SPEC, DeviceSpec
from repro.storage.ssd import SSDDevice

MB = 1024**2


@dataclass
class LSMConfig:
    """Scaled-down RocksDB-style tuning."""

    num_ssds: int = 2
    ssd_spec: DeviceSpec = field(default_factory=lambda: FLASH_SSD_GEN4_SPEC)
    memtable_bytes: int = 1 * MB
    l0_limit: int = 4  # compact L0 above this many tables
    level_ratio: int = 10
    l1_target_bytes: int = 8 * MB
    sstable_target_bytes: int = 2 * MB
    block_cache_bytes: int = 16 * MB
    wal_capacity: int = 64 * MB
    # CPU cost of merging one byte during compaction.
    compaction_cpu_per_byte: float = 2e-9
    # Foreground/back-pressure: writers stall once compaction debt
    # (background virtual time ahead of the writer) exceeds this.
    max_compaction_lag: float = 2e-3
    # Per-operation CPU costs.  RocksDB-grade software stacks burn a
    # few microseconds per op (WAL framing, skiplist walk, per-level
    # probes, block decode) — the CPU inefficiency Prism's design
    # targets (§3, Lepers et al.).
    write_cpu: float = 1.5e-6
    # Calibrated to the paper's measured RocksDB-NVM per-op costs
    # (Table 3: ~23 us median on read-only YCSB): Get() walks memtable,
    # versions, per-level filters, and the block cache.
    read_cpu: float = 6.0e-6
    # Block-cache miss overhead: pread syscall + checksum + cache fill.
    block_miss_overhead: float = 8e-6
    # Decoding/binary-searching a block, paid on every block access.
    block_parse_cost: float = 1.5e-6
    # Merging-iterator Next(): key comparisons, version checks.
    scan_entry_cpu: float = 2.0e-6
    # Sequential scans read ahead this many blocks per IO.
    readahead_blocks: int = 8
    # Hold time of the (contended) global block-cache mutex per lookup.
    cache_lock_cost: float = 1.2e-6

    def __post_init__(self) -> None:
        if self.num_ssds < 1:
            raise ValueError(f"need at least one SSD: {self.num_ssds}")
        if self.memtable_bytes < 4096:
            raise ValueError(f"memtable too small: {self.memtable_bytes}")


class LSMStore(KVStore):
    """Leveled LSM-tree on RAID-0 flash (subclasses relocate pieces)."""

    def __init__(self, config: Optional[LSMConfig] = None) -> None:
        self.config = config or LSMConfig()
        self.clock = VirtualClock()
        self._make_stores()
        self.memtable = MemTable()
        self.immutables: List[MemTable] = []
        # levels[0] = newest-first overlapping runs; levels[i>0] sorted.
        self.levels: List[List[SSTable]] = [[]]
        self.block_cache: "OrderedDict" = OrderedDict()
        self._cache_blocks = self.config.block_cache_bytes // BLOCK_SIZE
        self._bg = VThread(-1, self.clock, name="lsm-bg", background=True)
        self._write_lock = VLock(name="lsm-write")
        self._cache_lock = VLock(name="lsm-block-cache")
        self._default_thread = VThread(0, self.clock, name="caller")
        self._compact_cursor: Dict[int, bytes] = {}
        self.bytes_put = 0
        self.puts = 0
        self.gets = 0
        self.scans = 0
        self.flushes = 0
        self.compactions = 0
        self.compaction_bytes = 0
        self.stall_time = 0.0

    # ------------------------------------------------------------------
    # device placement (overridden by the NVM-flavoured variants)
    # ------------------------------------------------------------------
    def _make_stores(self) -> None:
        cfg = self.config
        self.ssds = [SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)]
        raid = RAID0(self.ssds) if len(self.ssds) > 1 else self.ssds[0]
        # One allocator per device: the WAL takes its region from the
        # same block store the SSTables use, so extents never overlap.
        self.table_store = BlockStore(raid)
        self.wal: Optional[WriteAheadLog] = WriteAheadLog(
            self.table_store, cfg.wal_capacity
        )

    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        self._write(key, value, thread)
        self.bytes_put += len(value)
        self.puts += 1

    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        existed = self.get(key, thread) is not None
        self._write(key, None, thread)
        return existed

    def _write(self, key: bytes, value: Optional[bytes], thread: Optional[VThread]) -> None:
        thread = self._thread(thread)
        self._throttle(thread)
        self._write_lock.acquire(thread)
        try:
            thread.spend(self.config.write_cpu)
            if self.wal is not None:
                self.wal.append(key, value, thread)
            else:
                self._persist_memtable_entry(key, value, thread)
            self.memtable.insert(key, value)
        finally:
            self._write_lock.release(thread)
        if self.memtable.approximate_size >= self.config.memtable_bytes:
            self._rotate_memtable(thread.now)

    def _persist_memtable_entry(
        self, key: bytes, value: Optional[bytes], thread: VThread
    ) -> None:
        """Hook for NVM-resident memtables (SLM-DB has no WAL)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no WAL and no persistent memtable"
        )

    def _throttle(self, thread: VThread) -> None:
        """Write stall: wait while compaction debt exceeds the budget."""
        debt = self._bg.now - thread.now
        lag = self.config.max_compaction_lag
        if debt > lag:
            stall_until = self._bg.now - lag
            self.stall_time += stall_until - thread.now
            thread.wait_until(stall_until)

    def _rotate_memtable(self, at: float) -> None:
        self.immutables.insert(0, self.memtable)
        self.memtable = MemTable()
        self._flush_oldest_immutable(at)

    def _flush_oldest_immutable(self, at: float) -> None:
        if not self.immutables:
            return
        if self._bg.now < at:
            self._bg.now = at
        imm = self.immutables.pop()
        entries = list(imm.items())
        if entries:
            table, done = SSTable.build(self.table_store, entries, at=self._bg.now)
            self._bg.wait_until(done)
            self.levels[0].insert(0, table)
            self.flushes += 1
        if self.wal is not None:
            self.wal.truncate()
        self._maybe_compact()

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _level_target(self, level: int) -> int:
        return self.config.l1_target_bytes * self.config.level_ratio ** (level - 1)

    def _level_size(self, level: int) -> int:
        return sum(t.size for t in self.levels[level])

    def _maybe_compact(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if len(self.levels[0]) > self.config.l0_limit:
                self._compact_l0()
                progressed = True
                continue
            for level in range(1, len(self.levels)):
                if self._level_size(level) > self._level_target(level):
                    self._compact_level(level)
                    progressed = True
                    break

    def _ensure_level(self, level: int) -> None:
        while len(self.levels) <= level:
            self.levels.append([])

    def _merge(
        self, inputs: List[List[Tuple[bytes, Optional[bytes]]]], drop_tombstones: bool
    ) -> List[Tuple[bytes, Optional[bytes]]]:
        """Merge runs; earlier inputs win (newest first)."""
        merged: Dict[bytes, Optional[bytes]] = {}
        for run in reversed(inputs):  # oldest first, newer overwrite
            for key, value in run:
                merged[key] = value
        out = sorted(merged.items())
        if drop_tombstones:
            out = [(k, v) for k, v in out if v is not None]
        return out

    def _run_compaction(
        self,
        upper: List[SSTable],
        lower: List[SSTable],
        target_level: int,
    ) -> None:
        """Merge upper-level tables into ``target_level``."""
        cfg = self.config
        inputs = upper + lower
        read_done = self._bg.now
        total_in = 0
        runs: List[List[Tuple[bytes, Optional[bytes]]]] = []
        for table in inputs:
            _, done = self.table_store.read_async(self._bg.now, table.offset, table.size)
            read_done = max(read_done, done)
            runs.append(table.all_items())
            total_in += table.size
        self._bg.wait_until(read_done)
        self._bg.spend(total_in * cfg.compaction_cpu_per_byte)
        bottom = target_level >= len(self.levels) - 1
        merged = self._merge(runs, drop_tombstones=bottom)
        self._ensure_level(target_level)
        new_tables: List[SSTable] = []
        write_done = self._bg.now
        chunk: List[Tuple[bytes, Optional[bytes]]] = []
        chunk_bytes = 0
        out_bytes = 0

        def _emit() -> None:
            nonlocal chunk, chunk_bytes, write_done, out_bytes
            if not chunk:
                return
            table, done = SSTable.build(self.table_store, chunk, at=self._bg.now)
            write_done = max(write_done, done)
            new_tables.append(table)
            out_bytes += table.size
            chunk, chunk_bytes = [], 0

        for key, value in merged:
            chunk.append((key, value))
            chunk_bytes += len(key) + (len(value) if value else 0) + 6
            if chunk_bytes >= cfg.sstable_target_bytes:
                _emit()
        _emit()
        self._bg.wait_until(write_done)
        # Install: remove inputs, insert outputs sorted by min_key.
        upper_set = {t.table_id for t in upper}
        lower_set = {t.table_id for t in lower}
        if upper and upper[0] in self.levels[0]:
            self.levels[0] = [t for t in self.levels[0] if t.table_id not in upper_set]
        else:
            src_level = target_level - 1
            self.levels[src_level] = [
                t for t in self.levels[src_level] if t.table_id not in upper_set
            ]
        kept = [t for t in self.levels[target_level] if t.table_id not in lower_set]
        self.levels[target_level] = sorted(kept + new_tables, key=lambda t: t.min_key)
        for table in inputs:
            table.release()
            self._evict_table_blocks(table)
        self.compactions += 1
        self.compaction_bytes += total_in + out_bytes

    def _compact_l0(self) -> None:
        upper = list(self.levels[0])
        if not upper:
            return
        self._ensure_level(1)
        lo = min(t.min_key for t in upper)
        hi = max(t.max_key for t in upper)
        lower = [t for t in self.levels[1] if t.overlaps(lo, hi)]
        self._run_compaction(upper, lower, target_level=1)

    def _compact_level(self, level: int) -> None:
        tables = self.levels[level]
        if not tables:
            return
        cursor = self._compact_cursor.get(level, b"")
        victim = next((t for t in tables if t.min_key > cursor), tables[0])
        self._compact_cursor[level] = victim.min_key
        self._ensure_level(level + 1)
        lower = [
            t
            for t in self.levels[level + 1]
            if t.overlaps(victim.min_key, victim.max_key)
        ]
        self._run_compaction([victim], lower, target_level=level + 1)

    def _evict_table_blocks(self, table: SSTable) -> None:
        doomed = [k for k in self.block_cache if k[0] == table.table_id]
        for k in doomed:
            del self.block_cache[k]

    def _trim_cache(self) -> None:
        while len(self.block_cache) > self._cache_blocks:
            self.block_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _cache_gate(self, thread: VThread) -> None:
        """RocksDB's global block-cache mutex: a short serial section
        every read passes through — the multicore ceiling of LSM
        engines (Figure 16)."""
        self._cache_lock.acquire(thread)
        thread.spend(self.config.cache_lock_cost)
        self._cache_lock.release(thread)

    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        thread = self._thread(thread)
        thread.spend(self.config.read_cpu)
        self.gets += 1
        found, value = self.memtable.get(key)
        if found:
            return value
        for imm in self.immutables:
            found, value = imm.get(key)
            if found:
                return value
        self._cache_gate(thread)
        miss = self.config.block_miss_overhead
        parse = self.config.block_parse_cost
        for table in self.levels[0]:
            found, value = table.get(key, thread, self.block_cache, miss, parse)
            if found:
                self._trim_cache()
                return value
        for level in range(1, len(self.levels)):
            for table in self.levels[level]:
                if table.covers(key):
                    found, value = table.get(key, thread, self.block_cache, miss, parse)
                    if found:
                        self._trim_cache()
                        return value
                    break
        self._trim_cache()
        return None

    # ------------------------------------------------------------------
    # scans: merge every overlapping source, newest wins (§7.2)
    # ------------------------------------------------------------------
    def _sources(
        self, start: bytes, thread: VThread
    ) -> List[Iterator[Tuple[bytes, Optional[bytes]]]]:
        sources: List[Iterator[Tuple[bytes, Optional[bytes]]]] = []
        sources.append(self.memtable.items_from(start))
        for imm in self.immutables:
            sources.append(imm.items_from(start))
        miss = self.config.block_miss_overhead
        ra = self.config.readahead_blocks
        for table in self.levels[0]:
            sources.append(
                table.items_from(start, thread, self.block_cache, miss, ra)
            )
        for level in range(1, len(self.levels)):
            def _level_iter(tables: List[SSTable]) -> Iterator[Tuple[bytes, Optional[bytes]]]:
                for table in tables:
                    if table.max_key < start:
                        continue
                    yield from table.items_from(
                        start, thread, self.block_cache, miss, ra
                    )
            sources.append(_level_iter(self.levels[level]))
        return sources

    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        thread = self._thread(thread)
        thread.spend(self.config.read_cpu)
        self._cache_gate(thread)
        self.scans += 1
        sources = self._sources(start, thread)
        heap: List[Tuple[bytes, int, Optional[bytes], Iterator]] = []
        for priority, src in enumerate(sources):
            for key, value in src:
                heap.append((key, priority, value, src))
                break
        heapq.heapify(heap)
        out: List[Tuple[bytes, bytes]] = []
        current_key: Optional[bytes] = None
        entry_cpu = self.config.scan_entry_cpu
        while heap and len(out) < count:
            key, priority, value, src = heapq.heappop(heap)
            thread.spend(entry_cpu)
            if key != current_key:
                current_key = key
                if value is not None:
                    out.append((key, value))
            for nkey, nvalue in src:
                heapq.heappush(heap, (nkey, priority, nvalue, src))
                break
        self._trim_cache()
        return out

    # ------------------------------------------------------------------
    # lifecycle / stats
    # ------------------------------------------------------------------
    def flush(self, thread: Optional[VThread] = None) -> None:
        at = self.clock.now
        if len(self.memtable):
            self.immutables.insert(0, self.memtable)
            self.memtable = MemTable()
        while self.immutables:
            self._flush_oldest_immutable(at)

    def ssd_bytes_written(self) -> int:
        return sum(ssd.bytes_written for ssd in getattr(self, "ssds", []))

    def recovery_time(self) -> float:
        """Replay the WAL (memtable contents only)."""
        if self.wal is None:
            return 0.0
        device = self.wal.store.device
        bw = getattr(device, "spec", None)
        if bw is not None:
            return self.wal.head / device.spec.read_bandwidth
        return self.wal.head / device.devices[0].spec.read_bandwidth

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base.update(
            {
                "puts": float(self.puts),
                "gets": float(self.gets),
                "flushes": float(self.flushes),
                "compactions": float(self.compactions),
                "compaction_bytes": float(self.compaction_bytes),
                "stall_time": self.stall_time,
                "levels": float(len(self.levels)),
            }
        )
        return base
