"""In-memory write buffer of an LSM tree."""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, List, Optional, Tuple

# Deletions are recorded as tombstones that shadow older versions
# until compaction drops them.
TOMBSTONE: Optional[bytes] = None


class MemTable:
    """A sorted write buffer (skiplist stand-in).

    Values of ``TOMBSTONE`` (None) mark deletions.  ``approximate_size``
    counts key and value bytes like RocksDB's arena accounting.
    """

    def __init__(self) -> None:
        self._keys: List[bytes] = []
        self._data: dict = {}
        self.approximate_size = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def insert(self, key: bytes, value: Optional[bytes]) -> None:
        if key not in self._data:
            insort(self._keys, key)
            self.approximate_size += len(key)
        else:
            old = self._data[key]
            self.approximate_size -= len(old) if old is not None else 0
        self._data[key] = value
        self.approximate_size += len(value) if value is not None else 0

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); value None means tombstone."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def items(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        for key in self._keys:
            yield key, self._data[key]

    def items_from(self, start: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        idx = bisect_left(self._keys, start)
        for key in self._keys[idx:]:
            yield key, self._data[key]

    def min_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def extract_range(
        self, start: bytes, end: Optional[bytes]
    ) -> List[Tuple[bytes, Optional[bytes]]]:
        """Remove and return entries with start <= key < end.

        Used by MatrixKV's column compaction to drain one key column
        out of the matrix container.
        """
        lo = bisect_left(self._keys, start)
        hi = bisect_left(self._keys, end) if end is not None else len(self._keys)
        taken = []
        for key in self._keys[lo:hi]:
            value = self._data.pop(key)
            self.approximate_size -= len(key) + (len(value) if value else 0)
            taken.append((key, value))
        del self._keys[lo:hi]
        return taken
