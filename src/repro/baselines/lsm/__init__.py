"""A complete LSM-tree storage engine.

Substrate for the paper's LSM-based comparators: MatrixKV,
RocksDB-NVM, and SLM-DB all specialize :class:`LSMStore` (leveled
compaction, WAL, memtables, SSTables with bloom filters and block
indexes, block cache).
"""

from repro.baselines.lsm.bloom import BloomFilter
from repro.baselines.lsm.memtable import MemTable, TOMBSTONE
from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.sstable import SSTable
from repro.baselines.lsm.wal import WriteAheadLog
from repro.baselines.lsm.lsm import LSMConfig, LSMStore

__all__ = [
    "BloomFilter",
    "MemTable",
    "TOMBSTONE",
    "BlockStore",
    "SSTable",
    "WriteAheadLog",
    "LSMConfig",
    "LSMStore",
]
