"""Write-ahead log with group commit.

Every LSM write appends ``[klen][vlen][key][value]`` and must reach
stable media before the write is acknowledged.  Appends arriving
within a group-commit window share one device IO — the classic
latency/bandwidth compromise of log-structured durability (and the
overhead Prism's PWB eliminates: §4.3 "unlike traditional logging
techniques").
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.lsm.blockstore import BlockStore
from repro.sim.vthread import VThread

_RECORD_HEADER = 6
# Appends within this window share a single fsync (group commit).
GROUP_COMMIT_WINDOW = 8e-6


class WriteAheadLog:
    """An append-only log segment on a block store."""

    def __init__(self, store: BlockStore, capacity: int) -> None:
        self.store = store
        self.capacity = capacity
        self.base = store.alloc(capacity)
        self.head = 0
        self.appends = 0
        self.bytes_logged = 0
        # current group commit: (window close, completion time)
        self._group_close = -1.0
        self._group_done = 0.0
        self._group_bytes = 0

    def append(
        self, key: bytes, value: Optional[bytes], thread: Optional[VThread] = None
    ) -> None:
        """Durably log one write; returns when the record is stable."""
        vbytes = value or b""
        record = (
            len(key).to_bytes(2, "little")
            + len(vbytes).to_bytes(4, "little")
            + key
            + vbytes
        )
        if self.head + len(record) > self.capacity:
            # Log wraps after a checkpoint; the memtable flush that
            # precedes truncation is managed by the engine.
            self.head = 0
        offset = self.base + self.head
        self.head += len(record)
        self.appends += 1
        self.bytes_logged += len(record)
        if thread is None:
            self.store.write(None, offset, record)
            return
        # Group commit: writes inside one window ride the same flush.
        if thread.now > self._group_close:
            self._group_close = thread.now + GROUP_COMMIT_WINDOW
            self._group_bytes = len(record)
            self._group_done = self.store.write_async(
                self._group_close, offset, record
            )
        else:
            self._group_bytes += len(record)
            done = self.store.write_async(self._group_close, offset, record)
            self._group_done = max(self._group_done, done)
        thread.wait_until(self._group_done)

    def truncate(self) -> None:
        """Drop logged records after a successful memtable flush."""
        self.head = 0
