"""Sorted String Tables.

On-media layout: a sequence of 4 KB data blocks, each packing
``[klen(2)][vlen(4)][key][value]`` records (vlen ``0xFFFFFFFF`` marks a
tombstone).  The block index (first key of each block) and the bloom
filter stay in memory, as LSM engines keep them cache-resident; point
reads therefore cost exactly one block IO.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.bloom import BloomFilter
from repro.sim.vthread import VThread

_TOMBSTONE_LEN = 0xFFFFFFFF
BLOCK_SIZE = 4096


def _pack_record(key: bytes, value: Optional[bytes]) -> bytes:
    vlen = _TOMBSTONE_LEN if value is None else len(value)
    return (
        len(key).to_bytes(2, "little")
        + vlen.to_bytes(4, "little")
        + key
        + (value or b"")
    )


def _unpack_block(data: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
    pos = 0
    n = len(data)
    while pos + 6 <= n:
        klen = int.from_bytes(data[pos : pos + 2], "little")
        vlen = int.from_bytes(data[pos + 2 : pos + 6], "little")
        if klen == 0:
            return  # padding
        pos += 6
        key = data[pos : pos + klen]
        pos += klen
        if vlen == _TOMBSTONE_LEN:
            yield bytes(key), None
        else:
            yield bytes(key), bytes(data[pos : pos + vlen])
            pos += vlen


class SSTable:
    """One immutable sorted run on a block store."""

    _next_id = 0

    def __init__(
        self,
        store: BlockStore,
        offset: int,
        size: int,
        first_keys: List[bytes],
        bloom: BloomFilter,
        min_key: bytes,
        max_key: bytes,
        entry_count: int,
    ) -> None:
        self.table_id = SSTable._next_id
        SSTable._next_id += 1
        self.store = store
        self.offset = offset
        self.size = size
        self.first_keys = first_keys  # block index: first key per block
        self.bloom = bloom
        self.min_key = min_key
        self.max_key = max_key
        self.entry_count = entry_count
        self.live_entries = entry_count  # decremented by upper layers

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        store: BlockStore,
        entries: List[Tuple[bytes, Optional[bytes]]],
        at: Optional[float] = None,
        thread: Optional[VThread] = None,
    ) -> Tuple["SSTable", float]:
        """Serialize sorted entries; returns (table, io_completion_time).

        Pass ``thread`` for a synchronous (blocking) build or ``at``
        for a background-timed one.
        """
        if not entries:
            raise ValueError("cannot build an empty SSTable")
        blocks: List[bytes] = []
        first_keys: List[bytes] = []
        bloom = BloomFilter(len(entries))
        current = bytearray()
        current_first: Optional[bytes] = None
        for key, value in entries:
            record = _pack_record(key, value)
            if current and len(current) + len(record) > BLOCK_SIZE:
                blocks.append(bytes(current) + b"\0" * (BLOCK_SIZE - len(current)))
                first_keys.append(current_first)  # type: ignore[arg-type]
                current = bytearray()
                current_first = None
            if current_first is None:
                current_first = key
            current += record
            bloom.add(key)
        if current:
            pad = BLOCK_SIZE - len(current) % BLOCK_SIZE
            if pad == BLOCK_SIZE:
                pad = 0
            blocks.append(bytes(current) + b"\0" * pad)
            first_keys.append(current_first)  # type: ignore[arg-type]
        payload = b"".join(blocks)
        offset = store.alloc(len(payload))
        if thread is not None:
            store.write(thread, offset, payload)
            done = thread.now
        else:
            done = store.write_async(at if at is not None else 0.0, offset, payload)
        table = cls(
            store,
            offset,
            len(payload),
            first_keys,
            bloom,
            entries[0][0],
            entries[-1][0],
            len(entries),
        )
        return table, done

    def release(self) -> None:
        """Give the extent back (after compaction superseded it)."""
        self.store.free(self.offset, self.size)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def overlaps(self, min_key: bytes, max_key: bytes) -> bool:
        return not (self.max_key < min_key or max_key < self.min_key)

    def covers(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key

    def _block_for(self, key: bytes) -> Optional[int]:
        idx = bisect_right(self.first_keys, key) - 1
        return idx if idx >= 0 else None

    def read_block(
        self,
        block_no: int,
        thread: Optional[VThread] = None,
        block_cache: Optional[Dict] = None,
        miss_cost: float = 0.0,
        parse_cost: float = 0.0,
    ) -> bytes:
        """One block, via the (optional) shared block cache.

        ``miss_cost`` is the engine's per-block software overhead on a
        cache miss (pread syscall, checksum, copy into the cache);
        ``parse_cost`` (binary search + decode) is paid on every access.
        """
        if thread is not None and parse_cost:
            thread.spend(parse_cost)
        cache_key = (self.table_id, block_no)
        if block_cache is not None and cache_key in block_cache:
            block_cache.move_to_end(cache_key)
            return block_cache[cache_key]
        if thread is not None and miss_cost:
            thread.spend(miss_cost)
        data = self.store.read(
            thread, self.offset + block_no * BLOCK_SIZE, BLOCK_SIZE
        )
        if block_cache is not None:
            block_cache[cache_key] = data
        return data

    def read_block_span(
        self,
        block_no: int,
        span: int,
        thread: Optional[VThread] = None,
        block_cache: Optional[Dict] = None,
        miss_cost: float = 0.0,
    ) -> bytes:
        """Readahead: fetch ``span`` blocks in one IO (sequential scans)."""
        span = min(span, len(self.first_keys) - block_no)
        cached = (
            block_cache is not None
            and all((self.table_id, b) in block_cache for b in range(block_no, block_no + span))
        )
        if cached:
            parts = []
            for b in range(block_no, block_no + span):
                block_cache.move_to_end((self.table_id, b))
                parts.append(block_cache[(self.table_id, b)])
            return b"".join(parts)
        if thread is not None and miss_cost:
            thread.spend(miss_cost)
        data = self.store.read(
            thread, self.offset + block_no * BLOCK_SIZE, span * BLOCK_SIZE
        )
        if block_cache is not None:
            for i in range(span):
                block_cache[(self.table_id, block_no + i)] = data[
                    i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE
                ]
        return data

    def get(
        self,
        key: bytes,
        thread: Optional[VThread] = None,
        block_cache: Optional[Dict] = None,
        miss_cost: float = 0.0,
        parse_cost: float = 0.0,
    ) -> Tuple[bool, Optional[bytes]]:
        """Point lookup: (found, value-or-tombstone)."""
        if not self.covers(key):
            return False, None
        if thread is not None:
            thread.spend(0.2e-6)  # bloom probe + index binary search
        if not self.bloom.might_contain(key):
            return False, None
        block_no = self._block_for(key)
        if block_no is None:
            return False, None
        block = self.read_block(block_no, thread, block_cache, miss_cost, parse_cost)
        for k, v in _unpack_block(block):
            if k == key:
                return True, v
            if k > key:
                break
        return False, None

    def items_from(
        self,
        start: bytes,
        thread: Optional[VThread] = None,
        block_cache: Optional[Dict] = None,
        miss_cost: float = 0.0,
        readahead: int = 1,
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Ordered iteration beginning at ``start`` (with readahead)."""
        first = self._block_for(start)
        if first is None:
            first = 0
        readahead = max(1, readahead)
        block_no = first
        total = len(self.first_keys)
        while block_no < total:
            span = min(readahead, total - block_no)
            data = self.read_block_span(
                block_no, span, thread, block_cache, miss_cost
            )
            for i in range(span):
                sub = data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
                for k, v in _unpack_block(sub):
                    if k >= start:
                        yield k, v
            block_no += span

    def all_items(
        self, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, Optional[bytes]]]:
        """Bulk read for compaction (untimed; caller charges bandwidth)."""
        out: List[Tuple[bytes, Optional[bytes]]] = []
        for block_no in range(len(self.first_keys)):
            data = self.store.read(
                None, self.offset + block_no * BLOCK_SIZE, BLOCK_SIZE
            ) if thread is None else self.read_block(block_no, thread)
            out.extend(_unpack_block(data))
        return out
