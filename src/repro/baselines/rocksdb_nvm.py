"""RocksDB-NVM: the paper's LSM upper bound (§7.1).

A stock leveled LSM-tree whose WAL *and* every SSTable live on
byte-addressable NVM.  Reads avoid flash latency entirely and the WAL
commits at NVM speed — but compaction still rewrites data continuously
and now competes for NVM's limited write bandwidth (1.9 GB/s), which
is why the paper uses it only as a reference point ("its storage cost
spends much higher than Prism").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.lsm import LSMConfig, LSMStore
from repro.baselines.lsm.wal import WriteAheadLog
from repro.storage.nvm import NVMDevice
from repro.storage.specs import NVM_SPEC, DeviceSpec


@dataclass
class RocksDBNVMConfig(LSMConfig):
    nvm_spec: DeviceSpec = field(default_factory=lambda: NVM_SPEC)


class RocksDBNVM(LSMStore):
    """LSM-tree with WAL + SSTables on Optane DCPMM."""

    def __init__(self, config: Optional[RocksDBNVMConfig] = None) -> None:
        super().__init__(config or RocksDBNVMConfig())

    def _make_stores(self) -> None:
        cfg = self.config
        self.nvm = NVMDevice(cfg.nvm_spec)
        self.ssds = []  # nothing touches flash in this configuration
        self.table_store = BlockStore(self.nvm)
        self.wal = WriteAheadLog(self.table_store, cfg.wal_capacity)

    def ssd_bytes_written(self) -> int:
        return 0

    def nvm_bytes_written(self) -> int:
        return self.nvm.bytes_written

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base["nvm_bytes_written"] = float(self.nvm.bytes_written)
        return base
