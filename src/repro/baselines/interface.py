"""The store contract shared by Prism and every baseline."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread


class KVStore(ABC):
    """Uniform API the benchmark harness drives.

    Implementations expose a shared :class:`VirtualClock` as ``clock``
    and count ``bytes_put`` so the harness can compute throughput and
    SSD-level write amplification for any store.
    """

    clock: VirtualClock
    bytes_put: int

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        """Insert or update; durable on return."""

    @abstractmethod
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Point lookup."""

    @abstractmethod
    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Up to ``count`` ordered pairs with key >= start."""

    @abstractmethod
    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        """Remove a key; True when it existed."""

    @abstractmethod
    def ssd_bytes_written(self) -> int:
        """Total bytes written to flash (for WAF / endurance)."""

    def flush(self, thread: Optional[VThread] = None) -> None:
        """Make all buffered state durable / drain background work."""

    def close(self) -> None:
        self.flush()

    def waf(self) -> float:
        """SSD-level write amplification factor."""
        if self.bytes_put == 0:
            return 0.0
        return self.ssd_bytes_written() / self.bytes_put

    def stats(self) -> Dict[str, float]:
        return {"waf": self.waf(), "ssd_bytes_written": float(self.ssd_bytes_written())}
