"""KVell (SOSP '19): a shared-nothing, share-little key-value store.

Design points reproduced from the paper and from Prism's description
of it (§4.1, §7.3):

* the key space is hash-partitioned across worker threads; each worker
  owns an in-memory sorted index and a slab-allocated region of one
  SSD — no synchronization, but hot keys overload single workers;
* no commit log: items live in fixed-size slab slots, updated in
  place; a write is durable when its 4 KB *page* IO completes
  (read-modify-write when the page is not cached);
* every request — even a DRAM cache hit — is enqueued to its worker
  and served in batches (queue depth 64), which is where KVell's
  queuing-amplified tail latency comes from;
* the DRAM page cache is page-granular (4 KB), so caching a 1 KB value
  costs a full page (contrast with Prism's value-granular SVC);
* recovery scans every slab on every SSD.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.interface import KVStore
from repro.index.btree import BTree
from repro.sim.clock import VirtualClock
from repro.sim.resources import FIFOServer
from repro.sim.vthread import VThread
from repro.storage.iouring import IORequest, IOUring
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, DeviceSpec
from repro.storage.ssd import SSDDevice

_SLAB_CLASSES = (128, 256, 512, 1024, 2048, 4096)
_ITEM_HEADER = 6  # key length (2B) + value length (4B)


@dataclass
class KVellConfig:
    """Scaled-down version of the paper's KVell setup (Table 1)."""

    num_ssds: int = 2
    workers_per_ssd: int = 3
    ssd_spec: DeviceSpec = field(default_factory=lambda: FLASH_SSD_GEN4_SPEC)
    page_cache_bytes: int = 64 * 1024 * 1024
    queue_depth: int = 64
    page_size: int = 4096
    # Worker loop: index lookup, slab math, request management.
    worker_cpu_cost: float = 1.2e-6
    # Client-side enqueue cost.
    injector_cost: float = 0.3e-6
    # Worker IO batching window (requests arriving within it share a batch).
    batch_window: float = 15e-6
    # CPU per candidate when merging per-worker indexes for a scan —
    # KVell has no global order, so every worker over-fetches.
    scan_candidate_cpu: float = 0.25e-6

    def __post_init__(self) -> None:
        if self.num_ssds < 1 or self.workers_per_ssd < 1:
            raise ValueError("need at least one SSD and one worker per SSD")
        if self.page_size % 4096:
            raise ValueError(f"page size must be 4K-aligned: {self.page_size}")


class _Worker:
    """One shard: an index, a slab region, a request queue, an IO ring."""

    def __init__(self, wid: int, ssd: SSDDevice, base: int, size: int, cfg: KVellConfig):
        self.wid = wid
        self.ssd = ssd
        self.base = base
        self.size = size
        self.cfg = cfg
        self.server = FIFOServer(name=f"kvell-worker-{wid}")
        self.ring = IOUring(ssd, cfg.queue_depth)
        self.index: BTree = BTree(order=64)  # key -> (class, page_no, slot)
        self._pages_allocated = 0
        self._free_slots: Dict[int, List[Tuple[int, int]]] = {c: [] for c in _SLAB_CLASSES}
        self._open_pages: Dict[int, Tuple[int, int]] = {}  # class -> (page_no, next_slot)
        # page cache: page_no -> None (LRU order); bytes live on the SSD
        self.cache: "OrderedDict[int, None]" = OrderedDict()
        self.cache_capacity_pages = 0  # set by the store
        # current write batch: page_no -> completion time
        self._batch_close = -1.0
        self._batch_pages: Dict[int, float] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # slab layout
    # ------------------------------------------------------------------
    @staticmethod
    def class_for(key: bytes, value: bytes) -> int:
        need = _ITEM_HEADER + len(key) + len(value)
        for cls in _SLAB_CLASSES:
            if need <= cls:
                return cls
        raise ValueError(f"item of {need}B exceeds the largest slab class")

    def _page_offset(self, page_no: int) -> int:
        offset = self.base + page_no * self.cfg.page_size
        if offset + self.cfg.page_size > self.base + self.size:
            raise MemoryError(f"kvell worker {self.wid} slab region exhausted")
        return offset

    def _allocate_slot(self, cls: int) -> Tuple[int, int]:
        free = self._free_slots[cls]
        if free:
            return free.pop()
        open_page = self._open_pages.get(cls)
        per_page = self.cfg.page_size // cls
        if open_page is None or open_page[1] >= per_page:
            page_no = self._pages_allocated
            self._pages_allocated += 1
            self._page_offset(page_no)  # bounds check
            open_page = (page_no, 0)
        page_no, slot = open_page
        self._open_pages[cls] = (page_no, slot + 1)
        return page_no, slot

    # ------------------------------------------------------------------
    # page IO with batching
    # ------------------------------------------------------------------
    def _enqueue(self, thread: VThread) -> None:
        """Serve the request through the worker's CPU queue."""
        _, end = self.server.service(thread.now, self.cfg.worker_cpu_cost)
        thread.wait_until(end)

    def _touch_cache(self, page_no: int) -> bool:
        if page_no in self.cache:
            self.cache.move_to_end(page_no)
            self.cache_hits += 1
            return True
        self.cache_misses += 1
        return False

    def _insert_cache(self, page_no: int) -> None:
        self.cache[page_no] = None
        while len(self.cache) > self.cache_capacity_pages:
            self.cache.popitem(last=False)

    def _read_page(self, thread: VThread, page_no: int) -> bytes:
        offset = self._page_offset(page_no)
        data = self.ssd.read_raw(offset, self.cfg.page_size)
        if not self._touch_cache(page_no):
            req = IORequest("read", offset, self.cfg.page_size)
            done = self.ring.submit_one(thread.now, req)
            thread.wait_until(done)
            self._insert_cache(page_no)
        return data

    def _commit_page(self, thread: VThread, page_no: int, data: bytes) -> None:
        """Write a page durably; pages dirtied within one batch window
        are written once (this is KVell's batching WAF win)."""
        offset = self._page_offset(page_no)
        self.ssd.write_raw(offset, data)  # functional state, untimed
        self._insert_cache(page_no)
        if thread.now > self._batch_close:
            self._batch_close = thread.now + self.cfg.batch_window
            self._batch_pages = {}
        completion = self._batch_pages.get(page_no)
        if completion is None:
            req = IORequest(
                "write", offset, self.cfg.page_size, data=bytes(data)
            )
            completion = self.ring.submit_one(self._batch_close, req)
            self._batch_pages[page_no] = completion
        thread.wait_until(completion)

    # ------------------------------------------------------------------
    # item packing
    # ------------------------------------------------------------------
    def _pack(self, page: bytearray, cls: int, slot: int, key: bytes, value: bytes) -> None:
        pos = slot * cls
        page[pos : pos + 2] = len(key).to_bytes(2, "little")
        page[pos + 2 : pos + 6] = len(value).to_bytes(4, "little")
        page[pos + 6 : pos + 6 + len(key)] = key
        start = pos + 6 + len(key)
        page[start : start + len(value)] = value

    def _unpack(self, page: bytes, cls: int, slot: int) -> Tuple[bytes, bytes]:
        pos = slot * cls
        klen = int.from_bytes(page[pos : pos + 2], "little")
        vlen = int.from_bytes(page[pos + 2 : pos + 6], "little")
        key = bytes(page[pos + 6 : pos + 6 + klen])
        start = pos + 6 + klen
        return key, bytes(page[start : start + vlen])

    # ------------------------------------------------------------------
    # operations (already routed to this worker)
    # ------------------------------------------------------------------
    def put(self, thread: VThread, key: bytes, value: bytes) -> None:
        self._enqueue(thread)
        cls = self.class_for(key, value)
        existing = self.index.get(key)
        if existing is not None and existing[0] == cls:
            _, page_no, slot = existing
        else:
            if existing is not None:
                self._free_slots[existing[0]].append((existing[1], existing[2]))
            page_no, slot = self._allocate_slot(cls)
            self.index.insert(key, (cls, page_no, slot))
        # read-modify-write when the page is cold
        page = bytearray(self._read_page(thread, page_no))
        self._pack(page, cls, slot, key, value)
        self._commit_page(thread, page_no, bytes(page))

    def get(self, thread: VThread, key: bytes) -> Optional[bytes]:
        self._enqueue(thread)
        entry = self.index.get(key)
        if entry is None:
            return None
        cls, page_no, slot = entry
        page = self._read_page(thread, page_no)
        _, value = self._unpack(page, cls, slot)
        return value

    def delete(self, thread: VThread, key: bytes) -> bool:
        self._enqueue(thread)
        entry = self.index.get(key)
        if entry is None:
            return False
        cls, page_no, slot = entry
        self.index.delete(key)
        self._free_slots[cls].append((page_no, slot))
        page = bytearray(self._read_page(thread, page_no))
        self._pack(page, cls, slot, b"", b"")
        self._commit_page(thread, page_no, bytes(page))
        return True

    def range_entries(self, start: bytes, count: int) -> List[Tuple[bytes, Tuple[int, int, int]]]:
        out = []
        for key, entry in self.index.items_from(start):
            out.append((key, entry))
            if len(out) == count:
                break
        return out

    def used_bytes(self) -> int:
        return self._pages_allocated * self.cfg.page_size


class KVell(KVStore):
    """Hash-sharded store over ``num_ssds * workers_per_ssd`` workers."""

    def __init__(self, config: Optional[KVellConfig] = None) -> None:
        self.config = config or KVellConfig()
        cfg = self.config
        self.clock = VirtualClock()
        self.ssds = [SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)]
        self.workers: List[_Worker] = []
        total_workers = cfg.num_ssds * cfg.workers_per_ssd
        for wid in range(total_workers):
            ssd = self.ssds[wid % cfg.num_ssds]
            per_worker = ssd.capacity // cfg.workers_per_ssd
            base = (wid // cfg.num_ssds) * per_worker
            self.workers.append(_Worker(wid, ssd, base, per_worker, cfg))
        cache_pages = cfg.page_cache_bytes // cfg.page_size
        for worker in self.workers:
            worker.cache_capacity_pages = max(1, cache_pages // total_workers)
        self._default_thread = VThread(0, self.clock, name="caller")
        self.bytes_put = 0
        self.puts = 0
        self.gets = 0
        self.scans = 0

    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    def _route(self, key: bytes) -> _Worker:
        # crc32 rather than hash(): deterministic across processes.
        return self.workers[zlib.crc32(key) % len(self.workers)]

    # ------------------------------------------------------------------
    # KVStore API
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        thread = self._thread(thread)
        thread.spend(self.config.injector_cost)
        self._route(key).put(thread, key, value)
        self.bytes_put += len(value)
        self.puts += 1

    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        thread = self._thread(thread)
        thread.spend(self.config.injector_cost)
        self.gets += 1
        return self._route(key).get(thread, key)

    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        thread = self._thread(thread)
        thread.spend(self.config.injector_cost)
        return self._route(key).delete(thread, key)

    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Merge per-worker sorted indexes, then fetch each item's page."""
        thread = self._thread(thread)
        thread.spend(self.config.injector_cost)
        candidates: List[Tuple[bytes, _Worker, Tuple[int, int, int]]] = []
        for worker in self.workers:
            for key, entry in worker.range_entries(start, count):
                candidates.append((key, worker, entry))
        thread.spend(self.config.scan_candidate_cpu * max(len(candidates), 1))
        candidates.sort(key=lambda item: item[0])
        selected = candidates[:count]
        # Group page reads per worker and batch them on its ring; pages
        # shared between items are read once.
        by_worker: Dict[int, List[int]] = {}
        for _key, worker, (_cls, page_no, _slot) in selected:
            pages = by_worker.setdefault(worker.wid, [])
            if page_no not in pages:
                pages.append(page_no)
        pages_data: Dict[Tuple[int, int], bytes] = {}
        done = thread.now
        for wid, pages in by_worker.items():
            worker = self.workers[wid]
            worker._enqueue(thread)
            requests = []
            for page_no in pages:
                offset = worker._page_offset(page_no)
                pages_data[(wid, page_no)] = worker.ssd.read_raw(
                    offset, self.config.page_size
                )
                if not worker._touch_cache(page_no):
                    requests.append(
                        IORequest("read", offset, self.config.page_size)
                    )
                    worker._insert_cache(page_no)
            for req in requests:
                done = max(done, worker.ring.submit_one(thread.now, req))
        thread.wait_until(done)
        results: List[Tuple[bytes, bytes]] = []
        for key, worker, (cls, page_no, slot) in selected:
            _, value = worker._unpack(pages_data[(worker.wid, page_no)], cls, slot)
            results.append((key, value))
        self.scans += 1
        return results

    def ssd_bytes_written(self) -> int:
        return sum(ssd.bytes_written for ssd in self.ssds)

    def used_bytes(self) -> int:
        return sum(worker.used_bytes() for worker in self.workers)

    def recovery_time(self) -> float:
        """KVell must scan every slab page on every SSD (§7.6)."""
        per_ssd: Dict[int, int] = {}
        for worker in self.workers:
            per_ssd[id(worker.ssd)] = per_ssd.get(id(worker.ssd), 0) + worker.used_bytes()
        times = [
            ssd.scan_time(per_ssd.get(id(ssd), 0)) for ssd in self.ssds
        ]
        return max(times) if times else 0.0

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base.update(
            {
                "puts": float(self.puts),
                "gets": float(self.gets),
                "cache_hits": float(sum(w.cache_hits for w in self.workers)),
                "cache_misses": float(sum(w.cache_misses for w in self.workers)),
                "max_worker_busy": max(w.server.busy_time for w in self.workers),
                "min_worker_busy": min(w.server.busy_time for w in self.workers),
            }
        )
        return base
