"""MatrixKV (ATC '20): LSM-tree with an NVM-resident L0 matrix container.

Flushed memtables become *rows* of a matrix container on NVM instead
of L0 SSTables on flash; compaction into L1 proceeds in fine-grained
*columns* (key sub-ranges drained across all rows), so each compaction
event is small — reducing the write stalls that plague stock LSM
trees.  Reads still walk memtable → rows (newest first) → levels,
which is the traversal overhead Prism's evaluation highlights (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.lsm.blockstore import BlockStore
from repro.baselines.lsm.lsm import LSMConfig, LSMStore, MB
from repro.baselines.lsm.memtable import MemTable
from repro.baselines.lsm.sstable import SSTable
from repro.baselines.lsm.wal import WriteAheadLog
from repro.sim.vthread import VThread
from repro.storage.nvm import NVMDevice
from repro.storage.raid import RAID0
from repro.storage.specs import NVM_SPEC, DeviceSpec
from repro.storage.ssd import SSDDevice


@dataclass
class MatrixKVConfig(LSMConfig):
    nvm_spec: DeviceSpec = field(default_factory=lambda: NVM_SPEC)
    # Matrix container budget on NVM (the paper gives MatrixKV 8 GB;
    # scaled down with everything else).
    container_bytes: int = 8 * MB
    # Fraction of the container one column compaction drains.
    column_fraction: float = 0.25


class MatrixKV(LSMStore):
    """LSM-tree with NVM L0 matrix container and column compaction."""

    def __init__(self, config: Optional[MatrixKVConfig] = None) -> None:
        super().__init__(config or MatrixKVConfig())
        self.rows: List[MemTable] = []  # newest first
        self.container_bytes_used = 0
        self.column_compactions = 0

    def _make_stores(self) -> None:
        cfg = self.config
        self.nvm = NVMDevice(cfg.nvm_spec)
        self.ssds = [SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)]
        raid = RAID0(self.ssds) if len(self.ssds) > 1 else self.ssds[0]
        self.table_store = BlockStore(raid)
        # WAL rides on NVM as well: cheap durable commits.
        self.wal = WriteAheadLog(BlockStore(self.nvm), cfg.wal_capacity)

    # ------------------------------------------------------------------
    # flush: memtable -> matrix row on NVM (no flash IO)
    # ------------------------------------------------------------------
    def _rotate_memtable(self, at: float) -> None:
        if self._bg.now < at:
            self._bg.now = at
        row = self.memtable
        self.memtable = MemTable()
        # Copy the memtable into the container (sequential NVM write).
        done = self.nvm.charge_write_async(self._bg.now, row.approximate_size)
        self._bg.wait_until(done)
        self.rows.insert(0, row)
        self.container_bytes_used += row.approximate_size
        self.flushes += 1
        if self.wal is not None:
            self.wal.truncate()
        while self.container_bytes_used > self.config.container_bytes:
            self._column_compaction()
        self._maybe_compact()

    # ------------------------------------------------------------------
    # column compaction: drain one key column across all rows into L1
    # ------------------------------------------------------------------
    def _column_boundary(self) -> Optional[bytes]:
        """End key of the column: the lowest ``column_fraction`` of the
        container's key space (by sorted key volume)."""
        keys: List[bytes] = []
        for row in self.rows:
            keys.extend(k for k, _ in row.items())
        if not keys:
            return None
        keys.sort()
        cut = max(1, int(len(keys) * self.config.column_fraction))
        if cut >= len(keys):
            return None  # drain everything
        boundary = keys[cut]
        if boundary == keys[0]:
            # The column would be empty (the same hot key fills the
            # cut across rows): widen to the next distinct key, or
            # drain everything if there is none.
            for key in keys[cut:]:
                if key > keys[0]:
                    return key
            return None
        return boundary

    def _column_compaction(self) -> None:
        boundary = self._column_boundary()
        drained: List[List[Tuple[bytes, Optional[bytes]]]] = []
        drained_bytes = 0
        for row in self.rows:
            before = row.approximate_size
            part = row.extract_range(b"", boundary)
            drained_bytes += before - row.approximate_size
            if part:
                drained.append(part)
        self.rows = [row for row in self.rows if len(row)]
        self.container_bytes_used = sum(r.approximate_size for r in self.rows)
        if not drained:
            return
        # Reading the column out of NVM.
        done = self.nvm.charge_read_async(self._bg.now, drained_bytes)
        self._bg.wait_until(done)
        merged = self._merge(drained, drop_tombstones=False)
        lo, hi = merged[0][0], merged[-1][0]
        self._ensure_level(1)
        lower = [t for t in self.levels[1] if t.overlaps(lo, hi)]
        runs = [merged]
        read_done = self._bg.now
        total_in = drained_bytes
        for table in lower:
            _, done = self.table_store.read_async(self._bg.now, table.offset, table.size)
            read_done = max(read_done, done)
            runs.append(table.all_items())
            total_in += table.size
        self._bg.wait_until(read_done)
        self._bg.spend(total_in * self.config.compaction_cpu_per_byte)
        out = self._merge(runs, drop_tombstones=len(self.levels) <= 2)
        write_done = self._bg.now
        new_tables: List[SSTable] = []
        chunk: List[Tuple[bytes, Optional[bytes]]] = []
        chunk_bytes = 0
        for key, value in out:
            chunk.append((key, value))
            chunk_bytes += len(key) + (len(value) if value else 0) + 6
            if chunk_bytes >= self.config.sstable_target_bytes:
                table, done = SSTable.build(self.table_store, chunk, at=self._bg.now)
                write_done = max(write_done, done)
                new_tables.append(table)
                chunk, chunk_bytes = [], 0
        if chunk:
            table, done = SSTable.build(self.table_store, chunk, at=self._bg.now)
            write_done = max(write_done, done)
            new_tables.append(table)
        self._bg.wait_until(write_done)
        lower_ids = {t.table_id for t in lower}
        kept = [t for t in self.levels[1] if t.table_id not in lower_ids]
        self.levels[1] = sorted(kept + new_tables, key=lambda t: t.min_key)
        for table in lower:
            table.release()
            self._evict_table_blocks(table)
        self.compactions += 1
        self.column_compactions += 1
        self.compaction_bytes += total_in

    # ------------------------------------------------------------------
    # reads consult the matrix rows between memtable and L1
    # ------------------------------------------------------------------
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        thread = self._thread(thread)
        thread.spend(self.config.read_cpu)
        self.gets += 1
        found, value = self.memtable.get(key)
        if found:
            return value
        for imm in self.immutables:
            found, value = imm.get(key)
            if found:
                return value
        for row in self.rows:
            found, value = row.get(key)
            # Row probes touch NVM.
            self.nvm.charge_read(thread, 64)
            if found:
                return value
        self._cache_gate(thread)
        miss = self.config.block_miss_overhead
        parse = self.config.block_parse_cost
        for level in range(1, len(self.levels)):
            for table in self.levels[level]:
                if table.covers(key):
                    found, value = table.get(key, thread, self.block_cache, miss, parse)
                    if found:
                        self._trim_cache()
                        return value
                    break
        self._trim_cache()
        return None

    def _sources(
        self, start: bytes, thread: VThread
    ) -> List[Iterator[Tuple[bytes, Optional[bytes]]]]:
        sources = [self.memtable.items_from(start)]
        for imm in self.immutables:
            sources.append(imm.items_from(start))
        for row in self.rows:
            sources.append(row.items_from(start))
        miss = self.config.block_miss_overhead
        ra = self.config.readahead_blocks
        for level in range(1, len(self.levels)):
            tables = self.levels[level]

            def _level_iter(tabs: List[SSTable]) -> Iterator[Tuple[bytes, Optional[bytes]]]:
                for table in tabs:
                    if table.max_key < start:
                        continue
                    yield from table.items_from(
                        start, thread, self.block_cache, miss, ra
                    )

            sources.append(_level_iter(tables))
        return sources

    def flush(self, thread: Optional[VThread] = None) -> None:
        if len(self.memtable):
            self._rotate_memtable(self.clock.now)
        while self.rows:
            self._column_compaction()

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base.update(
            {
                "column_compactions": float(self.column_compactions),
                "container_bytes": float(self.container_bytes_used),
                "nvm_bytes_written": float(self.nvm.bytes_written),
            }
        )
        return base
