"""Ordered indexes.

* :class:`BTree` — a volatile in-memory B+-tree.  Used as the KVell
  per-shard index, the LSM block index, and PACTree's rebuildable
  search layer.
* :class:`PACTree` — a persistent range index on NVM in the style of
  PACTree (SOSP '21): a doubly-linked data layer of persistent leaf
  nodes under an asynchronously maintained volatile search layer.
  Prism's design does not depend on the specific index (§4.1); this
  one provides the required contract — ordered key → HSIT-slot
  mapping, scans, and self-contained crash consistency.
"""

from repro.index.btree import BTree
from repro.index.pactree import PACTree

__all__ = ["BTree", "PACTree"]
