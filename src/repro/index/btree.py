"""A compact in-memory B+-tree.

Keys are ``bytes`` ordered lexicographically; values are arbitrary.
Deletions are lazy (no rebalancing): leaves may underflow, which keeps
the code small without affecting correctness of lookups and scans.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("leaf", "keys", "slots", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: List[bytes] = []
        # For leaves: values. For internal nodes: children (len(keys)+1).
        self.slots: List[Any] = []
        self.next: Optional["_Node"] = None


class BTree:
    """B+-tree with linked leaves for range scans."""

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4: {order}")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0
        self.height = 1

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: bytes) -> Tuple[_Node, List[_Node]]:
        """Descend to the leaf for ``key``, returning it and the path."""
        node = self._root
        path = []
        while not node.leaf:
            path.append(node)
            idx = bisect_right(node.keys, key)
            node = node.slots[idx]
        return node, path

    def get(self, key: bytes, default: Any = None) -> Any:
        leaf, _ = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.slots[idx]
        return default

    def __contains__(self, key: bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def floor_item(self, key: bytes) -> Optional[Tuple[bytes, Any]]:
        """Largest (k, v) with k <= key, or None."""
        # Descend without building the _find_leaf path list — floor
        # lookups are the hottest entry point and never need it.
        leaf = self._root
        while not leaf.leaf:
            leaf = leaf.slots[bisect_right(leaf.keys, key)]
        idx = bisect_right(leaf.keys, key) - 1
        if idx >= 0:
            return leaf.keys[idx], leaf.slots[idx]
        # The leaf may be empty or key precedes all of its keys; walk
        # backwards is not supported, so fall back to a scan of the
        # leftmost spine — floor below the leaf anchor is rare and only
        # happens near the tree's minimum or after lazy deletes.
        best: Optional[Tuple[bytes, Any]] = None
        for k, v in self.items():
            if k > key:
                break
            best = (k, v)
        return best

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: Any) -> bool:
        """Insert or overwrite. Returns True when the key was new."""
        leaf, path = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.slots[idx] = value
            return False
        leaf.keys.insert(idx, key)
        leaf.slots.insert(idx, value)
        self._size += 1
        if len(leaf.keys) >= self.order:
            self._split(leaf, path)
        return True

    def _split(self, node: _Node, path: List[_Node]) -> None:
        mid = len(node.keys) // 2
        right = _Node(leaf=node.leaf)
        if node.leaf:
            sep = node.keys[mid]
            right.keys = node.keys[mid:]
            right.slots = node.slots[mid:]
            node.keys = node.keys[:mid]
            node.slots = node.slots[:mid]
            right.next = node.next
            node.next = right
        else:
            sep = node.keys[mid]
            right.keys = node.keys[mid + 1 :]
            right.slots = node.slots[mid + 1 :]
            node.keys = node.keys[:mid]
            node.slots = node.slots[: mid + 1]
        if path:
            parent = path[-1]
            idx = bisect_right(parent.keys, sep)
            parent.keys.insert(idx, sep)
            parent.slots.insert(idx + 1, right)
            if len(parent.keys) >= self.order:
                self._split(parent, path[:-1])
        else:
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.slots = [node, right]
            self._root = new_root
            self.height += 1

    def delete(self, key: bytes) -> bool:
        """Lazy delete. Returns True when the key existed."""
        leaf, _ = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.slots.pop(idx)
            self._size -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def _leftmost(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.slots[0]
        return node

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        leaf: Optional[_Node] = self._leftmost()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.slots)
            leaf = leaf.next

    def items_from(self, start: bytes) -> Iterator[Tuple[bytes, Any]]:
        """Iterate (k, v) with k >= start in key order."""
        leaf, _ = self._find_leaf(start)
        idx = bisect_left(leaf.keys, start)
        node: Optional[_Node] = leaf
        while node is not None:
            for i in range(idx, len(node.keys)):
                yield node.keys[i], node.slots[i]
            node = node.next
            idx = 0

    def range_items(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, Any]]:
        """Iterate (k, v) with start <= k < end."""
        for k, v in self.items_from(start):
            if k >= end:
                return
            yield k, v

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k
