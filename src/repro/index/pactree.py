"""PACTree-style persistent range index on NVM.

Structure (following PACTree, SOSP '21, which the paper adopts §6):

* **Data layer** — a doubly-linked list of persistent leaf nodes on
  NVM, each holding a sorted run of (key, slot) pairs.  Every mutation
  commits the affected leaf through the :class:`PersistentHeap`, so the
  index guarantees its own crash consistency, exactly the contract
  Prism assumes (§5.5).
* **Search layer** — a volatile B+-tree mapping leaf anchor keys to
  leaf handles.  It is updated *asynchronously* after splits (PACTree's
  key idea for write scalability): lookups tolerate a stale search
  layer by walking right along the data layer.  On recovery the search
  layer is rebuilt from the data layer.

Keys are ``bytes``; slots are small integers (HSIT indices for Prism,
arbitrary payloads for other users).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.index.btree import BTree
from repro.sim.resources import VLock
from repro.sim.vthread import VThread
from repro.storage.nvm import CACHE_LINE, NVMDevice, PersistentHeap

LEAF_CAPACITY = 64
# Rough on-media footprint of a leaf: packed keys + slots + links.
_LEAF_BYTES = LEAF_CAPACITY * (8 + 8) + 64
# CPU cost of one search-layer level (cache-resident B+-tree node).
_SEARCH_STEP_COST = 40e-9


class _Leaf:
    """One persistent data-layer node."""

    persistent_fields = ("anchor", "keys", "slots", "next_handle", "prev_handle")

    __slots__ = ("anchor", "keys", "slots", "next_handle", "prev_handle", "lock")

    def __init__(self, anchor: bytes) -> None:
        self.anchor = anchor
        self.keys: List[bytes] = []
        self.slots: List[int] = []
        self.next_handle = 0  # 0 = none
        self.prev_handle = 0
        self.lock = VLock(name=f"leaf:{anchor!r}")


class PACTree:
    """Persistent ordered index: bytes key -> int slot."""

    def __init__(self, nvm: NVMDevice, leaf_capacity: int = LEAF_CAPACITY) -> None:
        if leaf_capacity < 4:
            raise ValueError(f"leaf capacity must be >= 4: {leaf_capacity}")
        self.heap = PersistentHeap(nvm)
        self.leaf_capacity = leaf_capacity
        self._search = BTree(order=64)
        self._size = 0
        self.splits = 0
        head = _Leaf(anchor=b"")
        self._head_handle = self.heap.allocate(head, _LEAF_BYTES)
        self.heap.commit(self._head_handle)
        self._search.insert(b"", self._head_handle)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _locate(self, thread: Optional[VThread], key: bytes) -> Tuple[int, _Leaf]:
        """Find the data-layer leaf owning ``key``.

        The search layer may lag behind splits, so after the initial
        descent we walk right along the (authoritative) data layer.
        """
        if thread is not None:
            height = self._search.height
            cost = _SEARCH_STEP_COST * (height if height > 1 else 1)
            now = thread.now + cost
            thread.now = now
            thread.cpu_time += cost
            clock = thread.clock
            if now > clock._now:
                clock._now = now
        found = self._search.floor_item(key)
        assert found is not None, "head anchor b'' always present"
        handle = found[1]
        # PersistentHeap.get/charge_read inlined: every index operation
        # descends through here, and the per-step call overhead was a
        # measurable slice of lookup cost.  Same charges, same order.
        heap = self.heap
        objects = heap._objects
        sizes = heap._sizes
        device = heap.device
        read_request = device._read_request
        read_latency = device._read_latency
        leaf = objects[handle]
        while True:
            size = sizes.get(handle, CACHE_LINE)
            device.bytes_read += size
            if thread is not None:
                end = read_request(thread.now, size, read_latency)
                if end > thread.now:
                    thread.now = end
                    clock = thread.clock
                    if end > clock._now:
                        clock._now = end
            next_handle = leaf.next_handle
            if not next_handle:
                break
            nxt = objects[next_handle]
            if key < nxt.anchor:
                break
            handle, leaf = next_handle, nxt
        return handle, leaf

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def insert(self, key: bytes, slot: int, thread: Optional[VThread] = None) -> bool:
        """Map ``key`` to ``slot``. Returns True when the key was new."""
        handle, leaf = self._locate(thread, key)
        if thread is not None:
            leaf.lock.acquire(thread)
        try:
            idx = bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                leaf.slots[idx] = slot
                self.heap.commit(handle, thread)
                return False
            leaf.keys.insert(idx, key)
            leaf.slots.insert(idx, slot)
            self._size += 1
            if len(leaf.keys) > self.leaf_capacity:
                self._split(handle, leaf, thread)
            else:
                self.heap.commit(handle, thread)
            return True
        finally:
            if thread is not None:
                leaf.lock.release(thread)

    def _split(self, handle: int, leaf: _Leaf, thread: Optional[VThread]) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf(anchor=leaf.keys[mid])
        right.keys = leaf.keys[mid:]
        right.slots = leaf.slots[mid:]
        right.next_handle = leaf.next_handle
        right.prev_handle = handle
        right_handle = self.heap.allocate(right, _LEAF_BYTES, thread)
        leaf.keys = leaf.keys[:mid]
        leaf.slots = leaf.slots[:mid]
        # Durable order: new leaf first, then the link from the old one
        # (a crash between the two just leaks the new leaf).
        self.heap.commit(right_handle, thread)
        old_next = right.next_handle
        leaf.next_handle = right_handle
        self.heap.commit(handle, thread)
        if old_next:
            nxt = self.heap.get(old_next)
            nxt.prev_handle = right_handle
            self.heap.commit(old_next, thread)
        # Search-layer update is asynchronous in PACTree; the cost is
        # negligible and lookups tolerate staleness, so apply in place.
        self._search.insert(right.anchor, right_handle)
        self.splits += 1

    def lookup(self, key: bytes, thread: Optional[VThread] = None) -> Optional[int]:
        _, leaf = self._locate(thread, key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.slots[idx]
        return None

    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        handle, leaf = self._locate(thread, key)
        if thread is not None:
            leaf.lock.acquire(thread)
        try:
            idx = bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                leaf.keys.pop(idx)
                leaf.slots.pop(idx)
                self._size -= 1
                self.heap.commit(handle, thread)
                return True
            return False
        finally:
            if thread is not None:
                leaf.lock.release(thread)

    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, int]]:
        """Up to ``count`` (key, slot) pairs with key >= start, in order."""
        if count <= 0:
            return []
        handle, leaf = self._locate(thread, start)
        out: List[Tuple[bytes, int]] = []
        idx = bisect_left(leaf.keys, start)
        while len(out) < count:
            for i in range(idx, len(leaf.keys)):
                out.append((leaf.keys[i], leaf.slots[i]))
                if len(out) == count:
                    return out
            if not leaf.next_handle:
                break
            handle = leaf.next_handle
            leaf = self.heap.get(handle)
            self.heap.charge_read(thread, handle)
            idx = 0
        return out

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """All pairs in key order (untimed; used by recovery and tests)."""
        handle: Optional[int] = self._head_handle
        while handle:
            leaf = self.heap.get(handle)
            yield from zip(leaf.keys, leaf.slots)
            handle = leaf.next_handle or None

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: leaves revert to committed state, search layer dies."""
        self.heap.crash()
        self._search = BTree(order=64)

    def recover(self, thread: Optional[VThread] = None) -> int:
        """Rebuild the volatile search layer from the data layer.

        Returns the number of live keys found.
        """
        self._search = BTree(order=64)
        self._size = 0
        handle: Optional[int] = self._head_handle
        while handle:
            leaf = self.heap.get(handle)
            self.heap.charge_read(thread, handle)
            self._search.insert(leaf.anchor, handle)
            self._size += len(leaf.keys)
            handle = leaf.next_handle or None
        return self._size

    def nvm_bytes(self) -> int:
        """Approximate NVM footprint of the data layer."""
        return self.heap.live_objects * _LEAF_BYTES
