"""Crash exploration at cluster scope: a shard dies at every reachable
crash point, and the *router* must keep its contract.

The single-store sweep (:mod:`repro.faults.crash_sweep`) verifies that
power failure + recovery preserves durability on one node.  Here the
failure model is harsher — the crashed shard never comes back.  The
cluster-level contract, at replication factor ≥ 2 with quorum acks:

* **acknowledged durability** — every mutation the router acknowledged
  before the crash is served afterwards with its exact value (reads
  route around the dead shard; re-replication restores RF);
* **pending atomicity** — the operation in flight when the crash point
  fired is observed either fully applied or fully absent, never torn
  and never half-replicated into view;
* **no stale reads** — a key overwritten after the failover must never
  be served at its pre-failover value.

Mechanics: shard 0's :class:`~repro.storage.crash.CrashPoint` runs the
discovery pass (every label its store reaches while serving its slice
of the workload); then, per label, a fresh identical cluster replays
the workload with that label armed.  When the simulated crash fires the
driver — playing the client — treats shard 0 as dead
(:meth:`PrismCluster.fail_shard`), finishes the workload on the
survivors, and verifies the contract with reads through the router.

Run directly::

    PYTHONPATH=src python -m repro.faults.crash_sweep --cluster
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.errors import ClusterError
from repro.cluster.router import ClusterConfig, PrismCluster
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.faults.crash_sweep import Op, default_ops
from repro.faults.errors import StorageError
from repro.faults.injector import FaultConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import VirtualClock
from repro.storage.crash import SimulatedCrash
from repro.storage.specs import FLASH_SSD_GEN4_SPEC

CRASH_SHARD = 0  # the member whose crash points are explored


@dataclass
class ClusterLabelOutcome:
    """Verdict for one armed label at cluster scope."""

    label: str
    occurrence: int
    fired: bool
    violations: List[str] = field(default_factory=list)
    keys_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.fired and not self.violations


@dataclass
class ClusterSweepReport:
    labels: Dict[str, int] = field(default_factory=dict)
    outcomes: List[ClusterLabelOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def summary(self) -> str:
        lines = [
            f"cluster crash sweep: {len(self.labels)} labels on shard "
            f"{CRASH_SHARD}, {len(self.outcomes)} shard deaths injected"
        ]
        for outcome in self.outcomes:
            if not outcome.ok:
                lines.append(f"  FAIL {outcome.label}#{outcome.occurrence}")
                for v in outcome.violations[:5]:
                    lines.append(f"       {v}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def default_cluster_factory() -> PrismCluster:
    """A 3-shard RF=2 quorum cluster of deliberately tight stores, so
    the per-shard workload slice reaches reclamation and GC labels."""

    def shard_factory(shard_id: int, clock: VirtualClock) -> Prism:
        kb = 1024
        return Prism(
            PrismConfig(
                num_threads=2,
                num_ssds=2,
                ssd_spec=FLASH_SSD_GEN4_SPEC.with_capacity(512 * kb),
                chunk_size=16 * kb,
                pwb_capacity=32 * kb,
                gc_free_threshold=0.4,
                svc_capacity=32 * kb,
                hsit_capacity=50_000,
                enable_checksums=True,
                faults=FaultConfig(seed=9000 + shard_id),
            ),
            metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
            clock=clock,
        )

    return PrismCluster(
        ClusterConfig(
            num_shards=3, replication_factor=2, replication_mode="quorum"
        ),
        shard_factory=shard_factory,
    )


class ClusterCrashSweep:
    """Kills one shard at every reachable crash point; audits the router.

    With ``gray_shard`` set, that shard's devices are latency-inflated
    (``gray_multiplier``×, no errors) from the start of every replay —
    the compound scenario: one member fail-slow while another
    fail-stops mid-operation.  The durability contract is unchanged;
    gray slowness must never cost an acknowledged write.
    """

    def __init__(
        self,
        cluster_factory: Callable[[], PrismCluster] = default_cluster_factory,
        ops: Optional[List[Op]] = None,
        gray_shard: Optional[int] = None,
        gray_multiplier: float = 10.0,
    ) -> None:
        self.cluster_factory = cluster_factory
        self.ops = list(ops) if ops is not None else default_ops()
        if gray_shard is not None and gray_shard == CRASH_SHARD:
            raise ValueError(
                f"gray shard must differ from the crash shard {CRASH_SHARD}"
            )
        self.gray_shard = gray_shard
        self.gray_multiplier = gray_multiplier

    def _make_cluster(self) -> PrismCluster:
        cluster = self.cluster_factory()
        if self.gray_shard is not None:
            cluster.slow_shard(
                self.gray_shard, 0.0, multiplier=self.gray_multiplier
            )
        return cluster

    @staticmethod
    def _apply_op(cluster: PrismCluster, op: Op) -> None:
        kind = op[0]
        if kind == "put":
            cluster.put(op[1], op[2])
        elif kind == "delete":
            cluster.delete(op[1])
        elif kind == "get":
            cluster.get(op[1])
        elif kind == "scan":
            cluster.scan(op[1], op[2])
        else:
            raise ValueError(f"unknown workload op: {op!r}")

    def discover(self) -> Dict[str, int]:
        """Labels shard 0's store reaches while serving the workload."""
        cluster = self._make_cluster()
        point = cluster.shards[CRASH_SHARD].store.crash_point
        point.start_recording()
        for op in self.ops:
            self._apply_op(cluster, op)
        point.stop_recording()
        return dict(point.seen)

    def verify_label(self, label: str, occurrence: int = 1) -> ClusterLabelOutcome:
        """One shard death at one label, then audit through the router."""
        cluster = self._make_cluster()
        point = cluster.shards[CRASH_SHARD].store.crash_point
        point.arm(label, occurrence)
        acked: Dict[bytes, Optional[bytes]] = {}
        pending: Optional[Op] = None
        crashed = False
        for op in self.ops:
            try:
                self._apply_op(cluster, op)
            except SimulatedCrash:
                # The node died mid-operation.  The router's client-side
                # view: this op never acknowledged; the shard is gone.
                crashed = True
                pending = op
                cluster.fail_shard(CRASH_SHARD)
                continue
            except (ClusterError, StorageError):
                continue  # op failed cleanly post-failover; not acked
            if op[0] == "put":
                acked[op[1]] = op[2]
            elif op[0] == "delete":
                acked[op[1]] = None
        outcome = ClusterLabelOutcome(
            label=label, occurrence=occurrence, fired=point.fired == label
        )
        if not outcome.fired:
            point.disarm()
            return outcome
        assert crashed, f"label {label} fired but no crash surfaced"
        outcome.violations = self._audit(cluster, acked, pending)
        outcome.keys_checked = len(acked)
        return outcome

    def _audit(
        self,
        cluster: PrismCluster,
        acked: Dict[bytes, Optional[bytes]],
        pending: Optional[Op],
        crash_shard: int = CRASH_SHARD,
    ) -> List[str]:
        violations: List[str] = []
        if crash_shard not in {s.shard_id for s in cluster.shards if not s.up}:
            violations.append("crashed shard never marked down")
        pend_key = (
            pending[1] if pending and pending[0] in ("put", "delete") else None
        )
        for key, value in acked.items():
            if key == pend_key:
                # The pending op superseded this ack only if it came
                # later; acked{} already holds the final acked value,
                # and the pending mutation may or may not have applied.
                old, new = value, (
                    pending[2] if pending[0] == "put" else None
                )
                got = self._read(cluster, key, violations)
                if got != old and got != new:
                    shown = got[:16] if got is not None else None
                    violations.append(
                        f"pending {pending[0]} on {key!r} torn: got {shown!r}"
                    )
                continue
            got = self._read(cluster, key, violations)
            if value is None:
                if got is not None:
                    violations.append(
                        f"deleted key {key!r} resurrected as {got[:16]!r}"
                    )
            elif got != value:
                shown = got[:16] if got is not None else None
                violations.append(
                    f"acked key {key!r} wrong after failover: "
                    f"expected {value[:16]!r}, got {shown!r}"
                )
        return violations

    @staticmethod
    def _read(
        cluster: PrismCluster, key: bytes, violations: List[str]
    ) -> Optional[bytes]:
        try:
            return cluster.get(key)
        except (ClusterError, StorageError) as exc:
            violations.append(f"key {key!r} unreadable after failover: {exc}")
            return None

    def run(self, jobs: Optional[int] = None) -> ClusterSweepReport:
        """Discover serially, then verify every label (``jobs`` wide).

        Each verification replays on a fresh cluster, so the label
        list partitions cleanly across workers; outcomes come back in
        label order, identical to the serial sweep.
        """
        from repro.parallel import parallel_map

        report = ClusterSweepReport()
        report.labels = self.discover()
        tasks = [(self, label, 1) for label in sorted(report.labels)]
        report.outcomes = parallel_map(_cluster_verify_task, tasks, jobs=jobs)
        return report

    def fuzz(
        self, trials: int, seed: int = 0, jobs: Optional[int] = None
    ) -> List[ClusterLabelOutcome]:
        """Seeded random (label, occurrence) draws, later occurrences."""
        from repro.parallel import parallel_map

        labels = sorted(self.discover().items())
        rng = random.Random(seed)
        draws: List[tuple] = []
        for _ in range(trials):
            if not labels:
                break
            label, count = labels[rng.randrange(len(labels))]
            draws.append((self, label, rng.randint(1, count)))
        return parallel_map(_cluster_verify_task, draws, jobs=jobs)


def _cluster_verify_task(
    sweep: "ClusterCrashSweep", label: str, occurrence: int
) -> ClusterLabelOutcome:
    """One armed shard death on a fresh cluster (spawn-safe)."""
    return sweep.verify_label(label, occurrence)


class RebalanceCrashSweep(ClusterCrashSweep):
    """Shard death at every crash label reached *during a live
    migration* — the crash-safety half of the elasticity contract.

    A membership change triggers at ``trigger_fraction`` of the
    workload; discovery then records which crash labels the watched
    shard's store reaches inside the migration window, and each replay
    arms one of those in-window occurrences and kills the shard when
    it fires.  Three roles cover the interesting deaths:

    * ``source`` — shard 0 (an old owner streaming keys out) dies
      while a new member is being added;
    * ``target`` — the joining shard itself dies mid-copy (the
      migration must abort and routing revert to the old ring, with
      migration-window writes resynced back);
    * ``leaving`` — scale-in: shard 0 drains out and a *surviving*
      owner (shard 1, receiving the copy stream) dies mid-migration
      (the handoff fast-forwards onto the remaining members).

    Every crash label lives on a mutation path, and a draining shard
    admits no mutations — it has no torn mid-operation state to
    explore — so the scale-in role kills the member with inbound
    stream writes instead; the draining shard's own (state-less) death
    is covered by the direct kill-mid-drain tests.

    The audit is the parent's: every acknowledged write readable with
    its exact value through the router, the pending operation atomic.
    """

    ROLES = ("source", "target", "leaving")

    def __init__(
        self,
        cluster_factory: Callable[[], PrismCluster] = default_cluster_factory,
        ops: Optional[List[Op]] = None,
        role: str = "source",
        trigger_fraction: float = 1.0 / 3.0,
        bandwidth: float = 32.0 * 1024,
    ) -> None:
        super().__init__(cluster_factory, ops)
        if role not in self.ROLES:
            raise ValueError(f"unknown rebalance-crash role: {role}")
        self.role = role
        self.action = "remove" if role == "leaving" else "add"
        # The member whose crash points are explored ("target" watches
        # the joining shard, which only exists after the trigger).
        self.watch_sid = 1 if role == "leaving" else CRASH_SHARD
        self.trigger_at = max(1, int(len(self.ops) * trigger_fraction))
        self.bandwidth = bandwidth
        # Label counts on the watched shard *before* the migration
        # window opens; replays arm the (before + k)-th occurrence so
        # the crash always lands inside the window.
        self._before: Dict[str, int] = {}

    def _trigger(self, cluster: PrismCluster) -> int:
        if self.action == "add":
            return cluster.add_shard(bandwidth=self.bandwidth)
        cluster.remove_shard(CRASH_SHARD, bandwidth=self.bandwidth)
        return CRASH_SHARD

    def discover(self) -> Dict[str, int]:
        """Labels the watched shard reaches inside the migration window."""
        cluster = self._make_cluster()
        point = None
        before: Dict[str, int] = {}
        window_end: Optional[Dict[str, int]] = None
        if self.role != "target":
            point = cluster.shards[self.watch_sid].store.crash_point
            point.start_recording()
        for i, op in enumerate(self.ops):
            if i == self.trigger_at:
                sid = self._trigger(cluster)
                if self.role == "target":
                    point = cluster.shards[sid].store.crash_point
                    point.start_recording()
                else:
                    before = dict(point.seen)
            self._apply_op(cluster, op)
            if (
                point is not None
                and i >= self.trigger_at
                and window_end is None
                and not cluster.rebalancing
            ):
                window_end = dict(point.seen)
        if window_end is None:
            # The stream outlived the workload: its drain is still part
            # of the migration window.
            cluster.finish_rebalance()
            window_end = dict(point.seen)
        point.stop_recording()
        self._before = before
        return {
            label: count - before.get(label, 0)
            for label, count in window_end.items()
            if count > before.get(label, 0)
        }

    def verify_label(self, label: str, occurrence: int = 1) -> ClusterLabelOutcome:
        """One in-window shard death, then audit through the router."""
        cluster = self._make_cluster()
        point = None
        crash_sid = self.watch_sid
        if self.role != "target":
            point = cluster.shards[self.watch_sid].store.crash_point
            point.arm(label, self._before.get(label, 0) + occurrence)
        acked: Dict[bytes, Optional[bytes]] = {}
        pending: Optional[Op] = None
        crashed = False
        for i, op in enumerate(self.ops):
            if i == self.trigger_at:
                sid = self._trigger(cluster)
                if self.role == "target":
                    crash_sid = sid
                    point = cluster.shards[sid].store.crash_point
                    point.arm(label, occurrence)
            try:
                self._apply_op(cluster, op)
            except SimulatedCrash:
                crashed = True
                pending = op
                cluster.fail_shard(crash_sid)
                continue
            except (ClusterError, StorageError):
                continue  # failed cleanly; not acked
            if op[0] == "put":
                acked[op[1]] = op[2]
            elif op[0] == "delete":
                acked[op[1]] = None
        if not crashed:
            # The armed occurrence may sit in the tail of the copy
            # stream, past the last client op.
            try:
                cluster.finish_rebalance()
            except SimulatedCrash:
                crashed = True
                cluster.fail_shard(crash_sid)
        cluster.finish_rebalance()
        fired = point is not None and point.fired == label
        outcome = ClusterLabelOutcome(
            label=label, occurrence=occurrence, fired=fired
        )
        if not fired:
            if point is not None:
                point.disarm()
            return outcome
        assert crashed, f"label {label} fired but no crash surfaced"
        outcome.violations = self._audit(
            cluster, acked, pending, crash_shard=crash_sid
        )
        outcome.keys_checked = len(acked)
        return outcome


def rebalance_main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.crash_sweep --rebalance",
        description=(
            "Kill a shard at every crash point reached during a live "
            "migration (source, target, and leaving roles); audit the "
            "router."
        ),
    )
    parser.add_argument("--ops", type=int, default=300, help="workload length")
    parser.add_argument("--keys", type=int, default=60, help="key-space size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--role", choices=RebalanceCrashSweep.ROLES + ("all",), default="all",
        help="which migration participant dies",
    )
    parser.add_argument(
        "--fuzz", type=int, default=0,
        help="extra randomized (label, occurrence) trials per role",
    )
    args = parser.parse_args(argv)
    roles = (
        RebalanceCrashSweep.ROLES if args.role == "all" else (args.role,)
    )
    ok = True
    for role in roles:
        sweep = RebalanceCrashSweep(
            ops=default_ops(args.ops, args.keys, args.seed), role=role
        )
        report = sweep.run()
        if args.fuzz:
            report.outcomes.extend(sweep.fuzz(args.fuzz, seed=args.seed))
        print(f"[role={role}] {report.summary()}")
        ok = ok and report.ok
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.crash_sweep --cluster",
        description="Kill a shard at every crash point; audit the router.",
    )
    parser.add_argument("--ops", type=int, default=300, help="workload length")
    parser.add_argument("--keys", type=int, default=60, help="key-space size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--fuzz", type=int, default=0,
        help="extra randomized (label, occurrence) trials",
    )
    args = parser.parse_args(argv)
    sweep = ClusterCrashSweep(
        ops=default_ops(args.ops, args.keys, args.seed)
    )
    report = sweep.run()
    if args.fuzz:
        report.outcomes.extend(sweep.fuzz(args.fuzz, seed=args.seed))
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
