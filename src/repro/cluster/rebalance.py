"""Live resharding: crash-safe key migration under traffic.

``PrismCluster.add_shard`` / ``remove_shard`` change membership while
the workload is running.  This module owns the per-migration state
machine that makes that safe:

* **planning** — the :class:`HashRing` pins down exactly the affected
  keys: :func:`plan_moves` compares old- and new-ring preference lists
  and emits a :class:`MoveSpec` only for keys whose owner set actually
  changed (minimal movement — Hypothesis-tested).  Moves are grouped
  into the changed shard's ring arcs (:meth:`HashRing.owned_ranges`),
  the per-range cutover units.
* **streaming** — a background virtual-thread migrator copies pending
  keys to their new owners under a configurable bandwidth budget
  (bytes per virtual second, the Scrubber's pacing pattern).  It is
  pumped lazily from foreground operations, so migration traffic
  genuinely interleaves with — and contends for device bandwidth
  with — the live workload.
* **dual-read window** — until a key has been handed off, reads are
  *forwarded* to the old owner (counted in
  ``rebalance.forwarded_reads``); once copied, or overwritten by a
  migration-window write, reads route to the new owner.  A range whose
  last key is disposed of emits a ``range_cutover`` event — the
  per-range cutover barrier.
* **write redirection** — writes arriving mid-migration route to the
  key's *new* owners and mark the key fresh-at-target, so the migrator
  never clobbers them with a stale copy and the ``WriteLedger`` audit
  stays green across the transition (zero lost acked writes, no stale
  reads after cutover).
* **crash safety** — a shard death during migration resolves the
  migration *synchronously* inside ``fail_shard``, before the normal
  re-replication runs.  Death of the shard being added aborts the
  migration: old owners are re-synced from the surviving new owners
  (migration-window writes landed there) and routing reverts to the
  old ring.  Any other death fast-forwards the handoff to completion
  (safety outranks the bandwidth budget once a member is gone) and
  lets the rebuild restore RF on the post-migration ring.

Removal is the mirror image: the leaving shard drains (admission
rejects new writes with a typed
:class:`~repro.cluster.errors.ShardDrainingError`; reads and migration
traffic still flow), its keys stream to the surviving owners, and the
shard retires once the handoff completes.

Everything is deterministic — key enumeration is sorted, pacing is
virtual time, there is no randomness — and every hook in the router is
behind a ``migration is None`` check, so a run with no membership
change stays byte-identical to the pre-elasticity tree.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional, Tuple

from repro.cluster.admission import KIND_INTERNAL
from repro.cluster.ring import HashRing
from repro.faults.errors import DegradedError, DeviceError
from repro.sim.vthread import VThread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.router import PrismCluster

ACTION_ADD = "add"
ACTION_REMOVE = "remove"

MIG_COPYING = "copying"
MIG_DONE = "done"
MIG_ABORTED = "aborted"

# Moves whose key's primary arc is unchanged (only replica membership
# shifted) are accounted in this pseudo-range.
REPLICA_RANGE = -1

_MISSING = object()


class MoveSpec:
    """One key's ownership change: where it was, where it must go."""

    __slots__ = ("old_owners", "new_owners", "targets", "drop", "range_id")

    def __init__(
        self,
        old_owners: Tuple[int, ...],
        new_owners: Tuple[int, ...],
        targets: Tuple[int, ...],
        drop: Tuple[int, ...],
    ) -> None:
        self.old_owners = old_owners  # pre-migration preference list
        self.new_owners = new_owners  # post-migration preference list
        self.targets = targets  # new owners that lack the key
        self.drop = drop  # old owners that lose the key
        self.range_id = REPLICA_RANGE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MoveSpec({self.old_owners}->{self.new_owners}, "
            f"targets={self.targets}, drop={self.drop}, r={self.range_id})"
        )


def plan_moves(
    old_ring: HashRing,
    new_ring: HashRing,
    keys: Iterable[bytes],
    replication_factor: int,
) -> Dict[bytes, MoveSpec]:
    """The minimal movement plan between two ring configurations.

    A key appears in the plan exactly when its preference list changes;
    ``targets`` are the new owners that must receive a copy, ``drop``
    the old owners whose copy becomes garbage after cutover.  Keys
    whose owners are untouched by the membership change are never
    moved — the consistent-hashing contract, surfaced as data.
    """
    moves: Dict[bytes, MoveSpec] = {}
    rf = replication_factor
    for key in keys:
        old = tuple(old_ring.preference_list(key, rf))
        new = tuple(new_ring.preference_list(key, rf))
        if old == new:
            continue
        old_set = set(old)
        new_set = set(new)
        moves[key] = MoveSpec(
            old,
            new,
            tuple(sid for sid in new if sid not in old_set),
            tuple(sid for sid in old if sid not in new_set),
        )
    return moves


class Migration:
    """State machine for one membership change (add or remove)."""

    def __init__(
        self,
        cluster: "PrismCluster",
        action: str,
        shard_id: int,
        new_ring: HashRing,
        bandwidth: float,
        at: float,
    ) -> None:
        if action not in (ACTION_ADD, ACTION_REMOVE):
            raise ValueError(f"unknown migration action: {action}")
        if bandwidth <= 0:
            raise ValueError(f"migration bandwidth must be positive: {bandwidth}")
        self.cluster = cluster
        self.action = action
        self.shard_id = shard_id  # the member joining (add) or leaving (remove)
        self.new_ring = new_ring
        self.bandwidth = bandwidth
        self.state = MIG_COPYING
        self.started_at = at
        self.finished_at: Optional[float] = None
        self.cutover_at: Optional[float] = None  # last range handed off
        self.thread = VThread(
            -70, cluster.clock, name=f"migrator-{action}{shard_id}",
            background=True,
        )
        self.thread.now = at
        self.moves: Dict[bytes, MoveSpec] = {}
        self.pending: Deque[bytes] = deque()
        self.moved: set = set()  # handed off (copied, or fresh at target)
        self.fresh: set = set()  # mutated mid-window: newest value at target
        self.keys_moved = 0
        self.keys_lost = 0
        self.keys_retired = 0
        # Per-range accounting: range id -> keys still pending.
        self.range_pending: Dict[int, int] = {}
        self.range_total: Dict[int, int] = {}
        self._arcs: List[Tuple[int, int]] = []
        self._arc_his: List[int] = []

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _range_of(self, key: bytes) -> int:
        """The arc (cutover unit) a key's position falls in, else the
        replica pseudo-range when only replica membership changed."""
        if not self._arcs:
            return REPLICA_RANGE
        pos = self.new_ring.key_position(key)
        idx = bisect.bisect_left(self._arc_his, pos)
        if idx == len(self._arc_his):
            idx = 0  # wrap past the top of the ring
        if HashRing.position_in_range(pos, self._arcs[idx]):
            return idx
        return REPLICA_RANGE

    def plan(self, rf: int) -> None:
        """Snapshot the affected keys and group them into ranges.

        Enumeration walks every serving shard's index (sorted, deduped)
        so the plan is deterministic; keys inserted after this snapshot
        are born on the new ring and never need moving.
        """
        cluster = self.cluster
        seen: set = set()
        keys: List[bytes] = []
        for shard in cluster.shards:
            if not shard.serving:
                continue
            for key, _idx in shard.store.index.items():
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        keys.sort()
        self.moves = plan_moves(cluster.ring, self.new_ring, keys, rf)
        # Cutover ranges are the changed shard's primary arcs: on the
        # new ring for a joining member (the ranges it takes over), on
        # the old ring for a leaving one (the ranges it vacates).
        arc_ring = self.new_ring if self.action == ACTION_ADD else cluster.ring
        self._arcs = arc_ring.owned_ranges(self.shard_id)
        self._arc_his = [hi for _lo, hi in self._arcs]
        for key, move in self.moves.items():
            move.range_id = self._range_of(key)
        ordered = sorted(
            self.moves, key=lambda k: (self.moves[k].range_id, k)
        )
        self.pending = deque(ordered)
        for key in ordered:
            rid = self.moves[key].range_id
            self.range_pending[rid] = self.range_pending.get(rid, 0) + 1
        self.range_total = dict(self.range_pending)

    # ------------------------------------------------------------------
    # routing queries (the router consults these while active)
    # ------------------------------------------------------------------
    def write_owners(self, key: bytes, exclude: Optional[set]) -> List[int]:
        """Writes always target the new ring's owners."""
        return self.new_ring.preference_list(
            key, self.cluster.config.replication_factor, exclude=exclude or None
        )

    def read_route(
        self, key: bytes, exclude: Optional[set]
    ) -> Tuple[List[int], bool]:
        """Owners to read from, plus whether the read is *forwarded*.

        Unmoved affected keys read from the old owner (the dual-read
        window); everything else reads from the new ring.
        """
        rf = self.cluster.config.replication_factor
        if self.state == MIG_COPYING and key in self.moves and key not in self.moved:
            ids = self.cluster.ring.preference_list(
                key, rf, exclude=exclude or None
            )
            return ids, True
        return (
            self.new_ring.preference_list(key, rf, exclude=exclude or None),
            False,
        )

    def note_write(self, key: bytes) -> None:
        """An acknowledged foreground mutation landed at the new owners
        mid-window: the target's copy is now the newest — the migrator
        must never overwrite it with the old owner's stale value."""
        if self.state != MIG_COPYING:
            return
        if key in self.moves and key not in self.moved:
            self.moved.add(key)
            self.fresh.add(key)
            self.cluster.metrics.counter("rebalance.redirected_writes").inc()

    # ------------------------------------------------------------------
    # the migrator (pumped lazily from foreground operations)
    # ------------------------------------------------------------------
    def pump(self, upto: float) -> int:
        """Copy pending keys whose turn starts at or before ``upto``.

        Mirrors the replication queue's lazy pumping: the migrator
        thread serializes copies, each paced to the bandwidth budget,
        and foreground operations at time ``t`` only observe migration
        work scheduled before ``t``.  Returns the keys disposed of.
        """
        if self.state != MIG_COPYING:
            return 0
        t = self.thread
        pending = self.pending
        disposed = 0
        while pending:
            key = pending[0]
            if key in self.moved:
                # Fresh at target (redirected write): nothing to copy.
                pending.popleft()
                self._dispose(key)
                disposed += 1
                continue
            if t.now > upto:
                break
            self._copy_key(key)
            pending.popleft()
            self.moved.add(key)
            self._dispose(key)
            disposed += 1
        if not pending:
            self._finish()
        return disposed

    def _copy_key(self, key: bytes) -> None:
        """Stream one key to its new owners under the bandwidth budget."""
        cluster = self.cluster
        move = self.moves[key]
        if not move.targets:
            return  # replica shuffle only: every new owner already holds it
        t = self.thread
        down = cluster._down
        copy_start = t.now
        value = _MISSING
        for sid in move.old_owners:
            if sid in down or not cluster.shards[sid].serving:
                continue
            try:
                value = cluster.shards[sid].store.get(key, t)
            except (DeviceError, DegradedError):
                continue
            break
        if value is _MISSING:
            # No surviving source holds the key (RF=1 and the owner
            # died): the data is gone; count it rather than hide it.
            self.keys_lost += 1
            cluster.metrics.counter("rebalance.keys_lost").inc()
            return
        if value is None:
            return  # deleted at the source since planning; nothing to move
        for sid in move.targets:
            if sid in down or not cluster.shards[sid].serving:
                continue
            # Migration traffic is ``internal``: it passes a draining
            # shard's write gate and is never load-shed.
            cluster.shards[sid].admission.admit(t.now, KIND_INTERNAL)
            try:
                cluster.shards[sid].store.put(key, value, t)
            except (DeviceError, DegradedError):
                continue  # the rebuild pass restores RF later
        # Bandwidth budget: the stream never moves faster than
        # ``bandwidth`` bytes per virtual second.
        floor = copy_start + len(value) / self.bandwidth
        if t.now < floor:
            t.now = floor
        self.keys_moved += 1
        cluster.metrics.counter("rebalance.keys_moved").inc()

    def _dispose(self, key: bytes) -> None:
        """Per-range accounting; emits the cutover event at zero."""
        rid = self.moves[key].range_id
        left = self.range_pending.get(rid)
        if left is None:
            return
        left -= 1
        self.range_pending[rid] = left
        if left == 0:
            self.cutover_at = self.thread.now
            self.cluster.events.emit(
                self.thread.now,
                "range_cutover",
                action=self.action,
                shard=self.shard_id,
                range=rid,
                keys=self.range_total.get(rid, 0),
            )

    # ------------------------------------------------------------------
    # completion, failure, abort
    # ------------------------------------------------------------------
    def _finish(self) -> None:
        """Every range handed off: retire stale copies, swap the ring."""
        cluster = self.cluster
        t = self.thread
        if self.cutover_at is None:
            self.cutover_at = t.now  # nothing needed moving
        # Retire phase: drop copies from members that lost ownership.
        # The leaving shard (remove) skips per-key deletes — its whole
        # store is decommissioned below.
        for key in self.pending_retires():
            move = self.moves[key]
            for sid in move.drop:
                if self.action == ACTION_REMOVE and sid == self.shard_id:
                    continue
                if sid in cluster._down:
                    continue
                shard = cluster.shards[sid]
                if not shard.serving:
                    continue
                try:
                    if shard.store.delete(key, t):
                        self.keys_retired += 1
                        cluster.metrics.counter("rebalance.keys_retired").inc()
                except (DeviceError, DegradedError):
                    continue
        cluster.ring = self.new_ring
        if self.action == ACTION_REMOVE:
            shard = cluster.shards[self.shard_id]
            if shard.serving:
                shard.retire()
                cluster.events.emit(t.now, "shard_retired", shard=self.shard_id)
        self.state = MIG_DONE
        self.finished_at = t.now
        cluster._end_migration(self)
        cluster.metrics.gauge("rebalance.cutover_seconds").set(
            self.cutover_at - self.started_at
        )
        cluster.metrics.gauge("rebalance.duration_seconds").set(
            self.finished_at - self.started_at
        )
        cluster.events.emit(
            self.started_at,
            "rebalance_done",
            action=self.action,
            shard=self.shard_id,
            keys_moved=self.keys_moved,
            keys_lost=self.keys_lost,
            keys_retired=self.keys_retired,
            cutover_seconds=self.cutover_at - self.started_at,
            duration=self.finished_at - self.started_at,
        )

    def pending_retires(self) -> List[bytes]:
        """Moved keys with at least one copy to garbage-collect, in
        deterministic (range, key) order."""
        return [
            key
            for key in sorted(
                self.moves, key=lambda k: (self.moves[k].range_id, k)
            )
            if self.moves[key].drop and key in self.moved
        ]

    def on_shard_failed(self, shard_id: int, at: float) -> None:
        """A member died mid-migration (``fail_shard`` calls this
        *before* re-replication).  Death of the joining shard aborts —
        nothing else can complete its handoff.  Any other death
        fast-forwards the migration to completion immediately: with a
        member gone, finishing the handoff (so the rebuild can restore
        RF on one consistent ring) outranks the bandwidth budget.
        """
        if self.state != MIG_COPYING:
            return
        if self.action == ACTION_ADD and shard_id == self.shard_id:
            self._abort(at)
        else:
            if self.thread.now < at:
                self.thread.now = at
            self.pump(float("inf"))

    def _abort(self, at: float) -> None:
        """The joining shard died: revert routing to the old ring.

        Migration-window writes were acknowledged by the *new* owners,
        so before old-ring routing resumes every fresh key is re-synced
        from a surviving new owner back to its old owners — without
        this, a replica that missed the redirected write could serve a
        stale value (a lost acked write in all but name).
        """
        cluster = self.cluster
        t = self.thread
        if t.now < at:
            t.now = at
        down = cluster._down
        resynced = 0
        for key in sorted(self.fresh):
            move = self.moves[key]
            value = _MISSING
            for sid in move.new_owners:
                if sid in down or not cluster.shards[sid].serving:
                    continue
                try:
                    value = cluster.shards[sid].store.get(key, t)
                except (DeviceError, DegradedError):
                    continue
                break
            if value is _MISSING:
                continue  # no surviving new owner; the old copy stands
            for sid in move.old_owners:
                if sid in down or not cluster.shards[sid].serving:
                    continue
                store = cluster.shards[sid].store
                try:
                    if value is None:
                        store.delete(key, t)
                    else:
                        store.put(key, value, t)
                    resynced += 1
                except (DeviceError, DegradedError):
                    continue
        self.state = MIG_ABORTED
        self.finished_at = t.now
        cluster._end_migration(self)
        cluster.metrics.counter("rebalance.aborted").inc()
        cluster.events.emit(
            t.now,
            "rebalance_aborted",
            action=self.action,
            shard=self.shard_id,
            keys_resynced=resynced,
            keys_moved=self.keys_moved,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "shard": self.shard_id,
            "state": self.state,
            "keys_planned": len(self.moves),
            "keys_pending": len(self.pending),
            "keys_moved": self.keys_moved,
            "keys_lost": self.keys_lost,
            "keys_retired": self.keys_retired,
            "ranges": len(self.range_total),
            "ranges_cut": sum(
                1 for left in self.range_pending.values() if left == 0
            ),
        }
