"""Sharded, replicated cluster serving layer.

Scales the single-node Prism simulation out: N independent Prism
instances (shards) share one virtual clock behind a consistent-hash
router with primary/replica replication, failover with background
re-replication, and per-shard admission control.  See
``docs/simulation-model.md`` ("Cluster model") for the semantics.
"""

from repro.cluster.admission import AdmissionController, TokenBucket
from repro.cluster.errors import (
    ClusterError,
    RebalanceInProgressError,
    ShardDrainingError,
    ShardOverloadedError,
    ShardUnavailableError,
)
from repro.cluster.health import CircuitBreaker, HealthConfig, HealthMonitor
from repro.cluster.rebalance import Migration, MoveSpec, plan_moves
from repro.cluster.ring import (
    DuplicateShardError,
    HashRing,
    LastShardError,
    RingError,
    UnknownShardError,
)
from repro.cluster.router import (
    ClusterConfig,
    PrismCluster,
    default_shard_factory,
)
from repro.cluster.shard import Shard

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterError",
    "DuplicateShardError",
    "HashRing",
    "HealthConfig",
    "HealthMonitor",
    "LastShardError",
    "Migration",
    "MoveSpec",
    "PrismCluster",
    "RebalanceInProgressError",
    "RingError",
    "Shard",
    "ShardDrainingError",
    "ShardOverloadedError",
    "ShardUnavailableError",
    "TokenBucket",
    "UnknownShardError",
    "default_shard_factory",
    "plan_moves",
]
