"""Sharded, replicated cluster serving layer.

Scales the single-node Prism simulation out: N independent Prism
instances (shards) share one virtual clock behind a consistent-hash
router with primary/replica replication, failover with background
re-replication, and per-shard admission control.  See
``docs/simulation-model.md`` ("Cluster model") for the semantics.
"""

from repro.cluster.admission import AdmissionController, TokenBucket
from repro.cluster.errors import (
    ClusterError,
    ShardOverloadedError,
    ShardUnavailableError,
)
from repro.cluster.health import CircuitBreaker, HealthConfig, HealthMonitor
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterConfig,
    PrismCluster,
    default_shard_factory,
)
from repro.cluster.shard import Shard

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterError",
    "HashRing",
    "HealthConfig",
    "HealthMonitor",
    "PrismCluster",
    "Shard",
    "ShardOverloadedError",
    "ShardUnavailableError",
    "TokenBucket",
    "default_shard_factory",
]
