"""Per-shard admission control: queue-depth caps and token-bucket
rate limiting, in virtual time.

A saturated shard must degrade gracefully — shed load with a typed
:class:`~repro.cluster.errors.ShardOverloadedError` the client can back
off on — rather than queue requests unboundedly and let tail latency
grow without limit.  Two independent mechanisms, both optional:

* **queue-depth cap** — at most ``max_queue_depth`` operations may be
  in flight on the shard at any instant of virtual time.  In-flight is
  tracked as a set of operation end-times: an op started at ``t`` that
  finished at ``e > t`` occupies a slot for every admission decision at
  times in ``[t, e)``.
* **token bucket** — ``rate`` tokens accrue per virtual second up to
  ``burst``; each admitted operation consumes one.  An empty bucket
  sheds with a ``retry_after`` hint of the refill time.

A third, migration-aware gate rides on top: a **draining** shard (one
being decommissioned by a live reshard) rejects *new writes* with a
typed :class:`~repro.cluster.errors.ShardDrainingError` — the router
retries them at the key's new owner — while reads (the dual-read
window serves unmoved keys from the old owner) and ``internal``
traffic (the migrator's own copies, replication catch-up) keep
flowing and are never shed.

With both knobs disabled and the shard not draining (the default)
:meth:`admit` returns immediately without reading the clock or
allocating — the fault-free, unlimited configuration stays
bit-identical to a build without admission control.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.cluster.errors import ShardDrainingError, ShardOverloadedError

KIND_READ = "read"
KIND_WRITE = "write"
KIND_INTERNAL = "internal"  # migration / repair traffic: never shed


class TokenBucket:
    """A token bucket over virtual time (deterministic, allocation-free)."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst < 1:
            raise ValueError(f"burst must allow at least one op: {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = 0.0

    def try_take(self, at: float) -> float:
        """Consume one token at virtual time ``at``.

        Returns 0.0 on success, else the virtual seconds until a token
        will be available (the shed hint).  Time never flows backwards
        here: ``at`` below the last refill point refills nothing.
        """
        if at > self._last:
            self.tokens = min(self.burst, self.tokens + (at - self._last) * self.rate)
            self._last = at
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Combined queue-depth + rate-limit gate for one shard."""

    def __init__(
        self,
        shard_id: int,
        max_queue_depth: Optional[int] = None,
        rate: Optional[float] = None,
        burst: float = 64.0,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"queue depth cap must be >= 1: {max_queue_depth}")
        self.shard_id = shard_id
        self.max_queue_depth = max_queue_depth
        self.bucket = TokenBucket(rate, burst) if rate is not None else None
        self._inflight_ends: List[float] = []  # min-heap of op end times
        self.admitted = 0
        self.shed_queue = 0
        self.shed_rate = 0
        self.draining = False
        self.drain_rejects = 0

    @property
    def enabled(self) -> bool:
        return self.max_queue_depth is not None or self.bucket is not None

    # ------------------------------------------------------------------
    # drain lifecycle (live resharding)
    # ------------------------------------------------------------------
    def start_drain(self) -> None:
        """Stop admitting new writes; reads and internal traffic flow."""
        self.draining = True

    def stop_drain(self) -> None:
        """Drain over (handoff complete, or the migration aborted)."""
        self.draining = False

    def inflight_at(self, at: float) -> int:
        ends = self._inflight_ends
        while ends and ends[0] <= at:
            heapq.heappop(ends)
        return len(ends)

    def admit(self, at: float, kind: str = KIND_READ) -> None:
        """Gate one operation starting at virtual time ``at``.

        Raises :class:`ShardDrainingError` for new writes on a
        draining shard and :class:`ShardOverloadedError` when
        shedding; otherwise records nothing yet — the caller reports
        the op's end time via :meth:`complete` so later admissions see
        it in flight.  ``kind`` is one of ``read`` / ``write`` /
        ``internal``; internal (migration) traffic is never gated.
        """
        if self.draining and kind == KIND_WRITE:
            self.drain_rejects += 1
            raise ShardDrainingError(self.shard_id)
        if kind == KIND_INTERNAL:
            return
        if self.max_queue_depth is None and self.bucket is None:
            return
        if (
            self.max_queue_depth is not None
            and self.inflight_at(at) >= self.max_queue_depth
        ):
            self.shed_queue += 1
            raise ShardOverloadedError(self.shard_id, "queue depth cap")
        if self.bucket is not None:
            wait = self.bucket.try_take(at)
            if wait > 0.0:
                self.shed_rate += 1
                raise ShardOverloadedError(
                    self.shard_id, "rate limit", retry_after=wait
                )
        self.admitted += 1

    def complete(self, end: float) -> None:
        """Record an admitted operation's end time."""
        if self.max_queue_depth is None and self.bucket is None:
            return
        heapq.heappush(self._inflight_ends, end)
