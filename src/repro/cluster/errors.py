"""Typed failures of the cluster serving layer.

Everything derives from :class:`ClusterError` so callers can treat the
router as one fallible component, while the leaf classes keep the
crucial distinctions visible:

* :class:`ShardOverloadedError` — *load shedding*: the target shard's
  admission control (queue-depth cap or token bucket) rejected the
  request before it touched any storage.  Nothing happened; the client
  may retry after backoff.  This is the graceful-degradation answer a
  saturated shard gives instead of queueing unboundedly.
* :class:`ShardUnavailableError` — no live owner can serve the key:
  every shard in the key's (effective) preference list is down.  With
  replication factor 1 this is typed data unavailability, analogous to
  :class:`repro.faults.errors.ReadDegradedError` at the device level.
"""

from __future__ import annotations


class ClusterError(Exception):
    """Base for cluster-layer failures."""


class ShardOverloadedError(ClusterError):
    """Admission control shed the request before any work was done.

    ``retry_after`` is the virtual seconds until the shard expects to
    have capacity again (token-bucket refill time, or 0 when the queue
    cap tripped and the caller should back off adaptively).
    """

    def __init__(self, shard_id: int, reason: str, retry_after: float = 0.0) -> None:
        super().__init__(
            f"shard {shard_id} overloaded ({reason}); "
            f"retry after {retry_after:g}s"
        )
        self.shard_id = shard_id
        self.reason = reason
        self.retry_after = retry_after


class ShardDrainingError(ClusterError):
    """The shard is being decommissioned and admits no *new* writes.

    Raised by admission control on a draining member: in-flight
    operations and migration traffic still flow, reads still serve
    (the dual-read window needs them), but fresh writes must go to the
    key's new owner — the router catches this and retries there.
    """

    def __init__(self, shard_id: int) -> None:
        super().__init__(
            f"shard {shard_id} is draining; new writes go to the new owner"
        )
        self.shard_id = shard_id


class RebalanceInProgressError(ClusterError):
    """Only one membership change may run at a time.

    ``add_shard``/``remove_shard`` during an active migration would
    need a three-ring routing rule; callers must wait for (or finish)
    the current migration first.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(f"a rebalance is already in progress: {detail}")


class ShardUnavailableError(ClusterError):
    """Every owner of a key is down — the request cannot be served."""

    def __init__(self, key: bytes, shard_ids) -> None:
        super().__init__(
            f"no live shard for key {key!r}: owners {sorted(shard_ids)} all down"
        )
        self.key = key
        self.shard_ids = tuple(shard_ids)
