"""One cluster member: a full Prism instance plus serving state.

A :class:`Shard` wraps the store with everything the router needs to
treat it as a node: up/down state, an admission controller, and an
inbound asynchronous-replication queue.

The replication queue models the *primary's outbound lag* for async
replication: an acknowledged write is enqueued at its ack time and
applied to this replica by a background virtual thread that processes
the queue in FIFO order.  Items are applied lazily — :meth:`pump`
applies everything whose turn starts at or before the pumping time —
so a replica read genuinely observes staleness, and a primary that
dies with backlog still unsent loses exactly that backlog
(:meth:`drop_from`).  Under quorum/sync replication the queue is never
used and pumping is a no-op, keeping those modes bit-identical to a
build without the queue.

Per-key ordering is preserved structurally: every mutation of a key
reaches a replica through the same primary, hence through this FIFO
queue, and keys this shard owns as primary never appear in its own
queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.cluster.admission import AdmissionController
from repro.core.prism import Prism
from repro.faults.injector import kill_store_devices
from repro.sim.vthread import VThread

STATE_UP = "up"
STATE_DOWN = "down"
# Live-resharding lifecycle: a DRAINING shard is healthy but being
# decommissioned (serves reads and migration traffic, admits no new
# writes); a RETIRED shard has handed off every key and left the ring
# (its store is intact but the router never touches it again).
STATE_DRAINING = "draining"
STATE_RETIRED = "retired"

# (key, value-or-None-for-delete, source shard id, enqueued at)
ReplItem = Tuple[bytes, Optional[bytes], int, float]


class Shard:
    """A Prism instance serving one ring member."""

    def __init__(
        self,
        shard_id: int,
        store: Prism,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.shard_id = shard_id
        self.store = store
        self.state = STATE_UP
        self.admission = admission or AdmissionController(shard_id)
        self.repl_thread = VThread(
            -100 - shard_id,
            store.clock,
            name=f"repl-shard{shard_id}",
            background=True,
        )
        self.queue: Deque[ReplItem] = deque()
        self.repl_applied = 0
        self.repl_dropped = 0

    @property
    def up(self) -> bool:
        return self.state == STATE_UP

    @property
    def serving(self) -> bool:
        """May this shard serve reads?  Draining members still must —
        the dual-read window reads unmoved keys from the old owner."""
        return self.state == STATE_UP or self.state == STATE_DRAINING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard({self.shard_id}, {self.state}, queued={len(self.queue)})"

    # ------------------------------------------------------------------
    # decommissioning (live resharding)
    # ------------------------------------------------------------------
    def start_drain(self) -> None:
        self.state = STATE_DRAINING
        self.admission.start_drain()

    def retire(self) -> None:
        """Handoff complete: leave the serving set for good."""
        self.state = STATE_RETIRED
        self.admission.stop_drain()

    # ------------------------------------------------------------------
    # asynchronous replication
    # ------------------------------------------------------------------
    def enqueue(
        self, key: bytes, value: Optional[bytes], source: int, at: float
    ) -> None:
        """Queue one replicated mutation (``value=None`` is a delete)."""
        self.queue.append((key, value, source, at))

    def pump(self, upto: float) -> int:
        """Apply queued mutations whose turn starts at or before ``upto``.

        The replication thread serializes applications: each item
        starts no earlier than its enqueue time and no earlier than the
        previous item's completion.  Returns the number applied.
        """
        if not self.queue:
            return 0
        rt = self.repl_thread
        applied = 0
        while self.queue:
            key, value, _source, at = self.queue[0]
            start = rt.now if rt.now > at else at
            if start > upto:
                break
            self.queue.popleft()
            rt.now = start
            if value is None:
                self.store.delete(key, rt)
            else:
                self.store.put(key, value, rt)
            applied += 1
        self.repl_applied += applied
        return applied

    def drop_from(self, source: int) -> int:
        """Discard queued items from a dead source (unsent backlog)."""
        if not self.queue:
            return 0
        kept = deque(item for item in self.queue if item[2] != source)
        dropped = len(self.queue) - len(kept)
        self.queue = kept
        self.repl_dropped += dropped
        return dropped

    def drop_all(self) -> int:
        """This shard died: whatever it had not applied dies with it."""
        dropped = len(self.queue)
        self.queue.clear()
        self.repl_dropped += dropped
        return dropped

    # ------------------------------------------------------------------
    # death
    # ------------------------------------------------------------------
    def kill(self, at: float) -> None:
        """Whole-node failure: every device of the store dies at once."""
        kill_store_devices(self.store, at)
        self.state = STATE_DOWN
