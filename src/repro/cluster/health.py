"""Gray-failure detection: per-shard health scoring and circuit breakers.

Fail-stop failures announce themselves — a dead device raises, the
router fails the shard over.  *Gray* failures do not: a shard whose
device is latency-inflated keeps acknowledging every request, just
slowly, and nothing in the fail-stop machinery ever triggers.  This
module turns latency observations into the typed verdicts the router's
defenses (hedged reads, breaker-aware replica selection) act on:

* **scoring** — every routed read feeds an EWMA of the serving shard's
  latency (:class:`ShardHealth`); the smoothed score is the shard's
  health signal, robust to single-sample noise;
* **peer-relative outlier detection** — a shard is *gray* when its
  score exceeds ``gray_factor ×`` the median score of its peers.
  Comparing against peers rather than an absolute threshold makes the
  verdict self-calibrating: a cluster-wide slowdown (compaction storm,
  cold caches) is not a gray failure, one shard diverging from the
  rest is;
* **circuit breaking** — per-shard :class:`CircuitBreaker` with the
  classic closed → open → half-open state machine in virtual time.
  ``open_after`` consecutive gray verdicts open the breaker (reads
  steer to replicas); after ``reset_timeout`` virtual seconds the
  breaker half-opens and lets *probe* reads through; ``probe_successes``
  healthy probes close it, one gray or failed probe re-opens it.

Everything here is deterministic — scores and verdicts are pure
functions of the observed latencies and virtual timestamps; no wall
clock, no randomness — so seeded gray-failure runs are exactly
reproducible.  The monitor is only constructed when
``ClusterConfig.health`` is set; with it off the router never touches
this module and stays bit-identical to a build without it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.obs.metrics import EventLog, MetricsRegistry, NULL_REGISTRY

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass
class HealthConfig:
    """Knobs of gray-failure detection and defense.

    Attach one to :class:`~repro.cluster.router.ClusterConfig.health`
    to arm the whole subsystem; ``None`` (the default) keeps every
    hook disabled and the router bit-identical to the pre-health tree.
    """

    # -- scoring --
    ewma_alpha: float = 0.2  # weight of the newest sample
    min_samples: int = 16  # observations before a shard can be judged
    gray_factor: float = 3.0  # gray when score > factor × peer median
    # -- circuit breaker --
    enable_breaker: bool = True
    open_after: int = 4  # consecutive gray verdicts that open it
    reset_timeout: float = 2e-3  # virtual secs open before half-open
    probe_successes: int = 3  # healthy half-open probes that close it
    # -- hedged reads --
    enable_hedging: bool = True
    hedge_quantile: float = 0.95  # fire a hedge past this latency
    hedge_window: int = 128  # recent read latencies kept for the quantile
    hedge_min_delay: float = 10e-6  # floor (virtual seconds)
    # Cap relative to the median: under heavy pollution (a gray shard
    # feeding the window) the raw quantile chases the inflated tail and
    # hedges would never fire; min(Q(q), cap × median) keeps the delay
    # anchored to healthy-majority behaviour.
    hedge_median_cap: float = 3.0
    # -- per-op deadline budget (virtual seconds); None disables --
    op_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {self.min_samples}")
        if self.gray_factor <= 1.0:
            raise ValueError(f"gray_factor must be > 1: {self.gray_factor}")
        if self.open_after < 1:
            raise ValueError(f"open_after must be >= 1: {self.open_after}")
        if self.reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0: {self.reset_timeout}")
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1: {self.probe_successes}"
            )
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1): {self.hedge_quantile}"
            )
        if self.hedge_window < 2:
            raise ValueError(f"hedge_window must be >= 2: {self.hedge_window}")
        if self.hedge_min_delay < 0:
            raise ValueError(
                f"hedge_min_delay must be >= 0: {self.hedge_min_delay}"
            )
        if self.hedge_median_cap < 1.0:
            raise ValueError(
                f"hedge_median_cap must be >= 1: {self.hedge_median_cap}"
            )
        if self.op_deadline is not None and self.op_deadline <= 0:
            raise ValueError(f"op_deadline must be > 0: {self.op_deadline}")


class ShardHealth:
    """EWMA latency score of one shard."""

    __slots__ = ("shard_id", "score", "samples")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.score: float = 0.0
        self.samples = 0

    def record(self, latency: float, alpha: float) -> None:
        if self.samples == 0:
            self.score = latency
        else:
            self.score = alpha * latency + (1.0 - alpha) * self.score
        self.samples += 1


class CircuitBreaker:
    """Closed → open → half-open, driven by gray verdicts in virtual time."""

    __slots__ = (
        "shard_id", "config", "metrics", "events",
        "state", "gray_streak", "opened_at", "probes_ok",
    )

    def __init__(
        self,
        shard_id: int,
        config: HealthConfig,
        metrics: "MetricsRegistry" = NULL_REGISTRY,
        events: Optional[EventLog] = None,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.metrics = metrics
        self.events = events if events is not None else EventLog("breaker")
        self.state = STATE_CLOSED
        self.gray_streak = 0
        self.opened_at = 0.0
        self.probes_ok = 0

    def allow(self, at: float) -> bool:
        """May a request be routed to this shard at virtual time ``at``?

        Open breakers block; once ``reset_timeout`` has elapsed the
        breaker half-opens and requests flow again as probes.
        """
        if self.state == STATE_OPEN:
            if at - self.opened_at >= self.config.reset_timeout:
                self.state = STATE_HALF_OPEN
                self.probes_ok = 0
                self.events.emit(at, "breaker_half_open", shard=self.shard_id)
                return True
            return False
        return True

    def trip(self, at: float) -> None:
        """Open (or re-open, from half-open) the breaker."""
        reopen = self.state == STATE_HALF_OPEN
        self.state = STATE_OPEN
        self.opened_at = at
        self.gray_streak = 0
        self.probes_ok = 0
        self.metrics.counter("breaker.opened").inc()
        self.events.emit(
            at, "breaker_open", shard=self.shard_id, reopened=reopen
        )

    def _close(self, at: float) -> None:
        self.state = STATE_CLOSED
        self.gray_streak = 0
        self.probes_ok = 0
        self.metrics.counter("breaker.closed").inc()
        self.events.emit(at, "breaker_closed", shard=self.shard_id)

    def on_verdict(self, gray: bool, at: float) -> None:
        """Feed one gray/healthy verdict for a served request."""
        if self.state == STATE_HALF_OPEN:
            if gray:
                self.trip(at)  # failed probe: straight back to open
            else:
                self.probes_ok += 1
                if self.probes_ok >= self.config.probe_successes:
                    self._close(at)
            return
        if self.state == STATE_CLOSED:
            if gray:
                self.gray_streak += 1
                if self.gray_streak >= self.config.open_after:
                    self.trip(at)
            else:
                self.gray_streak = 0


class HealthMonitor:
    """Cluster-wide view: per-shard scores, breakers, hedge delay."""

    def __init__(
        self,
        num_shards: int,
        config: HealthConfig,
        metrics: "MetricsRegistry" = NULL_REGISTRY,
        events: Optional[EventLog] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.events = events if events is not None else EventLog("health")
        self.shards: Dict[int, ShardHealth] = {
            sid: ShardHealth(sid) for sid in range(num_shards)
        }
        self.breakers: Dict[int, CircuitBreaker] = {
            sid: CircuitBreaker(sid, config, metrics, self.events)
            for sid in range(num_shards)
        }
        # Pooled recent read latencies feeding the hedge-delay quantile.
        self._recent: Deque[float] = deque(maxlen=config.hedge_window)
        self._hedge_delay = float("inf")  # no hedging until warmed up
        self._since_refresh = 0
        # Shards whose observations are ignored while set — live
        # resharding exempts the migration source and target so
        # bulk-move latency cannot flip a healthy shard's breaker.
        self.exempt: Set[int] = set()

    # ------------------------------------------------------------------
    # the router swaps its registry per run; keep breakers in sync
    # ------------------------------------------------------------------
    def set_metrics(self, metrics: "MetricsRegistry") -> None:
        self.metrics = metrics
        for breaker in self.breakers.values():
            breaker.metrics = metrics

    # ------------------------------------------------------------------
    # membership (live resharding adds shards after construction)
    # ------------------------------------------------------------------
    def register(self, shard_id: int) -> None:
        """Start tracking a shard added after construction."""
        if shard_id in self.shards:
            return
        self.shards[shard_id] = ShardHealth(shard_id)
        self.breakers[shard_id] = CircuitBreaker(
            shard_id, self.config, self.metrics, self.events
        )

    def set_exempt(self, shard_id: int, exempt: bool) -> None:
        """Suspend (or resume) verdicts for one shard.

        While exempt, :meth:`record_read` and :meth:`record_failure`
        are no-ops for the shard: its EWMA freezes, its breaker takes
        no verdicts, and its latencies stay out of the pooled hedge
        window.  Migration traffic is real load, not sickness.
        """
        if exempt:
            self.exempt.add(shard_id)
        else:
            self.exempt.discard(shard_id)

    # ------------------------------------------------------------------
    # scoring and verdicts
    # ------------------------------------------------------------------
    def _peer_median(self, shard_id: int) -> Optional[float]:
        """Median EWMA score of the judged shard's warmed-up peers."""
        cfg = self.config
        scores: List[float] = [
            h.score
            for sid, h in self.shards.items()
            if sid != shard_id and h.samples >= cfg.min_samples
        ]
        if not scores:
            return None
        scores.sort()
        mid = len(scores) // 2
        if len(scores) % 2:
            return scores[mid]
        return 0.5 * (scores[mid - 1] + scores[mid])

    def _judge(self, shard_id: int, value: float) -> Optional[bool]:
        """Is ``value`` (a score or a single probe latency) gray?

        ``None`` when there is no basis for a verdict yet (the shard or
        its peers have not produced ``min_samples`` observations).
        """
        health = self.shards[shard_id]
        if health.samples < self.config.min_samples:
            return None
        median = self._peer_median(shard_id)
        if median is None or median <= 0.0:
            return None
        return value > self.config.gray_factor * median

    def record_read(self, shard_id: int, latency: float, at: float) -> None:
        """Feed one served read; updates scores, breaker, hedge window."""
        if self.exempt and shard_id in self.exempt:
            return
        cfg = self.config
        health = self.shards[shard_id]
        health.record(latency, cfg.ewma_alpha)
        self._recent.append(latency)
        self._since_refresh += 1
        if self._since_refresh >= 32:
            self._refresh_hedge_delay()
        if not cfg.enable_breaker:
            return
        breaker = self.breakers[shard_id]
        # Half-open probes are judged on the probe's own latency (the
        # EWMA is still poisoned by the gray period); closed-state
        # verdicts use the smoothed score for noise robustness.
        value = latency if breaker.state == STATE_HALF_OPEN else health.score
        verdict = self._judge(shard_id, value)
        if verdict is None:
            return
        if verdict and breaker.state == STATE_CLOSED and breaker.gray_streak == 0:
            self.metrics.counter("health.gray_verdicts").inc()
            self.events.emit(
                at,
                "shard_gray",
                shard=shard_id,
                score=health.score,
                peer_median=self._peer_median(shard_id),
            )
        breaker.on_verdict(verdict, at)

    def record_failure(self, shard_id: int, at: float) -> None:
        """A routed request to the shard raised: hard evidence it is
        unwell — counts as a gray verdict (and fails any probe)."""
        if self.exempt and shard_id in self.exempt:
            return
        if self.config.enable_breaker:
            self.breakers[shard_id].on_verdict(True, at)

    # ------------------------------------------------------------------
    # routing queries
    # ------------------------------------------------------------------
    def allow(self, shard_id: int, at: float) -> bool:
        if not self.config.enable_breaker:
            return True
        return self.breakers[shard_id].allow(at)

    def state(self, shard_id: int) -> str:
        return self.breakers[shard_id].state

    def is_gray(self, shard_id: int) -> bool:
        """Current verdict from the smoothed score (no side effects)."""
        return bool(self._judge(shard_id, self.shards[shard_id].score))

    # ------------------------------------------------------------------
    # hedge delay
    # ------------------------------------------------------------------
    def _refresh_hedge_delay(self) -> None:
        self._since_refresh = 0
        recent = self._recent
        if len(recent) < self.config.min_samples:
            self._hedge_delay = float("inf")
            return
        ordered = sorted(recent)
        n = len(ordered)
        q = ordered[min(n - 1, int(self.config.hedge_quantile * n))]
        median = ordered[n // 2]
        delay = min(q, self.config.hedge_median_cap * median)
        if delay < self.config.hedge_min_delay:
            delay = self.config.hedge_min_delay
        self._hedge_delay = delay

    def hedge_delay(self) -> float:
        """Virtual seconds a read may run before a hedge fires.

        ``inf`` until the window holds ``min_samples`` observations —
        no hedging off a cold distribution.
        """
        return self._hedge_delay

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            f"shard{sid}": {
                "score_us": h.score * 1e6,
                "samples": h.samples,
                "breaker": self.breakers[sid].state,
            }
            for sid, h in sorted(self.shards.items())
        }
