"""The cluster router: N Prism shards behind a consistent-hash ring.

:class:`PrismCluster` composes every subsystem built so far into a
horizontally scaled serving layer:

* **placement** — keys map to shards through a :class:`HashRing`
  (stable under membership change: only ranges owned by a failed shard
  re-map);
* **replication** — writes apply to the key's primary and replicate to
  ``replication_factor - 1`` further shards, synchronously, at quorum,
  or asynchronously (see :class:`repro.cluster.shard.Shard`);
* **failover** — a shard whose devices die (via the PR 2
  :class:`FaultInjector`, or explicitly with :meth:`kill_shard`) is
  marked down, the router promotes the next live owner on the ring,
  and a background re-replication pass (:meth:`rebuild`) restores the
  replication factor of every key the dead shard held — the
  cluster-level analogue of ``repair.rebuild_storage``;
* **admission control** — per-shard queue-depth caps and token-bucket
  rate limiting shed load with typed
  :class:`~repro.cluster.errors.ShardOverloadedError` instead of
  queueing unboundedly.

The cluster is store-shaped: it exposes ``put``/``get``/``scan``/
``delete``/``stats``/``flush`` plus the accounting attributes the
benchmark driver reads, so :func:`repro.bench.runner.run_workload`
drives it unchanged.  With one shard, replication factor 1, and no
faults, the router performs no admission checks, consumes no
randomness, and adds no virtual time — a run through it is
bit-identical to driving the underlying Prism directly.

Like the rest of the simulation, background effects (replication
pumping, re-replication) execute synchronously in *code* when
triggered but are timestamped on background virtual threads;
foreground operations feel them only through device-bandwidth
contention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cache.sketch import FrequencySketch
from repro.cluster.admission import KIND_READ, KIND_WRITE, AdmissionController
from repro.cluster.errors import (
    RebalanceInProgressError,
    ShardDrainingError,
    ShardUnavailableError,
)
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.rebalance import ACTION_ADD, ACTION_REMOVE, Migration
from repro.cluster.ring import HashRing
from repro.cluster.shard import STATE_DOWN, STATE_DRAINING, STATE_RETIRED, Shard
from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.faults.errors import (
    DegradedError,
    DeviceDeadError,
    DeviceError,
    NoHealthyStorageError,
)
from repro.faults.injector import FaultConfig, slow_store_devices
from repro.obs.metrics import EventLog, MetricsRegistry, merge_registries
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread

MODE_ASYNC = "async"
MODE_QUORUM = "quorum"
MODE_SYNC = "sync"

READ_PRIMARY = "primary"
READ_SPREAD = "spread"

# Default key-migration stream budget for live resharding, in bytes of
# value payload per virtual second.
DEFAULT_REBALANCE_BANDWIDTH = 8.0 * 1024 * 1024


@dataclass
class ClusterConfig:
    """Everything tunable about the serving layer (not the shards)."""

    num_shards: int = 2
    replication_factor: int = 1
    replication_mode: str = MODE_QUORUM  # "async" | "quorum" | "sync"
    read_policy: str = READ_PRIMARY  # "primary" | "spread"
    vnodes: int = 64
    ring_seed: int = 0
    # Admission control; None disables the corresponding mechanism.
    max_queue_depth: Optional[int] = None
    rate_limit_ops: Optional[float] = None  # tokens (ops) per virtual second
    rate_burst: float = 64.0
    # Hot-key defense (ISSUE 6), behind read_policy="spread": keys
    # whose recent read frequency (router-side TinyLFU sketch) reaches
    # this threshold round-robin across every replica; colder keys keep
    # reading their primary, preserving per-shard cache locality.  None
    # keeps the old spread behavior — round-robin every read.
    hot_key_threshold: Optional[int] = None
    # Re-replicate automatically when a shard fails.  Off, reads are
    # restricted to surviving static owners until rebuild() is called.
    auto_rebuild: bool = True
    # Gray-failure defense (ISSUE 7): latency health scoring, per-shard
    # circuit breakers, and hedged reads.  None (the default) keeps
    # every hook disabled — the router consumes no extra virtual time
    # or randomness and stays bit-identical to the pre-health tree.
    health: Optional[HealthConfig] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"need at least one shard: {self.num_shards}")
        if not 1 <= self.replication_factor <= self.num_shards:
            raise ValueError(
                f"replication factor must be in [1, {self.num_shards}]: "
                f"{self.replication_factor}"
            )
        if self.replication_mode not in (MODE_ASYNC, MODE_QUORUM, MODE_SYNC):
            raise ValueError(f"unknown replication mode: {self.replication_mode}")
        if self.read_policy not in (READ_PRIMARY, READ_SPREAD):
            raise ValueError(f"unknown read policy: {self.read_policy}")
        if self.hot_key_threshold is not None and self.hot_key_threshold < 1:
            raise ValueError(
                f"hot key threshold must be positive: {self.hot_key_threshold}"
            )

    @property
    def write_acks_required(self) -> int:
        """Copies that must be durable before a write acknowledges."""
        rf = self.replication_factor
        if self.replication_mode == MODE_SYNC:
            return rf
        if self.replication_mode == MODE_QUORUM:
            return rf // 2 + 1
        return 1  # async: primary only


def default_shard_factory(shard_id: int, clock: VirtualClock) -> Prism:
    """A modest store per shard, fault-injectable (zero rates — bit-
    identical to no injector) so whole-shard death works, with a
    shard-prefixed metrics registry so instruments never collide."""
    config = PrismConfig(faults=FaultConfig(seed=9000 + shard_id))
    return Prism(
        config,
        metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
        clock=clock,
    )


class _ShardOpError(Exception):
    """Internal: one shard failed mid-operation (carries which)."""

    def __init__(self, shard: Shard, cause: Exception) -> None:
        super().__init__(str(cause))
        self.shard = shard
        self.cause = cause


class PrismCluster:
    """Sharded, replicated Prism behind a consistent-hash router."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        shard_factory: Optional[Callable[[int, VirtualClock], Prism]] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        self.clock = VirtualClock()
        factory = shard_factory or default_shard_factory
        self._shard_factory = factory  # add_shard builds members with it
        self.shards: List[Shard] = [
            Shard(sid, factory(sid, self.clock), self._admission_for(sid))
            for sid in range(cfg.num_shards)
        ]
        for shard in self.shards:
            if shard.store.clock is not self.clock:
                raise ValueError(
                    f"shard {shard.shard_id} does not share the cluster clock; "
                    "build it with Prism(..., clock=clock)"
                )
        self.ring = HashRing(
            range(cfg.num_shards), vnodes=cfg.vnodes, seed=cfg.ring_seed
        )
        self.metrics = MetricsRegistry()
        self.events = EventLog("cluster")
        self._down: Set[int] = set()
        self._unrebuilt: Set[int] = set()
        # Live resharding: at most one membership change in flight.
        # Every hook on the hot paths is behind this None check, so a
        # run with no membership change stays byte-identical to the
        # pre-elasticity tree.
        self._migration: Optional[Migration] = None
        self._default_thread = VThread(0, self.clock, name="cluster-caller")
        self._spread_rr = itertools.count()
        self._async = cfg.replication_mode == MODE_ASYNC
        # Router-side hot-key detector (None when the defense is off —
        # the read path then costs one None check, keeping the
        # 1-shard/RF=1 bit-identity contract).
        self._hot_sketch: Optional[FrequencySketch] = None
        if cfg.hot_key_threshold is not None:
            self._hot_sketch = FrequencySketch(width=1024)
        # Gray-failure defense: health monitor plus one reusable
        # virtual thread for speculative (hedged) reads.  Both are None
        # with health off, so the undefended read path is untouched.
        self._health: Optional[HealthMonitor] = None
        self._hedge_thread: Optional[VThread] = None
        if cfg.health is not None:
            self._health = HealthMonitor(
                cfg.num_shards, cfg.health, self.metrics, self.events
            )
            self._hedge_thread = VThread(
                -60, self.clock, name="hedge-read", background=True
            )

    # ------------------------------------------------------------------
    # store-shaped surface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "PrismCluster"

    @property
    def bytes_put(self) -> int:
        return sum(s.store.bytes_put for s in self.shards)

    def ssd_bytes_written(self) -> int:
        return sum(s.store.ssd_bytes_written() for s in self.shards)

    def waf(self) -> float:
        put = self.bytes_put
        return self.ssd_bytes_written() / put if put else 0.0

    @property
    def gc_events(self) -> List[float]:
        times: List[float] = []
        for shard in self.shards:
            times.extend(shard.store.gc_events)
        times.sort()
        return times

    def __len__(self) -> int:
        # Replicated copies of a key count once.  Draining members
        # still hold authoritative (unmoved) keys; retired ones hold
        # only handed-off garbage and are excluded.
        counted: Set[bytes] = set()
        for shard in self.shards:
            if shard.serving:
                counted.update(key for key, _ in shard.store.index.items())
        return len(counted)

    def stats(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for shard in self.shards:
            for key, value in shard.store.stats().items():
                totals[key] = totals.get(key, 0.0) + value
        put = self.bytes_put
        totals["waf"] = self.ssd_bytes_written() / put if put else 0.0
        totals["cluster_shards"] = float(
            sum(1 for s in self.shards if s.state != STATE_RETIRED)
        )
        totals["cluster_shards_down"] = float(len(self._down))
        totals["cluster_shed"] = float(
            sum(s.admission.shed_queue + s.admission.shed_rate for s in self.shards)
        )
        totals["cluster_repl_applied"] = float(
            sum(s.repl_applied for s in self.shards)
        )
        totals["cluster_repl_dropped"] = float(
            sum(s.repl_dropped for s in self.shards)
        )
        totals["cluster_repl_queued"] = float(
            sum(len(s.queue) for s in self.shards)
        )
        return totals

    def merged_shard_metrics(self) -> MetricsRegistry:
        """One cluster-wide registry: per-shard prefixes stripped,
        histograms bucket-merged (cluster-wide p50/p99)."""
        real = [s.store.metrics for s in self.shards if s.store.metrics.enabled]
        return merge_registries(real)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    def _admission_for(self, shard_id: int) -> AdmissionController:
        cfg = self.config
        return AdmissionController(
            shard_id,
            max_queue_depth=cfg.max_queue_depth,
            rate=cfg.rate_limit_ops,
            burst=cfg.rate_burst,
        )

    @property
    def rebalancing(self) -> bool:
        return self._migration is not None

    def _pump_migration(self, at: float) -> Optional[Migration]:
        """Advance the migrator up to ``at``; returns the migration if
        it is still active afterwards (it may have just finished)."""
        mig = self._migration
        if mig is not None:
            mig.pump(at)
        return self._migration

    def _owner_ids(self, key: bytes) -> List[int]:
        return self.ring.preference_list(key, self.config.replication_factor)

    def _write_shards(
        self, key: bytes, exclude_draining: bool = False
    ) -> List[Shard]:
        """Live owners, primary first — where a write must land.

        Mid-migration, writes route to the key's *new* owners (the
        migrator marks such keys fresh so it never clobbers them with
        a stale copy).  ``exclude_draining`` is the retry posture after
        a :class:`ShardDrainingError`: an operator-drained shard is
        skipped and the ring walk promotes the next owner.
        """
        mig = self._migration
        exclude = self._down
        if exclude_draining:
            exclude = exclude | {
                s.shard_id for s in self.shards if s.state == STATE_DRAINING
            }
        if mig is not None:
            ids = mig.write_owners(key, exclude if exclude else None)
        elif not exclude:
            ids = self._owner_ids(key)
        else:
            ids = self.ring.preference_list(
                key, self.config.replication_factor, exclude=exclude
            )
        if not ids:
            raise ShardUnavailableError(key, self.ring.shards | self._down)
        return [self.shards[i] for i in ids]

    def _read_shards(self, key: bytes) -> List[Shard]:
        """Shards that authoritatively hold ``key``.

        With no failures these are the static owners.  While a failed
        shard's re-replication is still pending, only surviving static
        owners are trusted (a promoted ring successor may not have
        received the key yet); once every failure has been rebuilt the
        effective (exclusion-walk) owners all hold the data.
        """
        if not self._down:
            return [self.shards[i] for i in self._owner_ids(key)]
        static = self._owner_ids(key)
        if self._unrebuilt:
            survivors = [i for i in static if i not in self._down]
            if not survivors:
                raise ShardUnavailableError(key, static)
            return [self.shards[i] for i in survivors]
        live = self.ring.preference_list(
            key, self.config.replication_factor, exclude=self._down
        )
        if not live:
            raise ShardUnavailableError(key, static)
        return [self.shards[i] for i in live]

    def _pick_reader(self, key: bytes, candidates: Sequence[Shard]) -> Shard:
        if self.config.read_policy == READ_SPREAD and len(candidates) > 1:
            sketch = self._hot_sketch
            if sketch is None:
                # Classic spread: round-robin every read.
                return candidates[next(self._spread_rr) % len(candidates)]
            # Hot-key defense: replicated reads only for keys the
            # router has detected as hot; the cold tail keeps its
            # primary so per-shard read caches stay warm.
            sketch.add(key)
            if sketch.estimate(key) >= self.config.hot_key_threshold:
                self.metrics.counter("cluster.hot_spread_reads").inc()
                return candidates[next(self._spread_rr) % len(candidates)]
        return candidates[0]

    def _arm_deadline(self, thread: VThread) -> bool:
        """Give the op a deadline budget (virtual seconds) when the
        health config carries one.  Returns True when this call armed
        it (the caller must clear it when the op finishes)."""
        health = self._health
        if (
            health is None
            or health.config.op_deadline is None
            or thread.deadline is not None
        ):
            return False
        thread.deadline = thread.now + health.config.op_deadline
        return True

    def _admit(self, shard: Shard, at: float, kind: str = KIND_READ) -> None:
        try:
            shard.admission.admit(at, kind)
        except ShardDrainingError:
            # Not load shedding: the shard is leaving and the caller
            # retries the write at the key's new owner.
            self.metrics.counter("rebalance.drain_rejects").inc()
            raise
        except Exception:
            self.metrics.counter("cluster.shed").inc()
            raise

    @staticmethod
    def _permanent(exc: Exception) -> bool:
        """Failures that condemn the whole shard, not just one key."""
        return isinstance(exc, (DeviceDeadError, NoHealthyStorageError))

    def _guard(self, shard: Shard, fn: Callable[[], object]) -> object:
        """Run one shard-level operation, tagging failures with the shard."""
        try:
            return fn()
        except (DeviceError, DegradedError) as exc:
            raise _ShardOpError(shard, exc) from exc

    def _handle_failure(self, err: _ShardOpError, at: float) -> None:
        if self._permanent(err.cause) and err.shard.shard_id not in self._down:
            self.fail_shard(err.shard.shard_id, at)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        """Insert or update; durable on the required replica count when
        this returns (primary only under async replication)."""
        self._mutate(key, value, thread)

    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        """Remove a key cluster-wide. Returns the primary's verdict."""
        return bool(self._mutate(key, None, thread))

    def _mutate(
        self, key: bytes, value: Optional[bytes], thread: Optional[VThread]
    ) -> object:
        thread = self._thread(thread)
        if self._migration is not None:
            self._pump_migration(thread.now)
        armed = self._arm_deadline(thread)
        try:
            last_error: Optional[_ShardOpError] = None
            for _attempt in range(2):
                try:
                    return self._replicated_apply(key, value, thread)
                except ShardDrainingError:
                    # The primary is being decommissioned: retry once
                    # with draining members excluded so the ring walk
                    # promotes the key's next (new) owner.
                    return self._replicated_apply(
                        key, value, thread, exclude_draining=True
                    )
                except _ShardOpError as err:
                    last_error = err
                    self._handle_failure(err, thread.now)
                    if not self._permanent(err.cause):
                        # Transient escape: nothing will change on retry
                        # beyond the store's own retries; surface it.
                        break
            assert last_error is not None
            raise last_error.cause
        finally:
            if armed:
                thread.deadline = None

    def _replicated_apply(
        self,
        key: bytes,
        value: Optional[bytes],
        thread: VThread,
        exclude_draining: bool = False,
    ) -> object:
        owners = self._write_shards(key, exclude_draining=exclude_draining)
        primary, replicas = owners[0], owners[1:]
        self._admit(primary, thread.now, KIND_WRITE)
        if self._async:
            primary.pump(thread.now)
        result = self._guard(
            primary,
            (lambda: primary.store.put(key, value, thread))
            if value is not None
            else (lambda: primary.store.delete(key, thread)),
        )
        primary_end = thread.now
        if replicas:
            if self._async:
                for replica in replicas:
                    replica.enqueue(key, value, primary.shard_id, primary_end)
            else:
                # The primary coordinates: replica writes fan out in
                # parallel after its ack; the client resumes at the
                # k-th replica ack required by the mode.
                ends: List[float] = []
                for replica in replicas:
                    thread.now = primary_end
                    self._guard(
                        replica,
                        (lambda r=replica: r.store.put(key, value, thread))
                        if value is not None
                        else (lambda r=replica: r.store.delete(key, thread)),
                    )
                    ends.append(thread.now)
                # The mode's ack count is capped at the owners that
                # actually exist: when failures (or a drain) leave
                # fewer live owners than the replication factor, the
                # write acknowledges at every surviving copy rather
                # than waiting for replicas that cannot exist.
                need = min(self.config.write_acks_required, len(owners))
                if need > 1:
                    ends.sort()
                    thread.now = ends[need - 2]
                else:
                    thread.now = primary_end
        if self._migration is not None:
            # Acked mid-migration at the new owners: the target's copy
            # is now the newest — the migrator must not overwrite it.
            self._migration.note_write(key)
        primary.admission.complete(thread.now)
        return result

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Point lookup; returns None for missing keys."""
        thread = self._thread(thread)
        if self._migration is not None:
            if self._pump_migration(thread.now) is not None:
                return self._get_migrating(key, thread)
        if self._health is None:
            return self._get_plain(key, thread)
        armed = self._arm_deadline(thread)
        try:
            return self._get_defended(key, thread)
        finally:
            if armed:
                thread.deadline = None

    def _get_migrating(self, key: bytes, thread: VThread) -> Optional[bytes]:
        """The dual-read window: unmoved affected keys are *forwarded*
        to their old owner; moved/fresh and unaffected keys read from
        the new ring.  Migration reads bypass the health scorer and
        hedging entirely — breakers must not trip on (and hedges must
        not race) migration traffic.
        """
        mig = self._migration
        exclude = self._down if self._down else None
        ids, forwarded = mig.read_route(key, exclude)
        if not ids:
            raise ShardUnavailableError(key, self.ring.shards | self._down)
        if forwarded:
            self.metrics.counter("rebalance.forwarded_reads").inc()
        last_error: Optional[_ShardOpError] = None
        for sid in ids:
            shard = self.shards[sid]
            if not shard.serving:
                continue
            self._admit(shard, thread.now, KIND_READ)
            if self._async:
                shard.pump(thread.now)
            try:
                value = self._guard(shard, lambda: shard.store.get(key, thread))
            except _ShardOpError as err:
                last_error = err
                self._handle_failure(err, thread.now)
                if self._migration is None:
                    # The failure resolved the migration (abort or
                    # fast-forward) — re-route on the settled ring.
                    return self.get(key, thread)
                continue
            shard.admission.complete(thread.now)
            return value
        if last_error is not None:
            raise last_error.cause
        raise ShardUnavailableError(key, self.ring.shards | self._down)

    def _get_plain(self, key: bytes, thread: VThread) -> Optional[bytes]:
        """The undefended read path — byte-for-byte the pre-health one."""
        tried: Set[int] = set()
        last_error: Optional[_ShardOpError] = None
        for _attempt in range(1 + self.config.replication_factor):
            candidates = [
                s for s in self._read_shards(key) if s.shard_id not in tried
            ]
            if not candidates:
                break
            shard = self._pick_reader(key, candidates)
            tried.add(shard.shard_id)
            self._admit(shard, thread.now)
            if self._async:
                shard.pump(thread.now)
            try:
                value = self._guard(shard, lambda: shard.store.get(key, thread))
            except _ShardOpError as err:
                last_error = err
                self._handle_failure(err, thread.now)
                continue
            shard.admission.complete(thread.now)
            return value
        assert last_error is not None
        raise last_error.cause

    def _get_defended(self, key: bytes, thread: VThread) -> Optional[bytes]:
        """Health-aware read: breaker steering plus hedged reads.

        Candidate selection first drops shards whose breaker is open
        (falling back to the full candidate list if *every* breaker is
        open — steering must never make a readable key unreadable).
        After the primary read completes, if it overran the adaptive
        hedge delay, the read is hedged: a speculative read is modeled
        at the next healthy replica as if fired ``hedge_delay`` after
        the primary started, and the caller resumes at whichever
        completion came first.  Sequential simulation makes the hedge
        retroactive — the outcome (and the device bandwidth both reads
        consume) matches an implementation that truly raced them.
        """
        health = self._health
        tried: Set[int] = set()
        last_error: Optional[_ShardOpError] = None
        for _attempt in range(1 + self.config.replication_factor):
            candidates = [
                s for s in self._read_shards(key) if s.shard_id not in tried
            ]
            if not candidates:
                break
            allowed = [
                s for s in candidates if health.allow(s.shard_id, thread.now)
            ]
            shard = self._pick_reader(key, allowed or candidates)
            tried.add(shard.shard_id)
            self._admit(shard, thread.now)
            if self._async:
                shard.pump(thread.now)
            t0 = thread.now
            try:
                value = self._guard(shard, lambda: shard.store.get(key, thread))
            except _ShardOpError as err:
                last_error = err
                health.record_failure(shard.shard_id, thread.now)
                self._handle_failure(err, thread.now)
                continue
            t1 = thread.now
            health.record_read(shard.shard_id, t1 - t0, t1)
            if health.config.enable_hedging and t1 - t0 > health.hedge_delay():
                value = self._hedge(key, shard, value, t0, t1, thread)
            shard.admission.complete(thread.now)
            return value
        assert last_error is not None
        raise last_error.cause

    def _hedge(
        self,
        key: bytes,
        primary: Shard,
        primary_value: Optional[bytes],
        t0: float,
        t1: float,
        thread: VThread,
    ) -> Optional[bytes]:
        """Model the speculative read; returns the winning value and
        rewinds ``thread.now`` to the earlier completion."""
        health = self._health
        fired_at = t0 + health.hedge_delay()
        alt: Optional[Shard] = None
        for candidate in self._read_shards(key):
            if candidate is not primary and health.allow(
                candidate.shard_id, fired_at
            ):
                alt = candidate
                break
        if alt is None:
            return primary_value  # nowhere healthy to hedge to
        self.metrics.counter("hedge.fired").inc()
        ht = self._hedge_thread
        ht.now = fired_at
        if self._async:
            alt.pump(fired_at)
        try:
            alt_value = alt.store.get(key, ht)
        except (DeviceError, DegradedError):
            health.record_failure(alt.shard_id, ht.now)
            self.metrics.counter("hedge.wasted").inc()
            return primary_value
        t2 = ht.now
        health.record_read(alt.shard_id, t2 - fired_at, t2)
        # The hedge wins only when it finished first AND saw the key
        # (an async replica may not have received it yet — a faster
        # miss must not shadow the primary's hit).
        if t2 < t1 and not (alt_value is None and primary_value is not None):
            self.metrics.counter("hedge.won").inc()
            self.events.emit(
                t2,
                "hedge_won",
                shard=alt.shard_id,
                over=primary.shard_id,
                saved=t1 - t2,
            )
            thread.now = t2
            return alt_value
        self.metrics.counter("hedge.wasted").inc()
        return primary_value

    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Range scan across shards: hashing scatters ranges, so every
        live shard scans locally (in parallel virtual time) and the
        router merges, keeping each key's copy from its read primary."""
        thread = self._thread(thread)
        armed = self._arm_deadline(thread)
        try:
            return self._scan(start, count, thread)
        finally:
            if armed:
                thread.deadline = None

    def _read_primary(self, key: bytes) -> Optional[Shard]:
        """The shard whose copy of ``key`` is authoritative right now
        (migration-aware: the old owner inside the dual-read window)."""
        mig = self._migration
        if mig is not None:
            ids, _forwarded = mig.read_route(
                key, self._down if self._down else None
            )
            return self.shards[ids[0]] if ids else None
        return self._read_shards(key)[0]

    def _scan(
        self, start: bytes, count: int, thread: VThread
    ) -> List[Tuple[bytes, bytes]]:
        t0 = thread.now
        if self._migration is not None:
            self._pump_migration(t0)
        ends: List[float] = []
        merged: Dict[bytes, bytes] = {}
        # Draining members still serve scans — unmoved keys have no
        # other authoritative copy until the migrator hands them off.
        serving = [s for s in self.shards if s.serving]
        if not serving:
            raise ShardUnavailableError(start, self.ring.shards)
        for shard in serving:
            self._admit(shard, t0)
            if self._async:
                shard.pump(t0)
            thread.now = t0
            try:
                pairs = self._guard(
                    shard, lambda: shard.store.scan(start, count, thread)
                )
            except _ShardOpError as err:
                self._handle_failure(err, thread.now)
                continue
            ends.append(thread.now)
            shard.admission.complete(thread.now)
            for key, value in pairs:
                if self._read_primary(key) is shard:
                    merged[key] = value
        thread.now = max(ends) if ends else t0
        return [(key, merged[key]) for key in sorted(merged)[:count]]

    # ------------------------------------------------------------------
    # elasticity (live resharding)
    # ------------------------------------------------------------------
    def add_shard(
        self,
        at: Optional[float] = None,
        bandwidth: float = DEFAULT_REBALANCE_BANDWIDTH,
        shard_factory: Optional[Callable[[int, VirtualClock], Prism]] = None,
    ) -> int:
        """Scale out by one member, live: build the shard, plan the
        minimal key movement onto a ring with it added, and start the
        background migrator.  Returns the new shard id.  The workload
        keeps running throughout — reads of not-yet-moved keys forward
        to the old owners, writes route to the new owners.
        """
        if self._migration is not None:
            raise RebalanceInProgressError(repr(self._migration.snapshot()))
        at = self.clock.now if at is None else at
        if self._unrebuilt:
            # Membership change on top of an unhealed failure would mix
            # two rebalancing regimes; restore RF first.
            self.rebuild(at)
        sid = len(self.shards)
        factory = shard_factory or self._shard_factory
        store = factory(sid, self.clock)
        if store.clock is not self.clock:
            raise ValueError(
                f"shard {sid} does not share the cluster clock; "
                "build it with Prism(..., clock=clock)"
            )
        self.shards.append(Shard(sid, store, self._admission_for(sid)))
        if self._health is not None:
            self._health.register(sid)
        new_ring = self.ring.with_shard_added(sid)
        self._start_migration(ACTION_ADD, sid, new_ring, bandwidth, at)
        return sid

    def remove_shard(
        self,
        shard_id: int,
        at: Optional[float] = None,
        bandwidth: float = DEFAULT_REBALANCE_BANDWIDTH,
    ) -> None:
        """Scale in by one member, live: the shard drains (admission
        rejects new writes, reads keep serving), its keys stream to
        the surviving owners, and it retires at handoff.  Raises
        :class:`~repro.cluster.ring.LastShardError` for the last
        member and :class:`~repro.cluster.ring.UnknownShardError` for
        an id not on the ring (both typed, both before any state
        changes)."""
        if self._migration is not None:
            raise RebalanceInProgressError(repr(self._migration.snapshot()))
        at = self.clock.now if at is None else at
        new_ring = self.ring.with_shard_removed(shard_id)  # typed raises
        shard = self.shards[shard_id]
        if not shard.up:
            raise ValueError(
                f"cannot remove shard {shard_id}: state is {shard.state!r} "
                "(a failed shard is removed by rebuild, not by drain)"
            )
        if self._unrebuilt:
            self.rebuild(at)
        shard.start_drain()
        self.events.emit(at, "shard_draining", shard=shard_id)
        self._start_migration(ACTION_REMOVE, shard_id, new_ring, bandwidth, at)

    def _start_migration(
        self,
        action: str,
        shard_id: int,
        new_ring: HashRing,
        bandwidth: float,
        at: float,
    ) -> None:
        mig = Migration(self, action, shard_id, new_ring, bandwidth, at)
        mig.plan(self.config.replication_factor)
        self._migration = mig
        # Pre-touch every migration instrument so the run's metrics
        # JSON carries them (zero-valued) even when the window sees no
        # traffic of that sort.
        for name in (
            "rebalance.keys_moved",
            "rebalance.forwarded_reads",
            "rebalance.redirected_writes",
            "rebalance.drain_rejects",
            "rebalance.keys_lost",
            "rebalance.keys_retired",
        ):
            self.metrics.counter(name)
        self.metrics.gauge("rebalance.cutover_seconds")
        self.metrics.gauge("rebalance.duration_seconds")
        if self._health is not None:
            # Breakers must not trip on migration traffic: the member
            # being bulk-loaded (add) or drained (remove) is exempt
            # from health scoring until the migration resolves.
            self._health.set_exempt(shard_id, True)
        self.events.emit(
            at,
            "rebalance_started",
            action=action,
            shard=shard_id,
            keys=len(mig.moves),
            ranges=len(mig.range_total),
            bandwidth=bandwidth,
        )
        mig.pump(at)  # an empty plan resolves immediately

    def _end_migration(self, mig: Migration) -> None:
        """Called by the migration itself on finish or abort."""
        self._migration = None
        if self._health is not None:
            self._health.set_exempt(mig.shard_id, False)

    def finish_rebalance(self) -> None:
        """Drive any active migration to completion (drains the
        remaining copy stream at the bandwidth budget)."""
        mig = self._migration
        if mig is not None:
            mig.pump(float("inf"))

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int, at: Optional[float] = None) -> None:
        """Whole-node death: fail every device, then run failover."""
        at = self.clock.now if at is None else at
        self.shards[shard_id].kill(at)
        self.fail_shard(shard_id, at)

    def slow_shard(
        self,
        shard_id: int,
        at: Optional[float] = None,
        multiplier: float = 10.0,
        **kwargs,
    ) -> List[str]:
        """Gray-fail a shard: inflate every device's latency without
        any error — the shard keeps serving, just slowly.  Nothing in
        the fail-stop machinery reacts; only the health monitor (when
        armed) will notice.  Returns the inflated device names."""
        at = self.clock.now if at is None else at
        names = slow_store_devices(
            self.shards[shard_id].store, at, multiplier=multiplier, **kwargs
        )
        self.metrics.counter("cluster.gray_injected").inc()
        self.events.emit(
            at,
            "shard_gray_injected",
            shard=shard_id,
            multiplier=multiplier,
            devices=len(names),
        )
        return names

    def fail_shard(self, shard_id: int, at: Optional[float] = None) -> None:
        """Mark a shard down, drop its unsent replication backlog, and
        (with ``auto_rebuild``) restore every affected key's RF."""
        if shard_id in self._down:
            return
        at = self.clock.now if at is None else at
        shard = self.shards[shard_id]
        shard.state = STATE_DOWN
        self._down.add(shard_id)
        self._unrebuilt.add(shard_id)
        self.metrics.counter("cluster.failovers").inc()
        dropped = shard.drop_all()
        for other in self.shards:
            if other.shard_id == shard_id or not other.up:
                continue
            # Apply whatever the dead primary had already shipped...
            other.pump(at)
            # ...and lose what it had not.
            dropped += other.drop_from(shard_id)
        self.events.emit(
            at, "shard_down", shard=shard_id, repl_dropped=dropped
        )
        if dropped:
            self.metrics.counter("cluster.repl.dropped").inc(dropped)
        if self._migration is not None:
            # Resolve the membership change *before* re-replication so
            # the rebuild restores RF on one consistent ring: death of
            # the joining member aborts (routing reverts to the old
            # ring, migration-window writes resynced back), any other
            # death fast-forwards the handoff to completion.
            self._migration.on_shard_failed(shard_id, at)
        if self.config.auto_rebuild:
            self.rebuild(at)

    def rebuild(self, at: Optional[float] = None) -> Dict[str, float]:
        """Re-replication after failures: for every key a down shard
        owned, copy from a surviving static owner until each effective
        owner holds it.  Runs on a background virtual thread; duration
        lands in ``cluster.recovery_seconds``."""
        at = self.clock.now if at is None else at
        report = {"keys_copied": 0.0, "keys_lost": 0.0, "duration": 0.0}
        if not self._unrebuilt:
            return report
        rt = VThread(-50, self.clock, name="re-replicate", background=True)
        rt.now = at
        start = rt.now
        rf = self.config.replication_factor
        down = set(self._down)
        seen: Set[bytes] = set()
        for holder in self.shards:
            if not holder.up:
                continue
            for key, _idx in list(holder.store.index.items()):
                if key in seen:
                    continue
                seen.add(key)
                static = self.ring.preference_list(key, rf)
                if not any(sid in self._unrebuilt for sid in static):
                    continue  # placement untouched by the failures
                survivors = [sid for sid in static if sid not in down]
                # Prefer a surviving static owner (it saw every
                # post-failure write for the key); fall back to the
                # holder we enumerated from (e.g. a shard promoted
                # during an earlier failure).
                sources = survivors + (
                    [] if holder.shard_id in survivors else [holder.shard_id]
                )
                value: Optional[bytes] = None
                for sid in sources:
                    try:
                        value = self.shards[sid].store.get(key, rt)
                    except (DeviceError, DegradedError):
                        continue
                    if value is not None:
                        break
                if value is None:
                    report["keys_lost"] += 1
                    continue
                for sid in self.ring.preference_list(key, rf, exclude=down):
                    target = self.shards[sid]
                    if target.store.index.lookup(key, rt) is None:
                        target.store.put(key, value, rt)
                        report["keys_copied"] += 1
        # Keys only the dead shards held (possible at RF=1, or when an
        # async-replication backlog died with its primary) are gone for
        # good; their index metadata survives in memory, so we can at
        # least count them.
        for sid in self._unrebuilt:
            for key, _idx in self.shards[sid].store.index.items():
                if key not in seen:
                    seen.add(key)
                    report["keys_lost"] += 1
        self._unrebuilt.clear()
        report["duration"] = rt.now - start
        self.metrics.gauge("cluster.recovery_seconds").set(report["duration"])
        self.metrics.counter("cluster.rebuilds").inc()
        self.events.emit(
            start,
            "rebuild",
            keys_copied=report["keys_copied"],
            keys_lost=report["keys_lost"],
            duration=report["duration"],
        )
        return report

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self, thread: Optional[VThread] = None) -> None:
        """Drain background work — the migration stream and the
        replication queues — then flush every live store."""
        self.finish_rebalance()
        for shard in self.shards:
            if shard.serving and shard.queue:
                shard.pump(float("inf"))
        for shard in self.shards:
            if shard.serving:
                shard.store.flush()

    def close(self) -> None:
        self.flush()
        for shard in self.shards:
            if shard.serving:
                shard.store.close()
