"""Cluster workload execution: YCSB through the router, with an
acked-write ledger and optional mid-run shard failure.

:func:`run_cluster_workload` is the cluster-aware sibling of
:func:`repro.bench.runner.run_workload`.  It drives the same
:class:`OpStream` mixes through :class:`PrismCluster` with
``clients_per_shard`` virtual client threads per shard (client
parallelism scales with the cluster), and adds two things the
single-store driver has no use for:

* a :class:`WriteLedger` recording every *acknowledged* write as a
  virtual-time interval ``(start, end, value)``.  After the run the
  ledger audits the cluster: for each key the final value must be one
  a linearizable history could produce — the value of some acked write
  not wholly superseded by a later acked write, or of an *interrupted*
  write (one that raised mid-operation and may or may not have
  applied).  An acked write that disappears entirely is reported as
  ``lost_acked`` — the number the RF≥2 quorum acceptance gate requires
  to be zero;
* a :class:`KillPlan` that fails a chosen shard once a chosen fraction
  of operations has executed, exercising failover under load.

Ledger bookkeeping never reads or advances the virtual clock beyond
what the operations themselves do, so a ledgered run is bit-identical
to an unledgered one.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bench.runner import RunResult
from repro.cluster.errors import ClusterError, ShardOverloadedError
from repro.cluster.router import DEFAULT_REBALANCE_BANDWIDTH, PrismCluster
from repro.faults.errors import StorageError
from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import LatencyRecorder, Timeline
from repro.sim.vthread import VThread
from repro.storage.crash import SimulatedCrash
from repro.workloads.generator import OpStream
from repro.workloads.ycsb import WorkloadSpec

# An acked or interrupted write: (start, end, value-or-None-for-delete)
WriteRecord = Tuple[float, float, Optional[bytes]]


@dataclass
class KillPlan:
    """Fail ``shard_id`` after ``at_fraction`` of the ops have run."""

    shard_id: int
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(
                f"kill fraction must be in (0, 1): {self.at_fraction}"
            )


@dataclass
class GrayPlan:
    """Gray-fail ``shard_id`` mid-run: latency-inflate its devices
    (no errors) after ``at_fraction`` of the ops have run."""

    shard_id: int
    at_fraction: float = 0.25
    multiplier: float = 10.0
    add_latency: float = 0.0
    duration: float = float("inf")
    stall_interval: float = 0.0
    stall_duration: float = 0.0
    stall_penalty: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction < 1.0:
            raise ValueError(
                f"gray fraction must be in [0, 1): {self.at_fraction}"
            )


@dataclass
class RebalancePlan:
    """Change membership mid-run: grow by one shard (``action="add"``)
    or drain and retire ``shard_id`` (``action="remove"``) once
    ``at_fraction`` of the operations have executed.  The migration
    streams at ``bandwidth`` bytes of value payload per virtual second
    while the remaining operations keep running against the router."""

    action: str = "add"
    shard_id: Optional[int] = None  # required for "remove"
    at_fraction: float = 0.25
    bandwidth: float = DEFAULT_REBALANCE_BANDWIDTH

    def __post_init__(self) -> None:
        if self.action not in ("add", "remove"):
            raise ValueError(f"unknown rebalance action: {self.action}")
        if self.action == "remove" and self.shard_id is None:
            raise ValueError("remove needs the shard_id to drain")
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(
                f"rebalance fraction must be in (0, 1): {self.at_fraction}"
            )


class WriteLedger:
    """Every write the cluster acknowledged, as virtual-time intervals."""

    def __init__(self) -> None:
        self.acked: Dict[bytes, List[WriteRecord]] = {}
        self.interrupted: Dict[bytes, List[WriteRecord]] = {}

    def ack(self, key: bytes, start: float, end: float, value: Optional[bytes]) -> None:
        self.acked.setdefault(key, []).append((start, end, value))

    def interrupt(
        self, key: bytes, start: float, end: float, value: Optional[bytes]
    ) -> None:
        self.interrupted.setdefault(key, []).append((start, end, value))

    def legal_values(self, key: bytes) -> Set[Optional[bytes]]:
        """Values a linearizable final read of ``key`` may return.

        An acked write is *superseded* when another acked write began
        strictly after it ended — then its value must no longer win.
        Interrupted writes may or may not have applied, so any
        non-superseded interrupted value is also legal (as is the state
        with none of them applied).
        """
        acked = self.acked.get(key, [])
        legal: Set[Optional[bytes]] = {
            value
            for _start, end, value in acked
            if not any(s > end for s, _e, _v in acked)
        }
        for start, end, value in self.interrupted.get(key, []):
            if not any(s > end for s, _e, _v in acked):
                legal.add(value)
        if not acked:
            legal.add(None)  # never (successfully) written
        return legal

    def audit(self, cluster: PrismCluster, thread: VThread) -> Dict[str, object]:
        """Read every written key back and judge the final values."""
        lost: List[bytes] = []
        stale_or_wrong: List[bytes] = []
        checked = 0
        for key in sorted(set(self.acked) | set(self.interrupted)):
            checked += 1
            try:
                final = cluster.get(key, thread)
            except (ClusterError, StorageError):
                final = None
            legal = self.legal_values(key)
            if final in legal:
                continue
            if final is None:
                lost.append(key)
            else:
                stale_or_wrong.append(key)
        return {
            "keys_checked": checked,
            "lost_acked": len(lost),
            "wrong_value": len(stale_or_wrong),
            "lost_keys_sample": [k.decode("latin-1") for k in lost[:5]],
        }


@dataclass
class ClusterRunResult:
    """A normal :class:`RunResult` plus cluster-layer outcomes."""

    run: RunResult
    ops_ok: int = 0
    ops_shed: int = 0
    ops_failed: int = 0
    audit: Dict[str, object] = field(default_factory=dict)
    recovery_seconds: Optional[float] = None
    killed_shard: Optional[int] = None
    # Live-resharding outcomes (RebalancePlan runs only).
    rebalanced_shard: Optional[int] = None
    rebalance: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.run.throughput

    def summary(self) -> str:
        extra = ""
        if self.killed_shard is not None:
            extra = (
                f"  [killed shard {self.killed_shard}; "
                f"recovery {self.recovery_seconds or 0.0:.6f}s; "
                f"lost acked {self.audit.get('lost_acked', '?')}]"
            )
        return self.run.summary() + extra


def run_cluster_workload(
    cluster: PrismCluster,
    spec: WorkloadSpec,
    num_ops: int,
    num_keys: int,
    clients_per_shard: int = 4,
    value_size: int = 1024,
    theta: float = 0.99,
    seed: int = 2,
    kill_plan: Optional[KillPlan] = None,
    gray_plan: Optional[GrayPlan] = None,
    rebalance_plan: Optional[RebalancePlan] = None,
    timeline_bucket: Optional[float] = None,
    collect_metrics: bool = True,
    audit: bool = True,
) -> ClusterRunResult:
    """Execute ``num_ops`` of ``spec`` against a preloaded cluster.

    Client threads number ``clients_per_shard × num_shards`` and all
    drive the router (hashing spreads their keys over every shard).
    Failed operations (shard overloaded / unavailable mid-failover)
    are counted, not raised; the run continues, as real clients would.
    """
    if num_ops < 1:
        raise ValueError(f"need at least one op: {num_ops}")
    num_threads = clients_per_shard * len(cluster.shards)
    now = cluster.clock.now
    threads: List[VThread] = []
    for tid in range(num_threads):
        thread = VThread(tid, cluster.clock, name=f"client-{tid}")
        thread.now = now
        threads.append(thread)
    mixed_seed = zlib.crc32(f"{seed}:{spec.name}".encode())
    streams = [
        OpStream(spec, num_keys, value_size=value_size, theta=theta,
                 seed=mixed_seed + i)
        for i in range(num_threads)
    ]
    base = num_ops // num_threads
    extra = num_ops % num_threads
    iters = [
        streams[i].ops(base + (1 if i < extra else 0)) for i in range(num_threads)
    ]
    latency = LatencyRecorder("all")
    per_kind: Dict[str, LatencyRecorder] = {}
    timeline = Timeline(timeline_bucket) if timeline_bucket else None
    registry: Optional[MetricsRegistry] = None
    restore = None
    if collect_metrics:
        registry = MetricsRegistry()
        restore = cluster.metrics
        cluster.metrics = registry
        if cluster._health is not None:
            # The monitor's breakers hold their own registry reference;
            # keep them writing into this run's registry, and pre-touch
            # the defense counters so they appear in the metrics JSON
            # even when a healthy run never fires them.
            cluster._health.set_metrics(registry)
            for name in (
                "hedge.fired", "hedge.won", "hedge.wasted",
                "breaker.opened", "breaker.closed",
            ):
                registry.counter(name).inc(0)
        if gray_plan is not None:
            registry.counter("fault.slow_injections").inc(0)
    ledger = WriteLedger()
    kill_at = int(num_ops * kill_plan.at_fraction) if kill_plan else None
    killed = False
    gray_at = int(num_ops * gray_plan.at_fraction) if gray_plan else None
    grayed = False
    reb_at = int(num_ops * rebalance_plan.at_fraction) if rebalance_plan else None
    rebalanced = False
    reb_shard: Optional[int] = None
    # Phase-split read latencies for the elasticity gate: reads while
    # the migration is in flight vs. steady-state reads around it.
    reads_steady = LatencyRecorder("read_steady") if rebalance_plan else None
    reads_migrating = LatencyRecorder("read_migrating") if rebalance_plan else None
    slow_before = sum(
        s.store.injector.slow_injections
        for s in cluster.shards
        if s.store.injector is not None
    )
    ok = shed = failed = 0
    start = max(t.now for t in threads)
    ssd_before = cluster.ssd_bytes_written()
    put_before = cluster.bytes_put
    executed = 0
    # Per-op metric sinks resolved once: ``registry.histogram(...)`` is
    # a prefix concat + get-or-create lookup, and the per-kind label an
    # f-string — per-op that was a visible repro.obs CPU row.
    hist_all = registry.histogram("op.all") if registry is not None else None
    kind_hists: Dict[str, object] = {}
    heap = [(t.now, i) for i, t in enumerate(threads)]
    heapq.heapify(heap)
    live = set(range(num_threads))
    try:
        while live:
            _, i = heapq.heappop(heap)
            if i not in live:
                continue
            thread = threads[i]
            op = next(iters[i], None)
            if op is None:
                live.discard(i)
                continue
            if kill_at is not None and not killed and executed >= kill_at:
                killed = True
                cluster.kill_shard(kill_plan.shard_id, thread.now)
            if gray_at is not None and not grayed and executed >= gray_at:
                grayed = True
                cluster.slow_shard(
                    gray_plan.shard_id,
                    thread.now,
                    multiplier=gray_plan.multiplier,
                    add_latency=gray_plan.add_latency,
                    duration=gray_plan.duration,
                    stall_interval=gray_plan.stall_interval,
                    stall_duration=gray_plan.stall_duration,
                    stall_penalty=gray_plan.stall_penalty,
                )
            if reb_at is not None and not rebalanced and executed >= reb_at:
                rebalanced = True
                if rebalance_plan.action == "add":
                    reb_shard = cluster.add_shard(
                        at=thread.now, bandwidth=rebalance_plan.bandwidth
                    )
                else:
                    reb_shard = rebalance_plan.shard_id
                    cluster.remove_shard(
                        reb_shard,
                        at=thread.now,
                        bandwidth=rebalance_plan.bandwidth,
                    )
            before = thread.now
            migrating = cluster.rebalancing
            is_write = op.kind in ("update", "insert", "delete")
            value = op.value if op.kind in ("update", "insert") else None
            try:
                if op.kind == "read":
                    cluster.get(op.key, thread)
                elif op.kind in ("update", "insert"):
                    cluster.put(op.key, op.value, thread)
                elif op.kind == "scan":
                    cluster.scan(op.key, op.scan_length, thread)
                elif op.kind == "delete":
                    cluster.delete(op.key, thread)
                else:
                    raise ValueError(f"unknown op kind: {op.kind}")
            except ShardOverloadedError:
                shed += 1
                if is_write:
                    # Shed before any work: definitively not applied.
                    pass
            except (ClusterError, StorageError, SimulatedCrash):
                failed += 1
                if is_write:
                    ledger.interrupt(op.key, before, thread.now, value)
            else:
                ok += 1
                if is_write:
                    ledger.ack(op.key, before, thread.now, value)
            elapsed = thread.now - before
            latency.record(elapsed)
            kind_rec = per_kind.get(op.kind)
            if kind_rec is None:
                kind_rec = per_kind[op.kind] = LatencyRecorder(op.kind)
            kind_rec.record(elapsed)
            if reads_steady is not None and op.kind == "read":
                (reads_migrating if migrating else reads_steady).record(elapsed)
            if hist_all is not None:
                hist_all.record(elapsed)
                kind_hist = kind_hists.get(op.kind)
                if kind_hist is None:
                    kind_hist = kind_hists[op.kind] = registry.histogram(
                        f"op.{op.kind}"
                    )
                kind_hist.record(elapsed)
            if timeline is not None:
                timeline.record(thread.now - start)
            executed += 1
            heapq.heappush(heap, (thread.now, i))
        if rebalanced:
            # Drain the remaining copy stream (still at the bandwidth
            # budget) while the run's metrics registry is installed, so
            # the cutover/duration gauges land in this run's JSON.
            cluster.finish_rebalance()
    finally:
        if restore is not None:
            cluster.metrics = restore
            if cluster._health is not None:
                cluster._health.set_metrics(restore)
    duration = max(t.now for t in threads) - start
    new_put = cluster.bytes_put - put_before
    new_ssd = cluster.ssd_bytes_written() - ssd_before
    waf = (new_ssd / new_put) if new_put else 0.0
    recovery: Optional[float] = None
    rebuilds = cluster.events.of_kind("rebuild")
    if rebuilds:
        recovery = float(rebuilds[-1]["duration"])
    reb_report: Dict[str, object] = {}
    if rebalanced:
        done = [
            e for e in cluster.events.of_kind("rebalance_done")
            if e["at"] >= start
        ]
        aborted = [
            e for e in cluster.events.of_kind("rebalance_aborted")
            if e["at"] >= start
        ]
        reb_report = {
            "action": rebalance_plan.action,
            "shard": reb_shard,
            "completed": bool(done),
            "aborted": bool(aborted),
            "read_p99_steady": reads_steady.p99(),
            "read_p99_migrating": reads_migrating.p99(),
            "reads_migrating": len(reads_migrating.samples),
        }
        if done:
            reb_report["keys_moved"] = int(done[-1]["keys_moved"])
            reb_report["keys_lost"] = int(done[-1]["keys_lost"])
            reb_report["cutover_seconds"] = float(done[-1]["cutover_seconds"])
            reb_report["time_to_rebalance"] = float(done[-1]["duration"])
    audit_report: Dict[str, object] = {}
    if audit:
        # Converge first (drain async replication), then read back on a
        # fresh thread starting after every client finished.
        cluster.flush()
        audit_thread = VThread(num_threads, cluster.clock, name="auditor")
        audit_thread.now = start + duration
        audit_report = ledger.audit(cluster, audit_thread)
    metrics_dict: Optional[Dict[str, object]] = None
    if registry is not None:
        if gray_plan is not None:
            slow_after = sum(
                s.store.injector.slow_injections
                for s in cluster.shards
                if s.store.injector is not None
            )
            registry.counter("fault.slow_injections").inc(
                slow_after - slow_before
            )
        registry.gauge("ops").set(executed)
        registry.gauge("duration_s").set(duration)
        if duration > 0:
            registry.gauge("throughput_ops").set(executed / duration)
        registry.gauge("waf").set(waf)
        registry.gauge("ops_ok").set(ok)
        registry.gauge("ops_shed").set(shed)
        registry.gauge("ops_failed").set(failed)
        if recovery is not None:
            registry.gauge("cluster.recovery_seconds").set(recovery)
        if rebalanced:
            registry.gauge("rebalance.read_p99_steady_us").set(
                reads_steady.p99()
            )
            registry.gauge("rebalance.read_p99_migrating_us").set(
                reads_migrating.p99()
            )
            if "time_to_rebalance" in reb_report:
                registry.gauge("rebalance.time_to_rebalance_seconds").set(
                    float(reb_report["time_to_rebalance"])
                )
        for key, value in audit_report.items():
            if isinstance(value, (int, float)):
                registry.gauge(f"audit.{key}").set(float(value))
        for key, value in cluster.stats().items():
            registry.gauge(f"stats.{key}").set(value)
        for event in cluster.events:
            if event["at"] >= start:
                registry.events(str(event["kind"])).events.append(dict(event))
        metrics_dict = registry.to_dict()
    run = RunResult(
        store_name=cluster.name,
        workload=spec.name,
        ops=executed,
        duration=duration,
        latency=latency,
        per_kind=per_kind,
        waf=waf,
        stats=cluster.stats(),
        timeline=timeline,
        metrics=metrics_dict,
    )
    return ClusterRunResult(
        run=run,
        ops_ok=ok,
        ops_shed=shed,
        ops_failed=failed,
        audit=audit_report,
        recovery_seconds=recovery,
        killed_shard=kill_plan.shard_id if (kill_plan and killed) else None,
        rebalanced_shard=reb_shard,
        rebalance=reb_report,
    )
