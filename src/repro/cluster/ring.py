"""Consistent-hash ring: stable key→shard placement under membership
change.

Each shard contributes ``vnodes`` points on a 64-bit ring (hashed from
``shard_id#replica_index`` with :func:`hashlib.blake2b`, so placement is
deterministic across processes and immune to ``PYTHONHASHSEED``).  A
key maps to the first point clockwise from its own hash; a preference
list walks further clockwise collecting *distinct* shards for
replication.

The property that makes this a ring rather than ``hash(key) % N``:
adding or removing one shard only re-maps the key ranges adjacent to
that shard's points.  Keys whose owner is unaffected keep their owner —
verified by a Hypothesis property test in
``tests/cluster/test_ring.py``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_HASH_BYTES = 8  # 64-bit ring positions

RING_SPAN = 1 << 64  # positions live in [0, RING_SPAN)


class RingError(ValueError):
    """Base for ring membership failures (still a ValueError, so
    callers written against the old untyped raises keep working)."""


class UnknownShardError(RingError):
    """The shard id is not a member of the ring."""

    def __init__(self, shard_id: int, members: Iterable[int]) -> None:
        super().__init__(
            f"shard {shard_id} not on the ring (members: {sorted(members)})"
        )
        self.shard_id = shard_id


class DuplicateShardError(RingError):
    """The shard id is already a member of the ring."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"shard {shard_id} already on the ring")
        self.shard_id = shard_id


class LastShardError(RingError):
    """Removing this shard would leave the ring empty — every key
    would become unroutable, so the operation is refused up front."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(
            f"cannot remove shard {shard_id}: it is the last ring member"
        )
        self.shard_id = shard_id


def _hash64(data: bytes, seed: int) -> int:
    digest = hashlib.blake2b(
        data, digest_size=_HASH_BYTES, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(
        self,
        shard_ids: Iterable[int],
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"need at least one vnode per shard: {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[Tuple[int, int]] = []  # (position, shard_id)
        self._keys: List[int] = []  # positions only, for bisect
        self._shards: Set[int] = set()
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Set[int]:
        return set(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def _vnode_points(self, shard_id: int) -> List[Tuple[int, int]]:
        return [
            (_hash64(b"%d#%d" % (shard_id, v), self.seed), shard_id)
            for v in range(self.vnodes)
        ]

    def add_shard(self, shard_id: int) -> None:
        """Insert a shard's vnodes; only ranges they land in re-map."""
        if shard_id in self._shards:
            raise DuplicateShardError(shard_id)
        self._shards.add(shard_id)
        for point in self._vnode_points(shard_id):
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._keys.insert(idx, point[0])

    def remove_shard(self, shard_id: int) -> None:
        """Drop a shard's vnodes; only keys it owned re-map.

        Refuses (typed) to remove an id that is not a member, and to
        remove the last member — an empty ring cannot route anything,
        so the caller must know it is decommissioning the whole
        cluster rather than discover it one failed lookup at a time.
        """
        if shard_id not in self._shards:
            raise UnknownShardError(shard_id, self._shards)
        if len(self._shards) == 1:
            raise LastShardError(shard_id)
        self._shards.discard(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]
        self._keys = [pos for pos, _ in self._points]

    def with_shard_added(self, shard_id: int) -> "HashRing":
        """A fresh ring with ``shard_id`` added (this one untouched)."""
        return HashRing(
            sorted(self._shards | {shard_id}), vnodes=self.vnodes, seed=self.seed
        )

    def with_shard_removed(self, shard_id: int) -> "HashRing":
        """A fresh ring with ``shard_id`` removed (this one untouched)."""
        if shard_id not in self._shards:
            raise UnknownShardError(shard_id, self._shards)
        if len(self._shards) == 1:
            raise LastShardError(shard_id)
        return HashRing(
            sorted(self._shards - {shard_id}), vnodes=self.vnodes, seed=self.seed
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def key_position(self, key: bytes) -> int:
        return _hash64(key, self.seed)

    def lookup(self, key: bytes) -> int:
        """The shard owning ``key`` (its primary)."""
        if not self._points:
            raise ValueError("empty ring")
        idx = bisect.bisect_right(self._keys, self.key_position(key))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._points[idx][1]

    def preference_list(
        self,
        key: bytes,
        n: int,
        exclude: Optional[Set[int]] = None,
    ) -> List[int]:
        """The first ``n`` *distinct* shards clockwise from ``key``.

        Entry 0 is the primary; the rest are replica placements.
        ``exclude`` (e.g. the set of down shards) removes members from
        consideration — the walk continues past them, which is exactly
        how failover promotes the next live shard without perturbing
        the placement of keys owned by healthy shards.
        """
        if n < 1:
            raise ValueError(f"preference list needs n >= 1: {n}")
        if not self._points:
            raise ValueError("empty ring")
        banned = exclude or set()
        available = self._shards - banned
        want = min(n, len(available))
        result: List[int] = []
        if want == 0:
            return result
        start = bisect.bisect_right(self._keys, self.key_position(key))
        total = len(self._points)
        for step in range(total):
            shard = self._points[(start + step) % total][1]
            if shard in banned or shard in result:
                continue
            result.append(shard)
            if len(result) == want:
                break
        return result

    # ------------------------------------------------------------------
    # ranges (rebalancing works range-by-range, not key-by-key)
    # ------------------------------------------------------------------
    def owned_ranges(self, shard_id: int) -> List[Tuple[int, int]]:
        """The ring arcs whose keys ``shard_id`` owns as primary.

        Each arc is ``(lo, hi]``: positions strictly above ``lo`` up to
        and including ``hi``, where ``hi`` is one of the shard's vnode
        positions and ``lo`` is the preceding point on the ring (any
        member's).  An arc with ``lo >= hi`` wraps past the top of the
        ring.  The live-resharding migrator uses these arcs as its
        per-range cutover units.
        """
        if shard_id not in self._shards:
            raise UnknownShardError(shard_id, self._shards)
        ranges: List[Tuple[int, int]] = []
        total = len(self._points)
        for i, (pos, sid) in enumerate(self._points):
            if sid != shard_id:
                continue
            lo = self._points[i - 1][0] if total > 1 else pos
            ranges.append((lo, pos))
        return ranges

    @staticmethod
    def position_in_range(position: int, arc: Tuple[int, int]) -> bool:
        """Is a 64-bit ring position inside the ``(lo, hi]`` arc?"""
        lo, hi = arc
        if lo < hi:
            return lo < position <= hi
        # Wrapped arc (or a single-member ring, where lo == hi means
        # the whole ring): everything above lo or at-or-below hi.
        return position > lo or position <= hi

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def ownership_histogram(self, keys: Sequence[bytes]) -> Dict[int, int]:
        """How many of ``keys`` each shard owns (balance check)."""
        counts: Dict[int, int] = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
