"""Prism: a key-value store for modern heterogeneous storage devices.

A from-scratch Python reproduction of *Prism* (ASPLOS 2023) — the
store itself, the storage substrate it runs on (simulated NVM, flash
SSDs, io_uring-style async IO), the four baselines it is evaluated
against (KVell, MatrixKV, RocksDB-NVM, SLM-DB), the YCSB workload
generator, and a benchmark harness regenerating every figure and table
in the paper's evaluation.

Quickstart::

    from repro import Prism, PrismConfig

    store = Prism(PrismConfig())
    store.put(b"key", b"value")        # durable on return (NVM buffer)
    store.get(b"key")                  # DRAM cache / NVM / flash
    store.scan(b"k", 10)               # ordered range scan
    store.crash(); store.recover()     # power-failure semantics

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.config import PrismConfig
from repro.core.prism import Prism
from repro.core.recovery import RecoveryReport
from repro.sim.vthread import VThread

__version__ = "1.0.0"

__all__ = ["Prism", "PrismConfig", "RecoveryReport", "VThread", "__version__"]
