"""Prism: the paper's primary contribution.

Five tightly integrated components (Figure 2):

* Persistent Key Index on NVM (:mod:`repro.index.pactree`)
* Heterogeneous Storage Index Table on NVM (:mod:`repro.core.hsit`)
* Persistent Write Buffer on NVM (:mod:`repro.core.pwb`)
* Value Storage on flash SSDs (:mod:`repro.core.value_storage`)
* Scan-aware Value Cache on DRAM (:mod:`repro.core.svc`)

plus cross-media concurrency control and crash consistency
(:mod:`repro.core.hsit`, :mod:`repro.core.epoch`), opportunistic
thread combining (:mod:`repro.core.tcq`), and recovery
(:mod:`repro.core.recovery`).  :class:`repro.core.prism.Prism` is the
user-facing store.
"""

from repro.core.config import PrismConfig
from repro.core.prism import Prism

__all__ = ["Prism", "PrismConfig"]
