"""Forward-pointer encoding for HSIT entries.

An HSIT entry packs the value's location into 16 bytes (§4.5): one
8-byte word locates the durable copy (PWB or Value Storage — a value
lives in exactly one of them), the other holds the SVC cache pointer.
The location word is the unit of the atomic-CAS / flush-on-read
protocol, so all of its state fits in 64 bits:

    bit  63      dirty (written but possibly not yet flushed)
    bits 61..62  medium: 0 = null, 1 = PWB, 2 = Value Storage
    PWB:         bits 48..60 buffer id, bits 0..47 byte offset
    VS:          bits 53..60 storage id, bits 32..52 chunk id,
                 bits 0..31 record offset within the chunk
    null:        bits 0..47 free-list link (HSIT index + 1, 0 = end)
"""

from __future__ import annotations

from dataclasses import dataclass

DIRTY_BIT = 1 << 63
_MEDIUM_SHIFT = 61
_MEDIUM_MASK = 0b11 << _MEDIUM_SHIFT

MEDIUM_NULL = 0
MEDIUM_PWB = 1
MEDIUM_VS = 2

_OFFSET48 = (1 << 48) - 1
_PWB_ID_MAX = (1 << 13) - 1
_VS_ID_MAX = (1 << 8) - 1
_CHUNK_MAX = (1 << 21) - 1
_OFFSET32 = (1 << 32) - 1


@dataclass(frozen=True)
class Location:
    """Decoded forward pointer."""

    medium: int
    pwb_id: int = 0
    pwb_offset: int = 0
    vs_id: int = 0
    chunk_id: int = 0
    vs_offset: int = 0

    @property
    def is_null(self) -> bool:
        return self.medium == MEDIUM_NULL

    @property
    def in_pwb(self) -> bool:
        return self.medium == MEDIUM_PWB

    @property
    def in_vs(self) -> bool:
        return self.medium == MEDIUM_VS


NULL_LOCATION = Location(medium=MEDIUM_NULL)


def encode_pwb(pwb_id: int, offset: int) -> int:
    if not 0 <= pwb_id <= _PWB_ID_MAX:
        raise ValueError(f"pwb id out of range: {pwb_id}")
    if not 0 <= offset <= _OFFSET48:
        raise ValueError(f"pwb offset out of range: {offset}")
    return (MEDIUM_PWB << _MEDIUM_SHIFT) | (pwb_id << 48) | offset


def encode_vs(vs_id: int, chunk_id: int, offset: int) -> int:
    if not 0 <= vs_id <= _VS_ID_MAX:
        raise ValueError(f"vs id out of range: {vs_id}")
    if not 0 <= chunk_id <= _CHUNK_MAX:
        raise ValueError(f"chunk id out of range: {chunk_id}")
    if not 0 <= offset <= _OFFSET32:
        raise ValueError(f"vs offset out of range: {offset}")
    return (
        (MEDIUM_VS << _MEDIUM_SHIFT)
        | (vs_id << 53)
        | (chunk_id << 32)
        | offset
    )


def encode_free_link(next_idx_plus_one: int) -> int:
    if not 0 <= next_idx_plus_one <= _OFFSET48:
        raise ValueError(f"free link out of range: {next_idx_plus_one}")
    return next_idx_plus_one  # medium bits are zero: null


def set_dirty(word: int) -> int:
    return word | DIRTY_BIT


def clear_dirty(word: int) -> int:
    return word & ~DIRTY_BIT


def is_dirty(word: int) -> bool:
    return bool(word & DIRTY_BIT)


def medium_of(word: int) -> int:
    return (word & _MEDIUM_MASK) >> _MEDIUM_SHIFT


def free_link_of(word: int) -> int:
    """Free-list link stored in a null word (index + 1, 0 = end)."""
    return word & _OFFSET48


def decode(word: int) -> Location:
    """Decode a location word (ignoring the dirty bit)."""
    medium = medium_of(word)
    if medium == MEDIUM_NULL:
        return NULL_LOCATION
    if medium == MEDIUM_PWB:
        return Location(
            medium=MEDIUM_PWB,
            pwb_id=(word >> 48) & _PWB_ID_MAX,
            pwb_offset=word & _OFFSET48,
        )
    if medium == MEDIUM_VS:
        return Location(
            medium=MEDIUM_VS,
            vs_id=(word >> 53) & _VS_ID_MAX,
            chunk_id=(word >> 32) & _CHUNK_MAX,
            vs_offset=word & _OFFSET32,
        )
    raise ValueError(f"corrupt location word: {word:#018x}")


def encode(loc: Location) -> int:
    if loc.is_null:
        return 0
    if loc.in_pwb:
        return encode_pwb(loc.pwb_id, loc.pwb_offset)
    return encode_vs(loc.vs_id, loc.chunk_id, loc.vs_offset)
