"""Forward-pointer encoding for HSIT entries.

An HSIT entry packs the value's location into 16 bytes (§4.5): one
8-byte word locates the durable copy (PWB or Value Storage — a value
lives in exactly one of them), the other holds the SVC cache pointer.
The location word is the unit of the atomic-CAS / flush-on-read
protocol, so all of its state fits in 64 bits:

    bit  63      dirty (written but possibly not yet flushed)
    bits 61..62  medium: 0 = null, 1 = PWB, 2 = Value Storage
    PWB:         bits 48..60 buffer id, bits 0..47 byte offset
    VS:          bits 53..60 storage id, bits 32..52 chunk id,
                 bits 0..31 record offset within the chunk
    null:        bits 0..47 free-list link (HSIT index + 1, 0 = end)
"""

from __future__ import annotations

DIRTY_BIT = 1 << 63
_MEDIUM_SHIFT = 61
_MEDIUM_MASK = 0b11 << _MEDIUM_SHIFT

MEDIUM_NULL = 0
MEDIUM_PWB = 1
MEDIUM_VS = 2

_OFFSET48 = (1 << 48) - 1
_PWB_ID_MAX = (1 << 13) - 1
_VS_ID_MAX = (1 << 8) - 1
_CHUNK_MAX = (1 << 21) - 1
_OFFSET32 = (1 << 32) - 1

# Public word-level constants: hot paths (publish/supersede, the
# reclaimer's well-coupledness check) test and extract fields straight
# off the 64-bit word instead of decoding a Location per pointer.
MEDIUM_MASK = _MEDIUM_MASK
MEDIUM_PWB_BITS = MEDIUM_PWB << _MEDIUM_SHIFT
MEDIUM_VS_BITS = MEDIUM_VS << _MEDIUM_SHIFT
VS_ID_SHIFT = 53
VS_ID_MASK = _VS_ID_MAX
VS_CHUNK_SHIFT = 32
VS_CHUNK_MASK = _CHUNK_MAX
VS_OFFSET_MASK = _OFFSET32
PWB_ID_SHIFT = 48
PWB_ID_MASK = _PWB_ID_MAX
PWB_OFFSET_MASK = _OFFSET48


class Location:
    """Decoded forward pointer.

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    built on every pointer read/publish, and frozen-dataclass
    construction (an ``object.__setattr__`` per field) dominated the
    cost of :func:`decode`.  Instances are immutable by convention.
    """

    __slots__ = ("medium", "pwb_id", "pwb_offset", "vs_id", "chunk_id", "vs_offset")

    def __init__(
        self,
        medium: int,
        pwb_id: int = 0,
        pwb_offset: int = 0,
        vs_id: int = 0,
        chunk_id: int = 0,
        vs_offset: int = 0,
    ) -> None:
        self.medium = medium
        self.pwb_id = pwb_id
        self.pwb_offset = pwb_offset
        self.vs_id = vs_id
        self.chunk_id = chunk_id
        self.vs_offset = vs_offset

    @property
    def is_null(self) -> bool:
        return self.medium == MEDIUM_NULL

    @property
    def in_pwb(self) -> bool:
        return self.medium == MEDIUM_PWB

    @property
    def in_vs(self) -> bool:
        return self.medium == MEDIUM_VS

    def _key(self):
        return (
            self.medium,
            self.pwb_id,
            self.pwb_offset,
            self.vs_id,
            self.chunk_id,
            self.vs_offset,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Location):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Location(medium={self.medium}, pwb_id={self.pwb_id}, "
            f"pwb_offset={self.pwb_offset}, vs_id={self.vs_id}, "
            f"chunk_id={self.chunk_id}, vs_offset={self.vs_offset})"
        )


NULL_LOCATION = Location(medium=MEDIUM_NULL)


def encode_pwb(pwb_id: int, offset: int) -> int:
    if not 0 <= pwb_id <= _PWB_ID_MAX:
        raise ValueError(f"pwb id out of range: {pwb_id}")
    if not 0 <= offset <= _OFFSET48:
        raise ValueError(f"pwb offset out of range: {offset}")
    return (MEDIUM_PWB << _MEDIUM_SHIFT) | (pwb_id << 48) | offset


def encode_vs(vs_id: int, chunk_id: int, offset: int) -> int:
    if not 0 <= vs_id <= _VS_ID_MAX:
        raise ValueError(f"vs id out of range: {vs_id}")
    if not 0 <= chunk_id <= _CHUNK_MAX:
        raise ValueError(f"chunk id out of range: {chunk_id}")
    if not 0 <= offset <= _OFFSET32:
        raise ValueError(f"vs offset out of range: {offset}")
    return (
        (MEDIUM_VS << _MEDIUM_SHIFT)
        | (vs_id << 53)
        | (chunk_id << 32)
        | offset
    )


def encode_free_link(next_idx_plus_one: int) -> int:
    if not 0 <= next_idx_plus_one <= _OFFSET48:
        raise ValueError(f"free link out of range: {next_idx_plus_one}")
    return next_idx_plus_one  # medium bits are zero: null


def set_dirty(word: int) -> int:
    return word | DIRTY_BIT


def clear_dirty(word: int) -> int:
    return word & ~DIRTY_BIT


def is_dirty(word: int) -> bool:
    return bool(word & DIRTY_BIT)


def medium_of(word: int) -> int:
    return (word & _MEDIUM_MASK) >> _MEDIUM_SHIFT


def free_link_of(word: int) -> int:
    """Free-list link stored in a null word (index + 1, 0 = end)."""
    return word & _OFFSET48


def decode(word: int) -> Location:
    """Decode a location word (ignoring the dirty bit).

    Locations are built via ``__new__`` + direct slot stores: decode()
    runs on every pointer read and the ``__init__`` call (with its
    default-argument handling) was a measurable share of it.
    """
    medium = (word & _MEDIUM_MASK) >> _MEDIUM_SHIFT
    if medium == MEDIUM_NULL:
        return NULL_LOCATION
    loc = Location.__new__(Location)
    loc.medium = medium
    if medium == MEDIUM_PWB:
        loc.pwb_id = (word >> 48) & _PWB_ID_MAX
        loc.pwb_offset = word & _OFFSET48
        loc.vs_id = 0
        loc.chunk_id = 0
        loc.vs_offset = 0
        return loc
    if medium == MEDIUM_VS:
        loc.pwb_id = 0
        loc.pwb_offset = 0
        loc.vs_id = (word >> 53) & _VS_ID_MAX
        loc.chunk_id = (word >> 32) & _CHUNK_MAX
        loc.vs_offset = word & _OFFSET32
        return loc
    raise ValueError(f"corrupt location word: {word:#018x}")


def encode(loc: Location) -> int:
    if loc.is_null:
        return 0
    if loc.in_pwb:
        return encode_pwb(loc.pwb_id, loc.pwb_offset)
    return encode_vs(loc.vs_id, loc.chunk_id, loc.vs_offset)
