"""Cross-media recovery (§5.5).

After a power failure Prism owns no logs to replay.  Instead:

1. the Persistent Key Index recovers itself (rebuilds its volatile
   search layer from the durable data layer);
2. a full scan of the index yields the *reachable* HSIT entries; stray
   dirty bits are normalized and SVC words nullified (DRAM is gone);
3. for entries pointing into a PWB, well-coupledness (backward pointer
   == entry index) validates the record; live PWB records are flushed
   to Value Storage so the buffers restart empty;
4. for entries pointing into Value Storage, the validity bitmaps are
   reconstructed — the paper's reason the bitmaps may live in DRAM;
5. HSIT entries that are allocated but unreachable (a crash struck
   between entry allocation and index insertion) are returned to the
   free list.

The recovery virtual time charges the same device traffic the paper
describes: NVM scans of index + HSIT + live PWB data, plus record
headers read from SSD.  Like the paper, the scan parallelizes over
partitioned key ranges; we divide the single-threaded virtual time by
``recovery_threads``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core import pointers as ptr
from repro.core.containment import resolve_partial_publish
from repro.faults.errors import CorruptionError, DeviceError, NoHealthyStorageError
from repro.sim.vthread import VThread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.prism import Prism


@dataclass
class RecoveryReport:
    """What a recovery pass found and how long it (virtually) took."""

    recovered_keys: int
    pwb_values_flushed: int
    vs_records_validated: int
    leaked_entries_reclaimed: int
    ill_coupled_dropped: int
    duration: float  # virtual seconds
    # With checksums enabled the scan CRC-verifies every Value Storage
    # record; corrupt records are re-materialised from the mirror copy
    # (repaired) or left in place with a typed error on read (lost).
    corrupt_records_repaired: int = 0
    corrupt_records_lost: int = 0


def recover(prism: "Prism", recovery_threads: int = 4) -> RecoveryReport:
    """Bring a crashed Prism instance back to a consistent state."""
    if recovery_threads < 1:
        raise ValueError(f"recovery_threads must be >= 1: {recovery_threads}")
    rt = VThread(-9, prism.clock, name="recovery", background=True)
    start = rt.now = prism.clock.now

    # (1) the index restores its own invariants.
    prism.index.recover(rt)
    prism.crash_point.maybe_crash("recover.index_done")

    # (2)–(4) walk reachable entries.
    live_vs: Dict[int, Dict[Tuple[int, int], Tuple[int, int]]] = {
        vs.vs_id: {} for vs in prism.storages
    }
    pwb_flush: List[Tuple[int, int, bytes]] = []  # (hsit_idx, pwb_id, value)
    repair_flush: List[Tuple[int, bytes]] = []  # corrupt records healed from mirror
    corrupt_lost = 0
    reachable = set()
    dropped: List[bytes] = []
    vs_header_bytes = 0
    for key, idx in list(prism.index.items()):
        reachable.add(idx)
        prism.hsit.clear_dirty_bit(idx)
        word = prism.hsit.location_word(idx)
        loc = ptr.decode(ptr.clear_dirty(word))
        prism.hsit.clear_svc(idx)
        if loc.in_pwb:
            pwb = prism.pwbs[loc.pwb_id]
            back = pwb.read_backptr(loc.pwb_offset)
            if back != idx:
                dropped.append(key)
                continue
            _, value = pwb.read(loc.pwb_offset)
            pwb_flush.append((idx, loc.pwb_id, value))
        elif loc.in_vs:
            vs = prism.storages[loc.vs_id]
            base = loc.chunk_id * vs.chunk_size + loc.vs_offset
            header = vs.ssd.read_raw(base, vs.header_size)
            back = int.from_bytes(header[:8], "little")
            size = int.from_bytes(header[8:12], "little")
            vs_header_bytes += vs.header_size
            if vs.checksums:
                # CRC-verify the full record before trusting the
                # coupling check — a corrupt header would otherwise be
                # indistinguishable from an ill-coupled stale record.
                room = vs.chunk_size - loc.vs_offset - vs.header_size
                span = max(0, min(size, room))
                payload = vs.ssd.read_raw(base + vs.header_size, span)
                vs_header_bytes += span
                try:
                    back, _value = vs.parse_record(
                        header + payload,
                        where=(
                            f"vs{loc.vs_id} chunk {loc.chunk_id} "
                            f"off {loc.vs_offset}"
                        ),
                    )
                except CorruptionError:
                    prism.metrics.counter("corruption.detected").inc()
                    # Keep the slot (with the clamped stored size) so
                    # the pointer never dangles: reads of a lost record
                    # surface a typed error, never a silent absence.
                    live_vs[loc.vs_id][(loc.chunk_id, loc.vs_offset)] = (idx, span)
                    value = _mirror_copy(prism, vs, loc, idx)
                    if value is not None:
                        vs_header_bytes += vs.header_size + len(value)
                        repair_flush.append((idx, value))
                    else:
                        corrupt_lost += 1
                        prism.metrics.counter("corruption.unrecoverable").inc()
                    continue
            if back != idx:
                dropped.append(key)
                continue
            live_vs[loc.vs_id][(loc.chunk_id, loc.vs_offset)] = (idx, size)
        else:
            dropped.append(key)
    for key in dropped:
        prism.index.delete(key)
    prism.crash_point.maybe_crash("recover.walked")

    # Account the NVM scan: index leaves + one HSIT entry per key.
    scanned = prism.index.nvm_bytes() + 16 * len(reachable)
    prism.nvm.charge_read(rt, scanned)
    if vs_header_bytes:
        done = rt.now
        for vs in prism.storages:
            if prism._vs_dead(vs):
                # Record headers on a dead device were read through the
                # simulator's omniscient view; no real IO to charge.
                continue
            share = vs_header_bytes // max(len(prism.storages), 1)
            done = max(done, vs.ssd.read_async(rt.now, 0, max(share, 1)))
        rt.wait_until(done)

    # (4) rebuild validity bitmaps from the HSIT information.
    for vs in prism.storages:
        vs.rebuild_from(live_vs[vs.vs_id])

    # (3) flush live PWB records out and reset the buffers.  If the
    # flush cannot complete (devices failing during recovery), the
    # records — and the HSIT pointers naming them — stay in the PWBs,
    # which therefore must NOT be reset: the store comes up consistent,
    # just with non-empty write buffers.
    flushed = 0
    corrupt_repaired = 0
    flush_ok = True
    publish_items = [(idx, value) for idx, _, value in pwb_flush] + repair_flush
    if publish_items:
        nvm_reread = sum(len(value) for _, _, value in pwb_flush)
        if nvm_reread:
            prism.nvm.charge_read(rt, nvm_reread)
        try:
            vs = prism._pick_storage(rt.now)
            placements, done = prism._retrying_write(vs, rt.now, publish_items)
        except (DeviceError, NoHealthyStorageError):
            flush_ok = False
        if flush_ok:
            rt.wait_until(done)
            published = 0
            try:
                for i, ((idx, _value), (chunk_id, offset, _sz)) in enumerate(
                    zip(publish_items, placements)
                ):
                    old = prism.hsit.publish_location(
                        idx, ptr.encode_vs(vs.vs_id, chunk_id, offset), rt
                    )
                    if i >= len(pwb_flush):
                        # Repaired records replace a corrupt VS slot
                        # that the bitmap rebuild above re-created;
                        # retire the old copy.
                        prism._supersede(idx, old, rt)
                    published += 1
            except DeviceError:
                resolve_partial_publish(
                    prism.hsit,
                    vs,
                    [
                        (idx, placement, None, 0, 0)
                        for (idx, _v), placement in zip(publish_items, placements)
                    ],
                    published,
                )
                flush_ok = False
            else:
                flushed = len(pwb_flush)
                corrupt_repaired = len(repair_flush)
                for _ in repair_flush:
                    prism.metrics.counter("corruption.repaired").inc()
    if flush_ok:
        for pwb in prism.pwbs:
            pwb.reset()
    prism.crash_point.maybe_crash("recover.flushed")

    # (5) reclaim allocated-but-unreachable entries (crashed inserts).
    leaked = _reclaim_unreachable(prism, reachable, rt)
    prism.crash_point.maybe_crash("recover.done")

    single_thread_time = rt.now - start
    duration = single_thread_time / recovery_threads
    return RecoveryReport(
        recovered_keys=len(prism.index),
        pwb_values_flushed=flushed,
        vs_records_validated=sum(len(m) for m in live_vs.values()),
        leaked_entries_reclaimed=leaked,
        ill_coupled_dropped=len(dropped),
        duration=duration,
        corrupt_records_repaired=corrupt_repaired,
        corrupt_records_lost=corrupt_lost,
    )


def _mirror_copy(prism: "Prism", vs, loc: ptr.Location, idx: int):
    """An intact, well-coupled mirror copy of the record at ``loc``,
    or None when the mirror is absent, dead, rotted, or stale."""
    if vs.mirror is None:
        return None
    if prism.injector is not None and prism.injector.is_dead(vs.mirror.name):
        return None
    base = loc.chunk_id * vs.chunk_size + loc.vs_offset
    header = vs.mirror.read_raw(base, vs.header_size)
    size = int.from_bytes(header[8:12], "little")
    room = vs.chunk_size - loc.vs_offset - vs.header_size
    if not 0 <= size <= room:
        return None
    payload = vs.mirror.read_raw(base + vs.header_size, size)
    try:
        back, value = vs.parse_record(
            header + payload,
            where=f"mirror of vs{loc.vs_id} chunk {loc.chunk_id}",
            device=vs.mirror.name,
        )
    except CorruptionError:
        return None
    if back != idx:
        return None
    return value


def _reclaim_unreachable(prism: "Prism", reachable: set, rt: VThread) -> int:
    """Free HSIT entries no key maps to (and not already free)."""
    hsit = prism.hsit
    _, next_unused = hsit._header_words(None)
    free_set = set()
    head_plus1, _ = hsit._header_words(None)
    while head_plus1:
        free_set.add(head_plus1 - 1)
        head_plus1 = ptr.free_link_of(hsit.location_word(head_plus1 - 1))
    leaked = 0
    for idx in range(next_unused):
        if idx in reachable or idx in free_set:
            continue
        hsit.free(idx)
        leaked += 1
    prism.nvm.charge_read(rt, 16 * next_unused)
    return leaked
