"""Cross-media consistency auditor.

Walks a live Prism instance and verifies the invariants the design
relies on (§4.5, §5.4–5.5).  Used by the test suite after stress runs
and available to applications as a sanity check (``audit(store)``):

I1  every key in the index maps to an allocated HSIT entry, and no two
    keys share one;
I2  every reachable forward pointer is *well-coupled*: the record it
    names carries a backward pointer to that same HSIT entry;
I3  PWB pointers land inside the live window of the right buffer;
I4  Value Storage pointers name records whose validity bit is set, and
    every *valid* record is reachable (no immortal garbage);
I5  SVC words point at live cache entries for the same HSIT slot, and
    cache capacity accounting matches the sum of live entries;
I6  no forward pointer is left durably dirty outside an in-flight
    update;
I7  (with checksums enabled) every valid record's stored CRC32 matches
    its header + payload — on Value Storage and in the PWB live
    windows alike; silent corruption never hides from an audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple, TYPE_CHECKING

from repro.core import pointers as ptr
from repro.faults.errors import CorruptionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.prism import Prism


@dataclass
class AuditReport:
    """Outcome of one consistency audit."""

    keys_checked: int = 0
    pwb_values: int = 0
    vs_values: int = 0
    svc_values: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"AuditReport({status}: {self.keys_checked} keys, "
            f"{self.pwb_values} pwb / {self.vs_values} vs / "
            f"{self.svc_values} svc)"
        )


def audit(store: "Prism") -> AuditReport:
    """Check every cross-media invariant; returns an :class:`AuditReport`."""
    report = AuditReport()
    seen_entries: Set[int] = set()
    reachable_vs: Dict[int, Set[Tuple[int, int]]] = {
        vs.vs_id: set() for vs in store.storages
    }

    for key, idx in store.index.items():
        report.keys_checked += 1
        # I1: no aliasing
        if idx in seen_entries:
            report.fail(f"I1: HSIT entry {idx} reached by two keys (dup {key!r})")
            continue
        seen_entries.add(idx)

        word = store.hsit.location_word(idx)
        # I6: durably dirty pointers only exist mid-update; at audit
        # time (quiescent) none should remain.
        if ptr.is_dirty(word):
            report.fail(f"I6: entry {idx} ({key!r}) has a lingering dirty bit")
        loc = ptr.decode(ptr.clear_dirty(word))

        if loc.is_null:
            report.fail(f"I2: reachable entry {idx} ({key!r}) has a null pointer")
        elif loc.in_pwb:
            report.pwb_values += 1
            if loc.pwb_id >= len(store.pwbs):
                report.fail(f"I3: entry {idx} names unknown PWB {loc.pwb_id}")
                continue
            pwb = store.pwbs[loc.pwb_id]
            if not pwb.tail <= loc.pwb_offset < pwb.head:
                report.fail(
                    f"I3: entry {idx} ({key!r}) points outside PWB {loc.pwb_id}'s "
                    f"live window [{pwb.tail}, {pwb.head})"
                )
                continue
            back = pwb.read_backptr(loc.pwb_offset)
            if back != idx:
                report.fail(
                    f"I2: ill-coupled PWB record for {key!r}: backward "
                    f"pointer {back} != entry {idx}"
                )
        elif loc.in_vs:
            report.vs_values += 1
            vs = store.storages[loc.vs_id]
            try:
                valid = vs.is_valid(loc.chunk_id, loc.vs_offset)
            except Exception as exc:  # chunk/slot unknown
                report.fail(f"I4: entry {idx} ({key!r}) names a dead slot: {exc}")
                continue
            if not valid:
                report.fail(
                    f"I4: entry {idx} ({key!r}) points at an invalidated record "
                    f"(chunk {loc.chunk_id} off {loc.vs_offset})"
                )
                continue
            try:
                back, _value = vs.read_record_raw(loc.chunk_id, loc.vs_offset)
            except CorruptionError as exc:
                report.fail(f"I7: corrupt VS record for {key!r}: {exc}")
            else:
                if back != idx:
                    report.fail(
                        f"I2: ill-coupled VS record for {key!r}: backward "
                        f"pointer {back} != entry {idx}"
                    )
            reachable_vs[loc.vs_id].add((loc.chunk_id, loc.vs_offset))

        entry_id = store.hsit.read_svc(idx)
        if entry_id is not None:
            report.svc_values += 1
            entry = store.svc.entries.get(entry_id)
            if entry is None or entry.freed:
                report.fail(
                    f"I5: entry {idx} ({key!r}) has an SVC word naming a "
                    f"freed cache entry {entry_id}"
                )
            elif entry.hsit_idx != idx:
                report.fail(
                    f"I5: SVC entry {entry_id} belongs to HSIT {entry.hsit_idx}, "
                    f"not {idx}"
                )
            elif not loc.in_vs:
                report.fail(
                    f"I5: entry {idx} ({key!r}) is cached but its durable copy "
                    "is not in Value Storage (SVC caches only VS reads)"
                )

    # I4 (converse): every valid Value Storage record must be reachable.
    for vs in store.storages:
        for chunk_id, info in vs._chunks.items():
            for offset, slot in info.slots.items():
                if not slot.valid:
                    continue
                if (chunk_id, offset) not in reachable_vs[vs.vs_id]:
                    report.fail(
                        f"I4: valid record vs{vs.vs_id} chunk {chunk_id} "
                        f"off {offset} (entry {slot.hsit_idx}) is unreachable"
                    )
    # I7: every valid record still passes its checksum.  Reachable VS
    # records were already verified (and reported) during the key walk;
    # this sweep covers valid-but-unreachable slots and the PWB live
    # windows.
    if store.config.enable_checksums:
        for vs in store.storages:
            for chunk_id, info in vs._chunks.items():
                for offset, slot in info.slots.items():
                    if not slot.valid:
                        continue
                    if (chunk_id, offset) in reachable_vs[vs.vs_id]:
                        continue
                    try:
                        vs.read_record_raw(chunk_id, offset)
                    except CorruptionError as exc:
                        report.fail(
                            f"I7: corrupt VS record at vs{vs.vs_id} chunk "
                            f"{chunk_id} off {offset}: {exc}"
                        )
        for pwb in store.pwbs:
            for off in list(pwb._offsets):
                if not pwb.tail <= off < pwb.head:
                    continue
                try:
                    pwb.read(off)
                except CorruptionError as exc:
                    report.fail(
                        f"I7: corrupt PWB record at pwb {pwb.pwb_id} "
                        f"off {off}: {exc}"
                    )
    # I5 (capacity): accounted bytes match live entries.
    live_bytes = sum(
        e.charged for e in store.svc.entries.values() if not e.freed
    )
    if live_bytes != store.svc.used:
        report.fail(
            f"I5: SVC accounting drift: used={store.svc.used} but live "
            f"entries sum to {live_bytes}"
        )
    return report
