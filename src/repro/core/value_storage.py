"""Value Storage: log-structured chunked store on one SSD (§5.1–5.2).

Space is divided into fixed-size chunks (512 KB by default).  A chunk
holds records of ``[backward pointer (8B)][size (4B)][value]`` — the
per-value metadata that makes recovery possible without logs.  With
``checksums`` enabled the header grows a CRC32 over header + payload
(``[backptr (8B)][size (4B)][crc32 (4B)][value]``), verified on every
read path; a mismatch raises a typed
:class:`~repro.faults.errors.CorruptionError`.  Each
chunk keeps a validity bitmap *in DRAM* (rebuildable from the HSIT, so
it needs no persistence), tracking which records are up to date.

Writes happen only in chunk granularity, asynchronously, through the
io_uring ring — large sequential writes are what flash likes.
Allocating a free chunk is the *only* critical section of the write
path (§5.2), modelled by a short virtual lock.

Garbage collection (§5.2) is greedy: when free chunks run low, the
chunks with the least live data are merged into fresh chunks; validity
bitmaps — not index traversals — decide liveness.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.errors import CorruptionError
from repro.sim.resources import VLock
from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.crash import NULL_CRASH_POINT
from repro.storage.iouring import IORequest, IOUring
from repro.storage.ssd import SSDDevice

RECORD_HEADER = 12  # backward pointer (8B) + value size (4B)
# Checksummed framing adds a CRC32 over header + payload (ISSUE 3).
CHECKED_RECORD_HEADER = 16  # backward pointer (8B) + size (4B) + CRC32 (4B)
DEFAULT_CHUNK_SIZE = 512 * 1024


def record_crc(header12: bytes, value: bytes) -> int:
    """CRC32 over the logical header (backptr + size) and the payload."""
    return zlib.crc32(value, zlib.crc32(header12))


@dataclass
class _Slot:
    """DRAM bookkeeping for one record in a chunk."""

    hsit_idx: int
    offset: int
    size: int  # value bytes (not counting the header)
    valid: bool = True


@dataclass
class _ChunkInfo:
    """DRAM-side chunk state, including the validity bitmap."""

    slots: Dict[int, _Slot] = field(default_factory=dict)  # offset -> slot
    live_records: int = 0
    live_bytes: int = 0
    write_head: int = 0  # next free byte within the chunk


class ValueStorage:
    """One log-structured value store per SSD."""

    # Crash-exploration hook; the owning store swaps in its own point.
    crash_point = NULL_CRASH_POINT

    def __init__(
        self,
        vs_id: int,
        ssd: SSDDevice,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        queue_depth: int = 64,
        checksums: bool = False,
        mirror: Optional[SSDDevice] = None,
    ) -> None:
        if chunk_size < 4096:
            raise ValueError(f"chunk size too small: {chunk_size}")
        if mirror is not None and mirror.capacity < ssd.capacity:
            raise ValueError(
                f"mirror {mirror.name} smaller than primary {ssd.name}"
            )
        self.vs_id = vs_id
        self.ssd = ssd
        self.chunk_size = chunk_size
        self.checksums = checksums
        self.header_size = CHECKED_RECORD_HEADER if checksums else RECORD_HEADER
        # Optional chunk-level redundancy: every chunk write is
        # duplicated onto a different SSD; the repair layer reads the
        # mirror copy when the primary record fails its checksum or the
        # primary device dies.  Off (None) by default.
        self.mirror = mirror
        self.mirror_write_failures = 0
        self.ring = IOUring(ssd, queue_depth)
        self.num_chunks = ssd.capacity // chunk_size
        self._free: deque = deque(range(self.num_chunks))
        self._chunks: Dict[int, _ChunkInfo] = {}
        self._alloc_lock = VLock(name=f"vs{vs_id}-chunk-alloc")
        self._open_sync: Dict[int, int] = {}  # tid -> open chunk (ablation)
        self.chunk_writes = 0
        self.gc_runs = 0
        self.gc_moved_bytes = 0

    # ------------------------------------------------------------------
    # space
    # ------------------------------------------------------------------
    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def used_chunks(self) -> int:
        return len(self._chunks)

    def free_fraction(self) -> float:
        return self.free_chunks / self.num_chunks

    def used_bytes(self) -> int:
        return self.used_chunks * self.chunk_size

    def _allocate_chunk(self, thread: Optional[VThread]) -> int:
        """The only critical section of the write path (§5.2)."""
        if thread is not None:
            self._alloc_lock.acquire(thread)
        try:
            if thread is not None:
                thread.spend(50e-9)
            if not self._free:
                raise StorageError(f"vs{self.vs_id}: no free chunks")
            chunk_id = self._free.popleft()
            self._chunks[chunk_id] = _ChunkInfo()
            return chunk_id
        finally:
            if thread is not None:
                self._alloc_lock.release(thread)

    def record_bytes(self, value_len: int) -> int:
        return self.header_size + value_len

    def chunk_payload_capacity(self) -> int:
        return self.chunk_size

    def _frame(self, hsit_idx: int, value: bytes) -> bytes:
        """Build one on-media record: header (+ optional CRC) + value."""
        header = hsit_idx.to_bytes(8, "little") + len(value).to_bytes(4, "little")
        if not self.checksums:
            return header + value
        return header + record_crc(header, value).to_bytes(4, "little") + value

    def _mirror_write(self, at: float, offset: int, data: bytes) -> float:
        """Best-effort duplicate of a chunk write onto the mirror SSD.

        A failing mirror never blocks the primary write path — the
        record merely loses its redundant copy (counted).
        """
        assert self.mirror is not None
        try:
            return self.mirror.write_async(at, offset, data)
        except StorageError:
            self.mirror_write_failures += 1
            return at

    # ------------------------------------------------------------------
    # writes (always whole chunks, always async)
    # ------------------------------------------------------------------
    def write_records(
        self,
        at: float,
        records: Sequence[Tuple[int, bytes]],
        thread: Optional[VThread] = None,
    ) -> Tuple[List[Tuple[int, int, int]], float]:
        """Write (hsit_idx, value) records, packed into chunks.

        Starts at virtual time ``at`` (or the thread's clock) and
        returns ``(placements, done_time)`` where each placement is
        ``(chunk_id, offset, size)`` in record order.  The caller — a
        background reclaimer or the GC — updates HSIT forward pointers
        only after ``done_time``.
        """
        if thread is not None:
            at = max(at, thread.now)
        placements: List[Tuple[int, int, int]] = []
        done = at
        pending: List[Tuple[int, bytearray, List[Tuple[int, int, int]]]] = []
        chunk_id: Optional[int] = None
        buffer = bytearray()
        chunk_placements: List[Tuple[int, int, int]] = []

        def _seal() -> None:
            nonlocal chunk_id, buffer, chunk_placements
            if chunk_id is None:
                return
            pending.append((chunk_id, buffer, chunk_placements))
            chunk_id, buffer, chunk_placements = None, bytearray(), []

        for hsit_idx, value in records:
            need = self.record_bytes(len(value))
            if need > self.chunk_size:
                raise StorageError(
                    f"value of {len(value)}B exceeds chunk size {self.chunk_size}"
                )
            if chunk_id is None or len(buffer) + need > self.chunk_size:
                _seal()
                chunk_id = self._allocate_chunk(thread)
            offset = len(buffer)
            buffer += self._frame(hsit_idx, value)
            info = self._chunks[chunk_id]
            info.slots[offset] = _Slot(hsit_idx, offset, len(value))
            info.live_records += 1
            info.live_bytes += len(value)
            info.write_head = offset + need
            placement = (chunk_id, offset, len(value))
            chunk_placements.append(placement)
            placements.append(placement)
        _seal()

        self.crash_point.maybe_crash("vs.write.pre")
        try:
            for cid, buf, _ in pending:
                req = IORequest("write", cid * self.chunk_size, len(buf), data=bytes(buf))
                self.ring.submit(at, [req])
                done = max(done, req.completion)
                self.chunk_writes += 1
                if self.mirror is not None:
                    done = max(
                        done,
                        self._mirror_write(at, cid * self.chunk_size, bytes(buf)),
                    )
        except StorageError:
            # Failure atomicity: no HSIT entry will ever point at these
            # chunks (the caller aborts), so leaving their slots marked
            # valid would fabricate valid-but-unreachable records.
            # Release every chunk this call allocated — data already
            # durable in earlier chunks of the batch is orphaned log
            # garbage, which is exactly what reusing the chunk erases.
            for cid, _, _ in pending:
                if cid in self._chunks:
                    del self._chunks[cid]
                    self._free.append(cid)
            raise
        self.crash_point.maybe_crash("vs.write.done")
        return placements, done

    def append_record_sync(
        self, thread: Optional[VThread], hsit_idx: int, value: bytes
    ) -> Tuple[int, int]:
        """Durably write ONE record, blocking the caller (no-PWB ablation).

        Models a store without a write buffer: every write pays SSD
        latency in the critical path and the IO is padded to 4 KB
        pages.  Returns (chunk_id, offset).
        """
        need = self.record_bytes(len(value))
        tid = thread.tid if thread is not None else 0
        chunk_id = self._open_sync.get(tid)
        info = self._chunks.get(chunk_id) if chunk_id is not None else None
        if info is None or info.write_head + need > self.chunk_size:
            chunk_id = self._allocate_chunk(thread)
            info = self._chunks[chunk_id]
            self._open_sync[tid] = chunk_id
        offset = info.write_head
        record = self._frame(hsit_idx, value)
        io_size = min(-(-need // 4096) * 4096, self.chunk_size - offset)
        req = IORequest(
            "write",
            chunk_id * self.chunk_size + offset,
            io_size,
            data=record + b"\0" * (io_size - need),
        )
        at = thread.now if thread is not None else 0.0
        done = self.ring.submit_one(at, req)
        if self.mirror is not None:
            self._mirror_write(at, chunk_id * self.chunk_size + offset, record)
        if thread is not None:
            thread.wait_until(done)
        info.slots[offset] = _Slot(hsit_idx, offset, len(value))
        info.live_records += 1
        info.live_bytes += len(value)
        info.write_head = offset + need
        return chunk_id, offset

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def record_request(self, chunk_id: int, offset: int) -> IORequest:
        """Build the read request covering one record.

        The record size comes from the DRAM-side slot metadata (the
        same structure that backs the validity bitmap).
        """
        slot = self._slot(chunk_id, offset)
        return IORequest(
            "read",
            chunk_id * self.chunk_size + offset,
            self.header_size + slot.size,
            context=(chunk_id, offset),
        )

    def slot_size(self, chunk_id: int, offset: int) -> int:
        return self._slot(chunk_id, offset).size

    def parse_record(
        self, raw: bytes, where: str = "", device: str = ""
    ) -> Tuple[int, bytes]:
        """Split a raw record into (backward pointer, value).

        With checksums enabled the stored CRC32 is verified over header
        + payload; a mismatch raises :class:`CorruptionError` naming
        ``device`` (defaults to the primary SSD) and ``where``.
        """
        hsit_idx = int.from_bytes(raw[:8], "little")
        size = int.from_bytes(raw[8:12], "little")
        if not self.checksums:
            return hsit_idx, raw[12 : 12 + size]
        stored = int.from_bytes(raw[12:16], "little")
        value = raw[16 : 16 + size]
        if len(value) != size or record_crc(raw[:12], value) != stored:
            raise CorruptionError(
                device or self.ssd.name, where or f"vs{self.vs_id} record"
            )
        return hsit_idx, value

    def read_record_raw(self, chunk_id: int, offset: int) -> Tuple[int, bytes]:
        """Untimed record read (recovery, GC, tests); checksum-verified."""
        slot = self._slot(chunk_id, offset)
        raw = self.ssd.read_raw(
            chunk_id * self.chunk_size + offset, self.header_size + slot.size
        )
        return self.parse_record(
            raw, where=f"vs{self.vs_id} chunk {chunk_id} off {offset}"
        )

    def read_record_mirror(self, chunk_id: int, offset: int) -> Tuple[int, bytes]:
        """Untimed record read from the mirror copy; checksum-verified."""
        if self.mirror is None:
            raise StorageError(f"vs{self.vs_id}: no mirror configured")
        slot = self._slot(chunk_id, offset)
        raw = self.mirror.read_raw(
            chunk_id * self.chunk_size + offset, self.header_size + slot.size
        )
        return self.parse_record(
            raw,
            where=f"mirror of vs{self.vs_id} chunk {chunk_id} off {offset}",
            device=self.mirror.name,
        )

    # ------------------------------------------------------------------
    # validity bitmap
    # ------------------------------------------------------------------
    def _slot(self, chunk_id: int, offset: int) -> _Slot:
        info = self._chunks.get(chunk_id)
        if info is None:
            raise StorageError(f"vs{self.vs_id}: chunk {chunk_id} not in use")
        slot = info.slots.get(offset)
        if slot is None:
            raise StorageError(
                f"vs{self.vs_id}: no record at chunk {chunk_id} offset {offset}"
            )
        return slot

    def is_valid(self, chunk_id: int, offset: int) -> bool:
        return self._slot(chunk_id, offset).valid

    def invalidate(self, chunk_id: int, offset: int) -> None:
        """Clear a record's validity bit (its value moved or died)."""
        info = self._chunks.get(chunk_id)
        if info is None:
            return  # chunk already reclaimed
        slot = info.slots.get(offset)
        if slot is None or not slot.valid:
            return
        slot.valid = False
        info.live_records -= 1
        info.live_bytes -= slot.size
        if info.live_records == 0:
            self._release_chunk(chunk_id)

    def _release_chunk(self, chunk_id: int) -> None:
        del self._chunks[chunk_id]
        self._free.append(chunk_id)

    # ------------------------------------------------------------------
    # garbage collection (greedy, §5.2)
    # ------------------------------------------------------------------
    def gc_victims(self, count: int) -> List[int]:
        """Chunks with the least live data, worst first."""
        sealed = [
            (info.live_bytes, cid)
            for cid, info in self._chunks.items()
        ]
        sealed.sort()
        return [cid for _, cid in sealed[:count]]

    def live_records_of(self, chunk_id: int) -> List[_Slot]:
        info = self._chunks.get(chunk_id)
        if info is None:
            return []
        return [slot for slot in info.slots.values() if slot.valid]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def rebuild_from(self, live: Dict[Tuple[int, int], Tuple[int, int]]) -> None:
        """Reconstruct chunk state and validity bitmaps after a crash.

        ``live`` maps (chunk_id, offset) -> (hsit_idx, size) for every
        record the HSIT proved reachable.  Everything else is garbage;
        untouched chunks return to the free list.
        """
        self._chunks.clear()
        self._free = deque(range(self.num_chunks))
        by_chunk: Dict[int, List[Tuple[int, int, int]]] = {}
        for (chunk_id, offset), (hsit_idx, size) in live.items():
            by_chunk.setdefault(chunk_id, []).append((offset, hsit_idx, size))
        remaining = deque(cid for cid in self._free if cid not in by_chunk)
        for chunk_id, slots in by_chunk.items():
            info = _ChunkInfo()
            for offset, hsit_idx, size in slots:
                info.slots[offset] = _Slot(hsit_idx, offset, size)
                info.live_records += 1
                info.live_bytes += size
                info.write_head = max(info.write_head, offset + self.header_size + size)
            self._chunks[chunk_id] = info
        self._free = remaining
