"""Opportunistic thread combining for Value Storage reads (§5.3).

When concurrent threads miss the cache, one of them — the *leader*,
the first to swing the Thread Combining Queue's tail pointer — gathers
the others' read requests and submits them as a single io_uring batch.
Followers hand their request to the leader and wait only for their own
completion.  The batch closes when no more followers arrive (modelled
as a short combining window) or when the coalescing limit (the queue
depth) is reached.

The effect: IO batch size tracks concurrency.  Many concurrent readers
→ large batches → amortized syscalls and full bandwidth.  A lone
reader → batch of one → near-raw device latency.

The module also implements the paper's strawman for Figure 11,
timeout-based batching ("TA"): wait a fixed window (100 µs) for more
requests before submitting, which wrecks latency at low concurrency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.vthread import VThread
from repro.storage.iouring import (
    IORequest,
    IOUring,
    SQE_PREP_COST,
    SUBMIT_SYSCALL_COST,
    split_into_batches,
)

# Leader's TCQ traversal window: the time it keeps collecting follower
# requests before submitting.  Small, so a lone reader pays little.
COMBINE_WINDOW = 1.5e-6
# Follower's cost to enqueue its request behind the leader (the atomic
# swap on the TCQ tail plus the hand-off).
FOLLOWER_HANDOFF_COST = 0.2e-6
# The strawman's wait-for-more-requests timeout (§7.6, Figure 11).
TIMEOUT_WINDOW = 100e-6

MODE_THREAD_COMBINING = "tc"
MODE_TIMEOUT_ASYNC = "ta"
MODE_SYNC = "sync"


class ThreadCombiner:
    """Batches concurrent reads against one Value Storage ring."""

    # Optional RetryExecutor (attached by the store when fault
    # injection is on): transient errors on an SQE placement re-submit
    # that request at a backed-off virtual time.  MODE_SYNC is the
    # deliberately-naive baseline and is not retried.
    retry = None

    def __init__(
        self,
        ring: IOUring,
        mode: str = MODE_THREAD_COMBINING,
        combine_window: float = COMBINE_WINDOW,
        timeout_window: float = TIMEOUT_WINDOW,
    ) -> None:
        if mode not in (MODE_THREAD_COMBINING, MODE_TIMEOUT_ASYNC, MODE_SYNC):
            raise ValueError(f"unknown read-batching mode: {mode}")
        self.ring = ring
        self.mode = mode
        self.combine_window = combine_window
        self.timeout_window = timeout_window
        self._batch_close = -1.0
        self._batch_count = 0
        self.batches = 0
        self.combined_requests = 0

    @property
    def coalescing_limit(self) -> int:
        return self.ring.queue_depth

    def read(
        self,
        thread: VThread,
        requests: Sequence[IORequest],
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> float:
        """Issue ``requests`` for one thread; returns (and advances the
        thread to) the completion time of *its* requests.

        ``metrics`` attributes the thread's wait to two phases: the
        combining wait (window close / batch hand-off) and the SSD wait
        (device service after submission).
        """
        if not requests:
            return thread.now
        if self.mode == MODE_SYNC:
            start = thread.now
            done = self.ring.submit_and_wait(thread.now, requests)
            thread.wait_until(done)
            if metrics.enabled:
                metrics.phase("read", "ssd_wait", done - start)
            return done
        window = (
            self.combine_window
            if self.mode == MODE_THREAD_COMBINING
            else self.timeout_window
        )
        t = thread.now
        limit = self.coalescing_limit
        if t > self._batch_close:
            # The open batch's window has passed: its count must not
            # leak into admission decisions for the next batch.
            self._batch_count = 0
        joins = (
            t <= self._batch_close
            and self._batch_count + len(requests) <= limit
        )
        done = t
        if joins:
            # Follower: swap into the TCQ and hand over the request.
            self._batch_count += len(requests)
            # thread.spend(FOLLOWER_HANDOFF_COST) inlined (hot path).
            now = thread.now + FOLLOWER_HANDOFF_COST
            thread.now = now
            thread.cpu_time += FOLLOWER_HANDOFF_COST
            clock = thread.clock
            if now > clock._now:
                clock._now = now
            floor = self._batch_close
            self.combined_requests += len(requests)
            for req in requests:
                done = max(done, self._place(floor, req))
        else:
            # Leader: open fresh batches.  A request list larger than
            # the coalescing limit (the queue depth) is split at QD —
            # each split is its own io_uring submission, so batch
            # accounting (Figure 11) never sees an oversized batch.
            chunks = split_into_batches(requests, limit)
            floor = t
            for i, chunk in enumerate(chunks):
                last = i == len(chunks) - 1
                if last and len(chunk) < limit:
                    # Only a partial trailing batch waits out the
                    # window for followers; full batches are closed
                    # the moment they fill and submit immediately.
                    self._batch_close = t + window
                    self._batch_count = len(chunk)
                    floor = self._batch_close
                else:
                    floor = t
                self.batches += 1
                self.combined_requests += len(chunk)
                for req in chunk:
                    done = max(done, self._place(floor, req))
            if len(chunks[-1]) >= limit:
                self._batch_close = t  # no partial batch left open
                self._batch_count = 0
            # thread.spend(...) inlined (hot path).
            cost = (
                SUBMIT_SYSCALL_COST * len(chunks)
                + SQE_PREP_COST * len(requests)
            )
            now = thread.now + cost
            thread.now = now
            thread.cpu_time += cost
            clock = thread.clock
            if now > clock._now:
                clock._now = now
        submit_at = max(min(floor, done), t)
        # thread.wait_until(done) inlined.
        if done > thread.now:
            thread.now = done
            clock = thread.clock
            if done > clock._now:
                clock._now = done
        if metrics.enabled:
            metrics.phase("read", "combining_wait", submit_at - t)
            metrics.phase("read", "ssd_wait", max(0.0, done - submit_at))
        return done

    def _place(self, at: float, req: IORequest) -> float:
        """Put one SQE on the ring, retrying transient faults if the
        store attached a retry executor."""
        if self.retry is None:
            return self.ring.submit_one(at, req)
        return self.retry.run_at(
            lambda t: self.ring.submit_one(t, req),
            at,
            device=self.ring.device.name,
            op="read",
        )

    def read_one(
        self,
        thread: VThread,
        request: IORequest,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> bytes:
        """Convenience wrapper for a single-record read."""
        self.read(thread, [request], metrics)
        assert request.result is not None
        return request.result

    def average_batch(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.combined_requests / self.batches
