"""Opportunistic thread combining for Value Storage reads (§5.3).

When concurrent threads miss the cache, one of them — the *leader*,
the first to swing the Thread Combining Queue's tail pointer — gathers
the others' read requests and submits them as a single io_uring batch.
Followers hand their request to the leader and wait only for their own
completion.  The batch closes when no more followers arrive (modelled
as a short combining window) or when the coalescing limit (the queue
depth) is reached.

The effect: IO batch size tracks concurrency.  Many concurrent readers
→ large batches → amortized syscalls and full bandwidth.  A lone
reader → batch of one → near-raw device latency.

The module also implements the paper's strawman for Figure 11,
timeout-based batching ("TA"): wait a fixed window (100 µs) for more
requests before submitting, which wrecks latency at low concurrency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.vthread import VThread
from repro.storage.iouring import (
    IORequest,
    IOUring,
    SQE_PREP_COST,
    SUBMIT_SYSCALL_COST,
)

# Leader's TCQ traversal window: the time it keeps collecting follower
# requests before submitting.  Small, so a lone reader pays little.
COMBINE_WINDOW = 1.5e-6
# Follower's cost to enqueue its request behind the leader (the atomic
# swap on the TCQ tail plus the hand-off).
FOLLOWER_HANDOFF_COST = 0.2e-6
# The strawman's wait-for-more-requests timeout (§7.6, Figure 11).
TIMEOUT_WINDOW = 100e-6

MODE_THREAD_COMBINING = "tc"
MODE_TIMEOUT_ASYNC = "ta"
MODE_SYNC = "sync"


class ThreadCombiner:
    """Batches concurrent reads against one Value Storage ring."""

    def __init__(
        self,
        ring: IOUring,
        mode: str = MODE_THREAD_COMBINING,
        combine_window: float = COMBINE_WINDOW,
        timeout_window: float = TIMEOUT_WINDOW,
    ) -> None:
        if mode not in (MODE_THREAD_COMBINING, MODE_TIMEOUT_ASYNC, MODE_SYNC):
            raise ValueError(f"unknown read-batching mode: {mode}")
        self.ring = ring
        self.mode = mode
        self.combine_window = combine_window
        self.timeout_window = timeout_window
        self._batch_close = -1.0
        self._batch_count = 0
        self.batches = 0
        self.combined_requests = 0

    @property
    def coalescing_limit(self) -> int:
        return self.ring.queue_depth

    def read(self, thread: VThread, requests: Sequence[IORequest]) -> float:
        """Issue ``requests`` for one thread; returns (and advances the
        thread to) the completion time of *its* requests."""
        if not requests:
            return thread.now
        if self.mode == MODE_SYNC:
            done = self.ring.submit_and_wait(thread.now, requests)
            thread.wait_until(done)
            return done
        window = (
            self.combine_window
            if self.mode == MODE_THREAD_COMBINING
            else self.timeout_window
        )
        t = thread.now
        joins = (
            t <= self._batch_close
            and self._batch_count + len(requests) <= self.coalescing_limit
        )
        if joins:
            # Follower: swap into the TCQ and hand over the request.
            self._batch_count += len(requests)
            thread.spend(FOLLOWER_HANDOFF_COST)
            floor = self._batch_close
        else:
            # Leader: open a fresh batch; it submits at the window close.
            self._batch_close = t + window
            self._batch_count = len(requests)
            self.batches += 1
            thread.spend(SUBMIT_SYSCALL_COST + SQE_PREP_COST * len(requests))
            floor = self._batch_close
        self.combined_requests += len(requests)
        done = floor
        for req in requests:
            completion = self.ring.submit_one(floor, req)
            done = max(done, completion)
        thread.wait_until(done)
        return done

    def read_one(
        self, thread: VThread, request: IORequest
    ) -> bytes:
        """Convenience wrapper for a single-record read."""
        self.read(thread, [request])
        assert request.result is not None
        return request.result

    def average_batch(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.combined_requests / self.batches
