"""Scan-aware Value Cache on DRAM (§4.4).

Values read from Value Storage are admitted to the SVC; the cached
copy becomes reachable the moment the HSIT's SVC word is set — there
is no separate cache index.  All bookkeeping (LRU lists, eviction,
scan-range reorganization) happens off the critical path on a
background thread that drains a request queue.

Eviction uses a 2Q LRU: first-touch values sit on an *inactive* list;
a second access promotes to the *active* list; the active list's tail
demotes back when it outgrows its share; evictions come from the
inactive tail.

Scan awareness: values fetched by one scan are chained in a
doubly-linked list.  When one chain member is evicted, the whole chain
is sorted by key and written back *together* into a fresh Value
Storage chunk, restoring spatial locality that the log-structured
store destroyed — later scans over the range need far fewer SSD IOs.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.containment import resolve_partial_publish
from repro.core.epoch import EpochManager
from repro.core.hsit import HSIT
from repro.core import pointers as ptr
from repro.core.value_storage import ValueStorage
from repro.faults.errors import DeviceError
from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.dram import DRAMDevice

# Fraction of cache capacity the active list may occupy.
ACTIVE_SHARE = 0.5
# Background CPU cost to process one queued cache-management request.
_BG_OP_COST = 0.3e-6


class SVCEntry:
    """One cached value."""

    __slots__ = (
        "entry_id",
        "hsit_idx",
        "key",
        "value",
        "charged",
        "list_name",
        "scan_prev",
        "scan_next",
        "freed",
    )

    def __init__(
        self, entry_id: int, hsit_idx: int, key: bytes, value: bytes, charged: int
    ) -> None:
        self.entry_id = entry_id
        self.hsit_idx = hsit_idx
        self.key = key
        self.value = value
        self.charged = charged  # bytes accounted against capacity
        self.list_name = ""  # "", "inactive", "active"
        self.scan_prev: Optional[int] = None
        self.scan_next: Optional[int] = None
        self.freed = False


class ScanAwareValueCache:
    """2Q value cache with scan-range writeback."""

    volatile = True  # crashed first by CrashScenario.power_failure

    def __init__(
        self,
        dram: DRAMDevice,
        capacity: int,
        hsit: HSIT,
        epoch: EpochManager,
        scan_aware: bool = True,
        page_mode: bool = False,
        page_size: int = 4096,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"SVC capacity must be positive: {capacity}")
        self.dram = dram
        self.capacity = capacity
        self.hsit = hsit
        self.epoch = epoch
        self.scan_aware = scan_aware
        # Ablation: charge page granularity like prior-work page caches.
        self.page_mode = page_mode
        self.page_size = page_size
        self.entries: Dict[int, SVCEntry] = {}
        self._next_id = 0
        self.inactive: "OrderedDict[int, None]" = OrderedDict()
        self.active: "OrderedDict[int, None]" = OrderedDict()
        self.used = 0
        self.active_bytes = 0
        self._pending: Deque[Tuple[str, int]] = deque()
        self.hits = 0
        self.admissions = 0
        self.evictions = 0
        self.scan_writebacks = 0
        self.writeback_values = 0

    # ------------------------------------------------------------------
    # foreground path
    # ------------------------------------------------------------------
    def _charge_of(self, value: bytes) -> int:
        if self.page_mode:
            pages = -(-len(value) // self.page_size)
            return pages * self.page_size
        return len(value)

    def admit(
        self, hsit_idx: int, key: bytes, value: bytes, thread: Optional[VThread] = None
    ) -> int:
        """Cache a value just read from Value Storage.

        Makes the DRAM copy reachable immediately (HSIT SVC word), then
        queues the LRU insertion for the background thread.  Returns
        the entry id.
        """
        entry_id = self._next_id
        self._next_id += 1
        charged = self._charge_of(value)
        entry = SVCEntry(entry_id, hsit_idx, key, value, charged)
        self.entries[entry_id] = entry
        self.used += charged
        self.dram.write(thread, len(value))
        self.hsit.set_svc(hsit_idx, entry_id, thread)
        self._pending.append(("admit", entry_id))
        self.admissions += 1
        return entry_id

    def lookup(self, entry_id: int, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Fetch a cached value by entry id (None if already freed)."""
        entry = self.entries.get(entry_id)
        if entry is None or entry.freed:
            return None
        self.dram.read(thread, len(entry.value))
        self._pending.append(("touch", entry_id))
        self.hits += 1
        return entry.value

    def invalidate(self, entry_id: int, thread: Optional[VThread] = None) -> None:
        """Logically delete a cached copy (its value changed or died).

        The caller has already cleared the HSIT SVC word; physical
        memory is reclaimed after two epochs so in-flight readers of
        the old copy stay safe (§5.4).
        """
        entry = self.entries.get(entry_id)
        if entry is None or entry.freed:
            return
        self._logical_free(entry)
        self.epoch.retire(lambda: self._physically_free(entry_id))

    def _logical_free(self, entry: SVCEntry) -> None:
        """Disconnect an entry and release its capacity immediately.

        The *memory* (the entries-dict slot readers may still hold) is
        reclaimed only after two epochs, but the byte budget frees now —
        otherwise capacity enforcement would see a full cache and evict
        live entries in a storm while retirements age.
        """
        entry.freed = True
        self._unchain(entry)
        self.used -= entry.charged
        if entry.list_name == "active":
            self.active.pop(entry.entry_id, None)
            self.active_bytes -= entry.charged
        elif entry.list_name == "inactive":
            self.inactive.pop(entry.entry_id, None)
        entry.list_name = ""

    def _physically_free(self, entry_id: int) -> None:
        self.entries.pop(entry_id, None)

    # ------------------------------------------------------------------
    # scan chains
    # ------------------------------------------------------------------
    def link_scan_chain(self, entry_ids: List[int]) -> None:
        """Doubly link entries fetched by the same scan (§4.4)."""
        if not self.scan_aware:
            return
        live = [
            eid
            for eid in entry_ids
            if eid in self.entries and not self.entries[eid].freed
        ]
        for prev_id, next_id in zip(live, live[1:]):
            self.entries[prev_id].scan_next = next_id
            self.entries[next_id].scan_prev = prev_id

    def _unchain(self, entry: SVCEntry) -> None:
        if entry.scan_prev is not None:
            prev = self.entries.get(entry.scan_prev)
            if prev is not None:
                prev.scan_next = entry.scan_next
        if entry.scan_next is not None:
            nxt = self.entries.get(entry.scan_next)
            if nxt is not None:
                nxt.scan_prev = entry.scan_prev
        entry.scan_prev = None
        entry.scan_next = None

    # Overlapping scans can stitch chains together; bound the traversal
    # so one eviction never walks (or rewrites) an unbounded region.
    MAX_CHAIN = 256

    def _chain_of(self, entry: SVCEntry) -> List[SVCEntry]:
        """Live chain members around ``entry``, leftmost first (bounded)."""
        first = entry
        seen = {entry.entry_id}
        while first.scan_prev is not None and len(seen) < self.MAX_CHAIN // 2:
            prev = self.entries.get(first.scan_prev)
            if prev is None or prev.freed or prev.entry_id in seen:
                break
            seen.add(prev.entry_id)
            first = prev
        chain = []
        seen = set()
        node: Optional[SVCEntry] = first
        while (
            node is not None
            and node.entry_id not in seen
            and len(chain) < self.MAX_CHAIN
        ):
            seen.add(node.entry_id)
            if not node.freed:
                chain.append(node)
            node = self.entries.get(node.scan_next) if node.scan_next is not None else None
        return chain

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    def pending_work(self) -> int:
        return len(self._pending) + max(0, self.used - self.capacity)

    def process_background(
        self,
        bg: VThread,
        storages: List[ValueStorage],
    ) -> None:
        """Drain the request queue and enforce capacity (off critical path)."""
        popleft = self._pending.popleft
        entries_get = self.entries.get
        if self._pending:
            # bg.spend(_BG_OP_COST) batched: the same per-request float
            # additions accumulate in locals, and the thread/clock
            # write-back happens once after the drain.  Bit-identical
            # to spending inside the loop because nothing here reads
            # bg.now or the clock until _balance_active/_evict_one.
            now = bg.now
            cpu = bg.cpu_time
            while self._pending:
                op, entry_id = popleft()
                now = now + _BG_OP_COST
                cpu += _BG_OP_COST
                entry = entries_get(entry_id)
                if entry is None or entry.freed:
                    continue
                if op == "admit":
                    if entry.list_name == "":
                        self.inactive[entry_id] = None
                        entry.list_name = "inactive"
                elif op == "touch":
                    self._touch(entry)
            bg.now = now
            bg.cpu_time = cpu
            clock = bg.clock
            if now > clock._now:
                clock._now = now
        self._balance_active()
        while self.used > self.capacity:
            if not self._evict_one(bg, storages):
                break

    def _touch(self, entry: SVCEntry) -> None:
        if entry.list_name == "inactive":
            # Second access: promote (2Q).
            self.inactive.pop(entry.entry_id, None)
            self.active[entry.entry_id] = None
            entry.list_name = "active"
            self.active_bytes += entry.charged
        elif entry.list_name == "active":
            self.active.move_to_end(entry.entry_id)

    def _balance_active(self) -> None:
        limit = self.capacity * ACTIVE_SHARE
        while self.active and self.active_bytes > limit:
            entry_id, _ = self.active.popitem(last=False)
            entry = self.entries[entry_id]
            entry.list_name = "inactive"
            self.active_bytes -= entry.charged
            self.inactive[entry_id] = None

    def _evict_one(self, bg: VThread, storages: List[ValueStorage]) -> bool:
        """Evict from the inactive tail (falling back to active)."""
        if self.inactive:
            entry_id = next(iter(self.inactive))
        elif self.active:
            entry_id = next(iter(self.active))
        else:
            return False
        entry = self.entries.get(entry_id)
        if entry is None or entry.freed:
            # Defensive: lists are cleaned at logical free, so this is
            # residue from a bug rather than normal operation.
            self.inactive.pop(entry_id, None)
            self.active.pop(entry_id, None)
            return True
        if self.scan_aware and (
            entry.scan_prev is not None or entry.scan_next is not None
        ):
            self._writeback_chain(bg, entry, storages)
        else:
            self._drop(entry, bg)
        return True

    def _drop(self, entry: SVCEntry, bg: VThread) -> None:
        """Plain eviction: the durable copy in Value Storage stands."""
        if entry.freed:
            return
        self.hsit.clear_svc(entry.hsit_idx, bg)
        self._logical_free(entry)
        self.evictions += 1
        self.epoch.retire(lambda eid=entry.entry_id: self._physically_free(eid))

    @staticmethod
    def _already_contiguous(locs: List) -> bool:
        """True when a key-sorted chain already sits in one chunk in
        ascending offset order — rewriting it would buy nothing."""
        if len(locs) < 2:
            return True
        stays = 0
        for prev, cur in zip(locs, locs[1:]):
            if (
                prev.vs_id == cur.vs_id
                and prev.chunk_id == cur.chunk_id
                and prev.vs_offset < cur.vs_offset
            ):
                stays += 1
        return stays >= 0.8 * (len(locs) - 1)

    def _writeback_chain(
        self, bg: VThread, entry: SVCEntry, storages: List[ValueStorage]
    ) -> None:
        """Sort a scan chain and rewrite it contiguously (§4.4 ➎➏)."""
        chain = self._chain_of(entry)
        movable: List[SVCEntry] = []
        for member in chain:
            loc = self.hsit.read_location(member.hsit_idx, bg)
            if loc.in_vs and storages[loc.vs_id].is_valid(loc.chunk_id, loc.vs_offset):
                movable.append(member)
            # PWB-resident members were updated since caching; their
            # cached copy is stale bookkeeping and is simply dropped.
        movable.sort(key=lambda e: e.key)
        if self._already_contiguous(
            [self.hsit.read_location(m.hsit_idx, bg) for m in movable]
        ):
            movable = []
        if len(movable) > 1:
            target = min(storages, key=lambda vs: vs.ring.inflight_at(bg.now))
            records = [(m.hsit_idx, m.value) for m in movable]
            try:
                placements, done = target.write_records(bg.now, records)
            except StorageError:
                # Reorganization is an optimization: on device trouble
                # (or a full store) skip the rewrite — the durable
                # copies stand and eviction proceeds as a plain drop.
                placements = None
            if placements is not None:
                bg.wait_until(done)
                olds = [self.hsit.read_location(m.hsit_idx, bg) for m in movable]
                published = 0
                try:
                    for member, old, (chunk_id, offset, size) in zip(
                        movable, olds, placements
                    ):
                        self.hsit.publish_location_word(
                            member.hsit_idx,
                            ptr.encode_vs(target.vs_id, chunk_id, offset),
                            bg,
                        )
                        published += 1
                        if old.in_vs:
                            storages[old.vs_id].invalidate(
                                old.chunk_id, old.vs_offset
                            )
                except DeviceError:
                    resolve_partial_publish(
                        self.hsit,
                        target,
                        [
                            (
                                m.hsit_idx,
                                placement,
                                storages[old.vs_id] if old.in_vs else None,
                                old.chunk_id,
                                old.vs_offset,
                            )
                            for m, old, placement in zip(movable, olds, placements)
                        ],
                        published,
                    )
                else:
                    self.scan_writebacks += 1
                    self.writeback_values += len(movable)
        # The chain's purpose — spatial locality on flash — is now
        # fulfilled, so dissolve it; only the evicted value leaves the
        # cache (Figure 3: the victim is freed, its range-mates were
        # merely rewritten together).
        for member in chain:
            self._unchain(member)
        self._drop(entry, bg)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for e in self.entries.values() if not e.freed)

    def crash(self) -> None:
        """DRAM loses everything."""
        self.entries.clear()
        self.inactive.clear()
        self.active.clear()
        self._pending.clear()
        self.used = 0
        self.active_bytes = 0
