"""Persistent Write Buffer (§4.3).

One PWB per application thread, on NVM, written append-only: a write
persists ``[backward pointer][size][value]`` and returns, making the
critical path a handful of NVM stores — no SSD latency, no logging,
no write/write conflicts.

The buffer is a ring over a fixed NVM region.  Offsets handed to the
HSIT are *absolute* (monotonically increasing); the ring position is
``offset % capacity``.  Records never straddle the wrap point — the
writer skips the tail padding instead — which keeps every record
physically contiguous.

Reclamation (§5.2) drains ``[tail, head)`` in the background once
utilization crosses the watermark; the paper's well-coupledness check
(backward pointer vs forward pointer) decides which records are live.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Tuple

from repro.core.value_storage import record_crc
from repro.faults.errors import CorruptionError
from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.crash import NULL_CRASH_POINT
from repro.storage.nvm import NVMDevice

RECORD_HEADER = 12  # backward pointer (8B) + value size (4B)
CHECKED_RECORD_HEADER = 16  # backward pointer (8B) + size (4B) + CRC32 (4B)
_ALIGN = 8


class PWBFullError(StorageError):
    """Raised when an append cannot fit even after reclamation."""


class PersistentWriteBuffer:
    """A per-thread append-only ring on NVM."""

    # Crash-exploration hook; the owning store swaps in its own point.
    crash_point = NULL_CRASH_POINT

    def __init__(
        self,
        nvm: NVMDevice,
        pwb_id: int,
        capacity: int,
        checksums: bool = False,
    ) -> None:
        if capacity < 4096:
            raise ValueError(f"PWB too small: {capacity}")
        self.nvm = nvm
        self.pwb_id = pwb_id
        self.capacity = capacity
        self.checksums = checksums
        self.header_size = CHECKED_RECORD_HEADER if checksums else RECORD_HEADER
        self.base = nvm.alloc(capacity, align=256)
        # Absolute (monotonic) offsets; ring position = offset % capacity.
        self.head = 0
        self.tail = 0
        # (upto, done_at): a background reclamation has drained
        # [tail, upto) and the space becomes reusable at virtual time
        # done_at.  The release is applied lazily by poll() so the
        # foreground only sees the space once the reclamation has
        # logically finished.
        self.pending_release: Optional[Tuple[int, float]] = None
        # Virtual time at which the latest reclamation finishes.
        self.reclaim_done_at = 0.0
        self.appends = 0
        self.bytes_appended = 0
        # Volatile list of record offsets, oldest first.  Reclamation
        # iterates it instead of parsing ring padding; recovery never
        # needs it (live PWB records are found through the HSIT).
        self._offsets: deque = deque()

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self.head - self.tail

    @property
    def free_space(self) -> int:
        return self.capacity - self.used

    def utilization(self) -> float:
        return self.used / self.capacity

    def record_bytes(self, value_len: int) -> int:
        raw = self.header_size + value_len
        return -(-raw // _ALIGN) * _ALIGN

    def _frame(self, hsit_idx: int, value: bytes) -> bytes:
        """Build one on-NVM record: header (+ optional CRC32) + value."""
        header = hsit_idx.to_bytes(8, "little") + len(value).to_bytes(4, "little")
        if not self.checksums:
            return header + value
        return header + record_crc(header, value).to_bytes(4, "little") + value

    def _parse(self, header: bytes, value: bytes, offset: int) -> Tuple[int, bytes]:
        """Verify (when enabled) and split a record already loaded."""
        hsit_idx = int.from_bytes(header[:8], "little")
        if self.checksums:
            stored = int.from_bytes(header[12:16], "little")
            if record_crc(header[:12], value) != stored:
                raise CorruptionError(
                    self.nvm.name, f"pwb {self.pwb_id} off {offset}"
                )
        return hsit_idx, value

    def _advance_over_wrap(self, offset: int, need: int) -> int:
        """Skip tail padding so the record stays contiguous."""
        pos = offset % self.capacity
        if pos + need > self.capacity:
            return offset + (self.capacity - pos)
        return offset

    def would_fit(self, value_len: int) -> bool:
        need = self.record_bytes(value_len)
        start = self._advance_over_wrap(self.head, need)
        return (start + need) - self.tail <= self.capacity

    # ------------------------------------------------------------------
    # append / read
    # ------------------------------------------------------------------
    def append(
        self, hsit_idx: int, value: bytes, thread: Optional[VThread] = None
    ) -> int:
        """Persist a record; returns its absolute offset.

        The record is durable when this returns (store + flush + fence
        on NVM) — this is what gives Prism immediate durability without
        a write-ahead log.
        """
        if not value:
            raise ValueError("PWB records must carry a non-empty value")
        # record_bytes / _advance_over_wrap / _frame inlined: one append
        # per put makes this the hottest PWB entry point.
        vlen = len(value)
        raw = self.header_size + vlen
        need = -(-raw // _ALIGN) * _ALIGN
        capacity = self.capacity
        if need > capacity // 2:
            raise PWBFullError(
                f"value of {vlen}B cannot fit a {capacity}B PWB"
            )
        head = self.head
        pos = head % capacity
        start = head + (capacity - pos) if pos + need > capacity else head
        if (start + need) - self.tail > capacity:
            raise PWBFullError(
                f"pwb {self.pwb_id}: {need}B append overflows "
                f"(used {self.used}/{capacity})"
            )
        cp = self.crash_point
        if cp.active:
            cp.maybe_crash("pwb.append.pre")
        self.head = start + need
        header = hsit_idx.to_bytes(8, "little") + vlen.to_bytes(4, "little")
        if self.checksums:
            record = header + record_crc(header, value).to_bytes(4, "little") + value
        else:
            record = header + value
        self.nvm.persist(thread, self.base + start % capacity, record)
        if cp.active:
            cp.maybe_crash("pwb.append.persisted")
        self._offsets.append(start)
        self.appends += 1
        self.bytes_appended += vlen
        return start

    def read(
        self, offset: int, thread: Optional[VThread] = None
    ) -> Tuple[int, bytes]:
        """Read (backward pointer, value) at an absolute offset."""
        if not self.tail <= offset < self.head:
            raise StorageError(
                f"pwb {self.pwb_id}: offset {offset} outside "
                f"[{self.tail}, {self.head})"
            )
        pos = self.base + offset % self.capacity
        header_size = self.header_size
        nvm = self.nvm
        header = nvm.load(thread, pos, header_size)
        size = int.from_bytes(header[8:12], "little")
        value = nvm.load(None, pos + header_size, size)
        # _parse inlined for the common no-checksum configuration.
        if self.checksums:
            return self._parse(header, value, offset)
        return int.from_bytes(header[:8], "little"), value

    def read_backptr(self, offset: int, thread: Optional[VThread] = None) -> int:
        pos = self.base + offset % self.capacity
        return int.from_bytes(self.nvm.load(thread, pos, 8), "little")

    # ------------------------------------------------------------------
    # reclamation support
    # ------------------------------------------------------------------
    def records_between(self, lo: int, hi: int) -> Iterator[Tuple[int, int, bytes]]:
        """Yield (offset, backward pointer, value) over [lo, hi).

        Untimed iteration used by the background reclaimer, which
        charges NVM bandwidth for the whole region in one go.
        """
        nvm = self.nvm
        read_raw = nvm._read_raw
        base = self.base
        capacity = self.capacity
        header_size = self.header_size
        checksums = self.checksums
        for offset in self._offsets:
            if offset >= hi:
                break
            if offset < lo:
                continue
            # nvm.load(None, ...) inlined (bounds hold by construction):
            # same byte accounting, no timed channel traffic.
            pos = base + offset % capacity
            raw = read_raw(pos, header_size)
            size = int.from_bytes(raw[8:12], "little")
            value = read_raw(pos + header_size, size)
            nvm.bytes_read += header_size + size
            if checksums:
                hsit_idx, value = self._parse(raw, value, offset)
            else:
                hsit_idx = int.from_bytes(raw[:8], "little")
            yield offset, hsit_idx, value

    def release_through(self, upto: int) -> None:
        """Advance the tail after a reclamation drained [tail, upto)."""
        if not self.tail <= upto <= self.head:
            raise ValueError(
                f"release {upto} outside [{self.tail}, {self.head}]"
            )
        self.tail = upto
        while self._offsets and self._offsets[0] < upto:
            self._offsets.popleft()

    def poll(self, now: float) -> None:
        """Apply a pending release whose reclamation has finished."""
        if self.pending_release is None:
            return
        upto, done_at = self.pending_release
        if now >= done_at:
            self.pending_release = None
            self.release_through(upto)

    def reset(self) -> None:
        """Empty the buffer (recovery flushes live records elsewhere)."""
        self.head = 0
        self.tail = 0
        self.pending_release = None
        self.reclaim_done_at = 0.0
        self._offsets.clear()
