"""Epoch-based reclamation (§5.4).

Freed HSIT entries and evicted SVC entries must not be recycled while
a concurrent reader may still dereference them.  Prism waits for two
epochs: the first guarantees no *new* thread can reach the retired
object, the second that every reader from the previous epoch has
finished.

Threads bracket operations with :meth:`enter` / :meth:`exit`.  The
epoch advances only when every registered thread has passed through a
quiescent state in the current epoch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

# Retired objects are reclaimed after this many epoch advances.
GRACE_EPOCHS = 2


class EpochManager:
    """Global epoch clock with deferred reclamation."""

    def __init__(self) -> None:
        self.global_epoch = 0
        # thread id -> epoch pinned by an in-flight operation (or -1)
        self._pinned: Dict[int, int] = {}
        # thread id -> last epoch in which the thread was seen quiescent
        self._quiescent: Dict[int, int] = {}
        self._retired: List[Tuple[int, Callable[[], None]]] = []
        self.reclaimed = 0

    # ------------------------------------------------------------------
    # thread participation
    # ------------------------------------------------------------------
    def register(self, tid: int) -> None:
        self._pinned.setdefault(tid, -1)
        self._quiescent.setdefault(tid, self.global_epoch)

    def unregister(self, tid: int) -> None:
        self._pinned.pop(tid, None)
        self._quiescent.pop(tid, None)

    def enter(self, tid: int) -> None:
        """Pin the current epoch for an operation."""
        # register() inlined: enter() brackets every store operation and
        # the common case is an already-registered thread.  The pin is
        # overwritten immediately, so only the quiescent default matters.
        q = self._quiescent
        if tid not in q:
            q[tid] = self.global_epoch
        self._pinned[tid] = self.global_epoch

    def exit(self, tid: int) -> None:
        """Leave the critical region; the thread becomes quiescent."""
        if tid not in self._pinned:
            raise KeyError(f"thread {tid} never entered an epoch")
        self._pinned[tid] = -1
        self._quiescent[tid] = self.global_epoch

    # ------------------------------------------------------------------
    # reclamation
    # ------------------------------------------------------------------
    def retire(self, reclaim: Callable[[], None]) -> None:
        """Defer ``reclaim`` until two epochs have safely passed."""
        self._retired.append((self.global_epoch, reclaim))

    def try_advance(self) -> bool:
        """Advance the epoch if every thread is quiescent in it.

        A thread blocks advancement while it pins an older epoch.
        Returns True when the epoch moved (and runs due reclamations).
        """
        for tid, pinned in self._pinned.items():
            if pinned != -1 and pinned < self.global_epoch:
                return False
            if pinned == -1 and self._quiescent[tid] < self.global_epoch:
                return False
        self.global_epoch += 1
        self._run_due()
        return True

    def _run_due(self) -> None:
        due = [
            (epoch, fn)
            for epoch, fn in self._retired
            if epoch + GRACE_EPOCHS <= self.global_epoch
        ]
        if not due:
            return
        self._retired = [
            item for item in self._retired if item[0] + GRACE_EPOCHS > self.global_epoch
        ]
        for _, fn in due:
            fn()
            self.reclaimed += 1

    @property
    def pending(self) -> int:
        return len(self._retired)

    def drain(self) -> None:
        """Force-run all retirements (shutdown path: no readers remain)."""
        for _, fn in self._retired:
            fn()
            self.reclaimed += 1
        self._retired.clear()
