"""Configuration for a Prism instance.

Defaults are scaled-down versions of the paper's evaluation setup
(Table 1): eight Samsung 980 Pro SSDs, a 16 GB NVM write buffer, and a
20 GB DRAM cache, shrunk so simulations stay laptop-sized.  Every
design choice the paper evaluates or ablates is a switch here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.injector import FaultConfig
from repro.faults.retry import RetryPolicy
from repro.core.tcq import (
    COMBINE_WINDOW,
    MODE_SYNC,
    MODE_THREAD_COMBINING,
    MODE_TIMEOUT_ASYNC,
    TIMEOUT_WINDOW,
)
from repro.storage.specs import (
    FLASH_SSD_GEN4_SPEC,
    NVM_SPEC,
    DRAM_SPEC,
    QLC_SSD_SPEC,
    DeviceSpec,
)

MB = 1024**2
GB = 1024**3

# Tiering placement policies (ISSUE 9).
TIER_TEMPERATURE = "temperature"  # hot data fast, cold data demoted
TIER_SPREAD = "spread"  # round-robin over every tier (no-tiering baseline)


@dataclass
class PrismConfig:
    """Everything tunable about a Prism instance."""

    # Parallelism
    num_threads: int = 4

    # Devices
    num_ssds: int = 2
    ssd_spec: DeviceSpec = field(default_factory=lambda: FLASH_SSD_GEN4_SPEC)
    nvm_spec: DeviceSpec = field(default_factory=lambda: NVM_SPEC)
    dram_spec: DeviceSpec = field(default_factory=lambda: DRAM_SPEC)

    # Persistent Write Buffer (per thread)
    pwb_capacity: int = 4 * MB
    pwb_watermark: float = 0.5  # reclamation trigger (§4.3)
    enable_pwb: bool = True  # ablation: False -> sync writes to SSD

    # Scan-aware Value Cache
    svc_capacity: int = 32 * MB
    enable_svc: bool = True
    svc_scan_aware: bool = True  # ablation: plain 2Q without chains
    svc_page_mode: bool = False  # ablation: page-granularity accounting

    # DRAM read-cache tier (ISSUE 6).  Off by default: with the cache
    # off the store never constructs one and the read path is
    # bit-identical to a build without the subsystem.  Enabled, point
    # reads consult a TinyLFU-admitted value cache *before* the index,
    # so hot keys are served at DRAM latency; every put/delete/GC-
    # relocation publish invalidates the cached copy synchronously.
    enable_read_cache: bool = False
    read_cache_capacity: int = 8 * MB
    read_cache_sketch_width: int = 4096

    # Value Storage
    chunk_size: int = 512 * 1024
    queue_depth: int = 64
    gc_free_threshold: float = 0.15  # GC when free-chunk fraction drops below
    gc_batch_chunks: int = 8

    # Read path
    read_batching: str = MODE_THREAD_COMBINING  # "tc" | "ta" | "sync"
    combine_window: float = COMBINE_WINDOW
    timeout_window: float = TIMEOUT_WINDOW

    # Index / HSIT
    hsit_capacity: int = 1_000_000
    index_leaf_capacity: int = 64

    # Epochs
    epoch_advance_every: int = 64  # ops between epoch-advance attempts

    # Observability: when True the store builds a real MetricsRegistry
    # and traces per-op phase latencies; when False (default) it holds
    # the shared no-op registry and tracing costs nothing.
    enable_metrics: bool = False

    # End-to-end integrity (ISSUE 3).  All off by default: with every
    # switch off the on-media record format, IO sizes, and timings are
    # bit-identical to a build without the integrity subsystem.
    # enable_checksums grows the record header by a CRC32 (verified on
    # every read path; mismatch -> typed CorruptionError).
    enable_checksums: bool = False
    # mirror_chunks duplicates every Value Storage chunk write onto a
    # dedicated mirror SSD per storage (repair source for corrupt or
    # dead primaries).
    mirror_chunks: bool = False
    # Background scrubber read budget in bytes of chunk scans per
    # virtual second.
    scrub_bandwidth: float = 64 * MB

    # Hot/cold tiered data placement (ISSUE 9).  Off by default: the
    # store then builds no cold pool and no temperature tracker, and
    # runs are bit-identical to a build without the tiering subsystem.
    # Enabled, a pool of cheap high-capacity cold SSDs joins Value
    # Storage; GC/reclamation demote cold values onto it and re-access
    # promotes them back through the normal write path.
    enable_tiering: bool = False
    num_cold_ssds: int = 2
    cold_ssd_spec: DeviceSpec = field(default_factory=lambda: QLC_SSD_SPEC)
    # "temperature" places by hotness; "spread" round-robins new data
    # across every storage regardless of tier — the baseline where
    # cold-tier spills dominate.
    tier_policy: str = TIER_TEMPERATURE
    # Sketch estimate at or above which a record counts as hot (stays
    # on, or returns to, the fast tier during GC).
    tier_hot_threshold: int = 2
    # Cold-tier read frequency that triggers promotion back to fast.
    tier_promote_threshold: int = 2
    # Ops-counted recency window: a record touched within the last N
    # operations is protected from demotion (the clock bit).
    tier_recency_window: int = 2048
    # Promotion needs this much free-chunk headroom on the fast target,
    # or it would immediately thrash against demotion.
    tier_fast_headroom: float = 0.05
    tier_sketch_width: int = 8192

    # Fault injection: None (default) leaves every device on the no-op
    # null injector — runs are bit-identical to a build without the
    # fault subsystem.  A FaultConfig attaches a seeded injector to the
    # SSDs and the NVM DIMM.
    faults: Optional[FaultConfig] = None
    # Retry/backoff/escalation for transient device errors.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"need at least one thread: {self.num_threads}")
        if self.num_ssds < 1:
            raise ValueError(f"need at least one SSD: {self.num_ssds}")
        if not 0.0 < self.pwb_watermark < 1.0:
            raise ValueError(f"watermark must be in (0, 1): {self.pwb_watermark}")
        if not 0.0 <= self.gc_free_threshold < 1.0:
            raise ValueError(
                f"gc threshold must be in [0, 1): {self.gc_free_threshold}"
            )
        if self.enable_read_cache and self.read_cache_capacity <= 0:
            raise ValueError(
                f"read cache capacity must be positive: {self.read_cache_capacity}"
            )
        if self.enable_tiering:
            if self.num_cold_ssds < 1:
                raise ValueError(
                    f"tiering needs at least one cold SSD: {self.num_cold_ssds}"
                )
            if self.tier_policy not in (TIER_TEMPERATURE, TIER_SPREAD):
                raise ValueError(f"unknown tier_policy: {self.tier_policy}")
            if self.tier_hot_threshold < 1:
                raise ValueError(
                    f"tier_hot_threshold must be >= 1: {self.tier_hot_threshold}"
                )
            if self.tier_promote_threshold < 1:
                raise ValueError(
                    f"tier_promote_threshold must be >= 1: "
                    f"{self.tier_promote_threshold}"
                )
            if self.tier_recency_window < 0:
                raise ValueError(
                    f"tier_recency_window must be >= 0: {self.tier_recency_window}"
                )
            if not 0.0 <= self.tier_fast_headroom < 1.0:
                raise ValueError(
                    f"tier_fast_headroom must be in [0, 1): {self.tier_fast_headroom}"
                )
        if self.scrub_bandwidth <= 0:
            raise ValueError(
                f"scrub_bandwidth must be positive: {self.scrub_bandwidth}"
            )
        if self.read_batching not in (
            MODE_THREAD_COMBINING,
            MODE_TIMEOUT_ASYNC,
            MODE_SYNC,
        ):
            raise ValueError(f"unknown read_batching: {self.read_batching}")

    def hardware_cost(self) -> float:
        """Rough dollar cost of the configured devices (Table 1)."""
        tb = 1024**4
        ssd = self.num_ssds * self.ssd_spec.cost_per_tb * self.ssd_spec.capacity / tb
        if self.enable_tiering:
            ssd += (
                self.num_cold_ssds
                * self.cold_ssd_spec.cost_per_tb
                * self.cold_ssd_spec.capacity
                / tb
            )
        nvm_bytes = self.pwb_capacity * self.num_threads
        nvm = self.nvm_spec.cost_per_tb * nvm_bytes / tb
        dram = self.dram_spec.cost_per_tb * self.svc_capacity / tb
        return ssd + nvm + dram
