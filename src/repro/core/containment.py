"""Failure containment for multi-record placement publishes.

Reclamation, GC, and scan-aware writeback all follow the same shape:
write a batch of records into fresh Value Storage chunks, then publish
each new location to the HSIT one entry at a time.  When a device error
interrupts the publish loop, the batch is split three ways:

* entries *before* the failure index are fully published (their old
  copies were superseded as the loop went);
* the entry *at* the failure index is ambiguous — the publish may have
  made the new pointer durable before the error surfaced;
* entries *after* it never published.

Unpublished placements sit in chunks with their validity bit set but no
forward pointer naming them — exactly the "valid but unreachable"
state the auditor's I4-converse check forbids.  This helper invalidates
them (log garbage, reclaimed when the chunk is), and resolves the
ambiguous entry by consulting the HSIT word through the simulator's
omniscient (untimed, never fault-injected) accessor.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import pointers as ptr

# One batch entry: (hsit_idx, (chunk_id, offset, size), old_vs, old_chunk, old_off)
# old_vs None means there is no Value Storage copy to supersede (the
# old copy lives in a PWB, or the record is brand new).
PublishEntry = Tuple[int, Tuple[int, int, int], Optional[object], int, int]


def resolve_partial_publish(
    hsit, vs, entries: List[PublishEntry], published: int
) -> None:
    """Clean up after a publish loop that died at index ``published``."""
    for i in range(published, len(entries)):
        hsit_idx, (chunk_id, offset, _size), old_vs, old_chunk, old_off = entries[i]
        landed = False
        if i == published:
            word = ptr.decode(ptr.clear_dirty(hsit.location_word(hsit_idx)))
            landed = (
                word.in_vs
                and word.vs_id == vs.vs_id
                and word.chunk_id == chunk_id
                and word.vs_offset == offset
            )
        if landed:
            # The new pointer did land: treat like a completed publish.
            if old_vs is not None:
                old_vs.invalidate(old_chunk, old_off)
        else:
            vs.invalidate(chunk_id, offset)
