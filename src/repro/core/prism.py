"""The Prism key-value store (§4–§5).

Wires the five components together over simulated devices:

* writes persist to the per-thread PWB on NVM, then the HSIT forward
  pointer flips (the linearization point), making the critical path a
  few hundred nanoseconds of NVM work;
* background reclamation drains PWBs into log-structured Value Storage
  chunks on SSD; greedy GC keeps free chunks available;
* reads resolve PWB → SVC → Value Storage, with SSD misses combined
  across threads into io_uring batches, and fetched values admitted to
  the scan-aware DRAM cache.

A note on the simulation: background work (reclamation, GC, cache
maintenance) executes synchronously in *code* the moment it is
triggered, but its effects are timestamped on background virtual
threads — foreground latency only feels them through device-bandwidth
contention and PWB-full stalls, matching the paper's "off the critical
path" design.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.read_cache import ReadCache
from repro.core import pointers as ptr
from repro.core.config import PrismConfig
from repro.core.containment import resolve_partial_publish
from repro.core.epoch import EpochManager
from repro.core.hsit import ENTRY_BYTES, HSIT
from repro.core.pwb import PersistentWriteBuffer, PWBFullError
from repro.core.svc import ScanAwareValueCache
from repro.core.tcq import ThreadCombiner
from repro.core.value_storage import ValueStorage
from repro.faults.errors import (
    CorruptionError,
    DeviceError,
    NoHealthyStorageError,
    ReadDegradedError,
)
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryExecutor
from repro.obs.metrics import EventLog, MetricsRegistry, NULL_REGISTRY
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.crash import CrashPoint
from repro.storage.dram import DRAMDevice
from repro.storage.iouring import IORequest
from repro.storage.nvm import NVMDevice
from repro.storage.ssd import SSDDevice
from repro.index.pactree import PACTree
from repro.tiering import TierManager


class _WholeStoreCrash:
    """Adapter letting a CrashPoint power-fail an entire store."""

    def __init__(self, store: "Prism") -> None:
        self.store = store

    def power_failure(self) -> None:
        self.store.crash()


class Prism:
    """A key-value store for heterogeneous storage devices."""

    def __init__(
        self,
        config: Optional[PrismConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.config = config or PrismConfig()
        cfg = self.config
        # A caller-supplied clock lets several instances share one
        # virtual timeline (cluster shards); standalone stores keep a
        # private clock, exactly as before.
        self.clock = clock if clock is not None else VirtualClock()
        # Per-op phase tracing goes through this registry.  The no-op
        # default keeps the hooks zero-cost; the benchmark driver swaps
        # in a per-run registry when the store was built with
        # ``enable_metrics``.
        if metrics is not None:
            self.metrics = metrics
        elif cfg.enable_metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY

        # --- devices ---------------------------------------------------
        self.nvm = NVMDevice(cfg.nvm_spec)
        self.dram = DRAMDevice(cfg.dram_spec)
        self.ssds: List[SSDDevice] = [
            SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)
        ]
        # Cold QLC pool (ISSUE 9): extra Value Storages on cheap
        # high-capacity devices.  Empty when tiering is off, so every
        # loop below degenerates to the fast-only layout.
        self.cold_ssds: List[SSDDevice] = []
        if cfg.enable_tiering:
            self.cold_ssds = [
                SSDDevice(cfg.cold_ssd_spec, name=f"cssd{i}")
                for i in range(cfg.num_cold_ssds)
            ]
        # Chunk mirroring (ISSUE 3): one dedicated mirror SSD per Value
        # Storage — a different device, so chunk addresses never collide
        # and a primary death leaves every record recoverable.  Mirrors
        # align with storage order (fast first, then cold), so vs_id
        # indexes both lists.
        self.mirror_ssds: List[SSDDevice] = []
        if cfg.mirror_chunks:
            self.mirror_ssds = [
                SSDDevice(cfg.ssd_spec, name=f"ssd{i}m")
                for i in range(cfg.num_ssds)
            ] + [
                SSDDevice(cfg.cold_ssd_spec, name=f"cssd{i}m")
                for i in range(len(self.cold_ssds))
            ]

        # --- components --------------------------------------------------
        self.epoch = EpochManager()
        self.hsit = HSIT(self.nvm, cfg.hsit_capacity)
        self.index = PACTree(self.nvm, leaf_capacity=cfg.index_leaf_capacity)
        self.pwbs: List[PersistentWriteBuffer] = [
            PersistentWriteBuffer(
                self.nvm, i, cfg.pwb_capacity, checksums=cfg.enable_checksums
            )
            for i in range(cfg.num_threads)
        ]
        self.storages: List[ValueStorage] = [
            ValueStorage(
                i,
                ssd,
                cfg.chunk_size,
                cfg.queue_depth,
                checksums=cfg.enable_checksums,
                mirror=self.mirror_ssds[i] if self.mirror_ssds else None,
            )
            for i, ssd in enumerate(self.ssds + self.cold_ssds)
        ]
        self.combiners: List[ThreadCombiner] = [
            ThreadCombiner(
                vs.ring,
                mode=cfg.read_batching,
                combine_window=cfg.combine_window,
                timeout_window=cfg.timeout_window,
            )
            for vs in self.storages
        ]
        self.svc = ScanAwareValueCache(
            self.dram,
            cfg.svc_capacity,
            self.hsit,
            self.epoch,
            scan_aware=cfg.svc_scan_aware,
            page_mode=cfg.svc_page_mode,
        )
        # DRAM read-cache tier (ISSUE 6): consulted by get() before the
        # index.  None when disabled — the read path then costs one
        # attribute load and a None check, and runs are bit-identical
        # to a build without the cache subsystem.
        self.read_cache: Optional[ReadCache] = None
        if cfg.enable_read_cache:
            self.read_cache = ReadCache(
                self.dram,
                cfg.read_cache_capacity,
                sketch_width=cfg.read_cache_sketch_width,
            )
        # Hot/cold tiered placement (ISSUE 9): None when disabled —
        # every branch below then costs one attribute load and a None
        # check, and runs are bit-identical to a build without the
        # tiering subsystem.
        self.tiering: Optional[TierManager] = None
        if cfg.enable_tiering:
            self.tiering = TierManager(cfg)

        # --- background threads ----------------------------------------
        self._bg_reclaim = VThread(-1, self.clock, name="bg-reclaim", background=True)
        self._bg_gc = VThread(-2, self.clock, name="bg-gc", background=True)
        self._bg_cache = VThread(-3, self.clock, name="bg-cache", background=True)
        self._bg_tier = VThread(-4, self.clock, name="bg-tier", background=True)
        self._default_thread = VThread(0, self.clock, name="caller")

        # --- stats -------------------------------------------------------
        self.bytes_put = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.scans = 0
        self.reclaims = 0
        # Structured GC/reclaim history (always on: both are rare, and
        # Figure 17 needs the events regardless of the metrics switch).
        self.events = EventLog("prism")
        self._ops = 0
        # Hot-path caches: _tick()/put() run once per op and two-hop
        # ``self.config.*`` chases show up in profiles.
        self._epoch_every = cfg.epoch_advance_every
        self._enable_pwb = cfg.enable_pwb
        self._pwb_watermark = cfg.pwb_watermark
        self._rr_storage = itertools.count()
        self._rr_cold = itertools.count()
        self._crashed = False
        # GC reentrancy guard: cross-tier relocation can trigger GC on
        # the destination, which could relocate back and re-enter GC on
        # a storage whose victim records are already mid-move.
        self._gc_active: set = set()

        # --- fault injection & retries ---------------------------------
        self.retry_exec = RetryExecutor(
            cfg.retry, injector=None, events=self.events, metrics=self.metrics
        )
        self.injector: Optional[FaultInjector] = None
        if cfg.faults is not None:
            self.injector = FaultInjector(
                cfg.faults, events=self.events, metrics=self.metrics
            )
            self.retry_exec.injector = self.injector
            self.nvm.attach_injector(self.injector)
            for ssd in self.ssds:
                ssd.attach_injector(self.injector)
            for ssd in self.cold_ssds:
                ssd.attach_injector(self.injector)
            for ssd in self.mirror_ssds:
                ssd.attach_injector(self.injector)
            # Failed flushes retry inside the device, covering every
            # persist point (PWB appends, HSIT publishes) at once.
            self.nvm.attach_retry(self.retry_exec)
            for combiner in self.combiners:
                combiner.retry = self.retry_exec

        # --- crash exploration -----------------------------------------
        # One store-wide crash point shared by every instrumented
        # component; unarmed it costs one no-op call per label.
        self.crash_point = CrashPoint(_WholeStoreCrash(self))
        self.hsit.crash_point = self.crash_point
        for pwb in self.pwbs:
            pwb.crash_point = self.crash_point
        for vs in self.storages:
            vs.crash_point = self.crash_point

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "Prism"

    @property
    def gc_events(self) -> List[float]:
        """GC start times (compat shim over the structured event log)."""
        return [float(e["at"]) for e in self.events.of_kind("gc")]

    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    def _check_key(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise TypeError(f"keys must be non-empty bytes, got {key!r}")
        if self._crashed:
            raise RuntimeError("store crashed; call recover() first")

    def _pwb_for(self, thread: VThread) -> PersistentWriteBuffer:
        return self.pwbs[thread.tid % len(self.pwbs)]

    def _vs_dead(self, vs: ValueStorage) -> bool:
        return self.injector is not None and self.injector.is_dead(vs.ssd.name)

    def _healthy_storages(self) -> List[ValueStorage]:
        """Value Storages whose device still works (degraded mode §ISSUE).

        With no injector every storage is healthy and this is the plain
        list — zero overhead on the fault-free path.
        """
        if self.injector is None:
            return self.storages
        healthy = [vs for vs in self.storages if not self.injector.is_dead(vs.ssd.name)]
        if not healthy:
            raise NoHealthyStorageError("every Value Storage device is dead")
        return healthy

    def _retrying_write(
        self, vs: ValueStorage, at: float, records: List[Tuple[int, bytes]]
    ):
        """write_records with the store's retry policy applied.

        Safe to retry wholesale: on error write_records releases every
        chunk it allocated, so a repeat attempt starts clean.
        """
        if self.injector is None:
            return vs.write_records(at, records)
        return self.retry_exec.run_at(
            lambda t: vs.write_records(t, records),
            at,
            device=vs.ssd.name,
            op="vs_write",
        )

    def _placement_storages(self) -> List[ValueStorage]:
        """Storages eligible for new-data placement.

        Temperature policy: new data lands on the fast tier only
        (reclaim demotes its cold share explicitly); the spread
        baseline and a tiering-off store use every healthy storage.
        Falls back to the full healthy set when the whole fast tier is
        dead — degraded, but writable beats read-only.
        """
        tier = self.tiering
        if tier is None or not tier.temperature_policy:
            return self._healthy_storages()
        fast = self.storages[: tier.num_fast]
        if self.injector is not None:
            fast = [
                vs for vs in fast if not self.injector.is_dead(vs.ssd.name)
            ]
            if not fast:
                return self._healthy_storages()
        return fast

    def _pick_storage(self, at: float) -> ValueStorage:
        """Prefer an idle healthy Value Storage; else least loaded (§5.2)."""
        candidates = self._placement_storages()
        start = next(self._rr_storage)
        n = len(candidates)
        for i in range(n):
            vs = candidates[(start + i) % n]
            if vs.ring.idle_at(at):
                return vs
        return min(candidates, key=lambda s: s.ring.inflight_at(at))

    def _pick_cold_storage(self, at: float) -> Optional[ValueStorage]:
        """Healthy cold Value Storage with free space: rotating-start
        idle scan, else least loaded.  Background reclaimers all run at
        quiet timestamps where every ring reports zero in-flight, so a
        bare ``min`` would tie-break onto the first device forever and
        saturate it while its siblings idle."""
        tier = self.tiering
        cold = self.storages[tier.num_fast :]
        if self.injector is not None:
            cold = [
                vs for vs in cold if not self.injector.is_dead(vs.ssd.name)
            ]
        cold = [vs for vs in cold if vs.free_chunks > 0]
        if not cold:
            return None
        start = next(self._rr_cold)
        n = len(cold)
        for i in range(n):
            vs = cold[(start + i) % n]
            if vs.ring.idle_at(at):
                return vs
        return min(cold, key=lambda s: s.ring.inflight_at(at))

    def _promotion_target(self, at: float) -> Optional[ValueStorage]:
        """A healthy fast Value Storage with promotion headroom.

        None when every fast storage is dead or below the headroom
        floor — promoting into a full fast tier would just thrash
        against the next demotion round.
        """
        tier = self.tiering
        fast = self.storages[: tier.num_fast]
        if self.injector is not None:
            fast = [
                vs for vs in fast if not self.injector.is_dead(vs.ssd.name)
            ]
        fast = [vs for vs in fast if vs.free_fraction() > tier.fast_headroom]
        if not fast:
            return None
        return max(fast, key=lambda s: s.free_chunks)

    @staticmethod
    def _batch_fits(vs: ValueStorage, records) -> bool:
        """Would ``vs.write_records`` find enough free chunks for this
        batch?  Mirrors its greedy first-fit packing exactly."""
        chunks, room = 0, 0
        for _idx, value in records:
            need = vs.record_bytes(len(value))
            if need > room:
                chunks += 1
                room = vs.chunk_size
            room -= need
        return chunks <= vs.free_chunks

    def _fast_fit_storage(self, records, at: float):
        """Least-loaded healthy fast storage that can host ``records``,
        or None when the whole fast tier is out of room."""
        fits = [
            vs
            for vs in self._placement_storages()
            if self._batch_fits(vs, records)
        ]
        if not fits:
            return None
        return min(fits, key=lambda s: s.ring.inflight_at(at))

    def _fast_tier_pressure(self) -> bool:
        """Is the fast tier close enough to its GC threshold that
        reclaim should stop honoring recency protection?  Placing
        borderline records cold now beats GC demoting them moments
        later (one write instead of two)."""
        fast = self.storages[: self.tiering.num_fast]
        free = sum(vs.free_chunks for vs in fast)
        total = sum(vs.num_chunks for vs in fast)
        return free / total < max(0.25, 2 * self.config.gc_free_threshold)

    def _tick(self) -> None:
        if self._crashed:
            # A simulated power failure fired mid-operation; the unwind
            # must not touch (or advance epochs over) post-crash state.
            return
        self._ops += 1
        if self._ops % self._epoch_every == 0:
            self.epoch.try_advance()
        # pending_work() inlined: when used <= capacity the backlog is
        # just len(_pending), so the disjunction below is equivalent.
        svc = self.svc
        if svc.used > svc.capacity or len(svc._pending) > 256:
            self._run_cache_maintenance()
        tier = self.tiering
        if tier is not None and tier.has_pending():
            self._drain_promotions()

    def _run_cache_maintenance(self) -> None:
        if self._bg_cache.now < self.clock.now:
            self._bg_cache.now = self.clock.now
        self.svc.process_background(self._bg_cache, self.storages)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        """Insert or update; durable when this returns."""
        self._check_key(key)
        if not isinstance(value, (bytes, bytearray)) or not value:
            raise TypeError(f"values must be non-empty bytes, got {type(value)}")
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        is_new = False
        inserted = False
        idx = None
        try:
            # Phase attribution is gated on ``m.enabled`` so the obs-off
            # path costs one attribute load per site — no null-instrument
            # calls, no f-strings, no per-op allocation.
            enabled = m.enabled
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if enabled:
                m.phase("put", "index_lookup", thread.now - t0)
            is_new = idx is None
            cp = self.crash_point
            if is_new:
                idx = self.hsit.allocate(thread)
                if cp.active:
                    cp.maybe_crash("put.allocated")
            vlen = len(value)
            if self._enable_pwb:
                pwb = self.pwbs[thread.tid % len(self.pwbs)]
                t0 = thread.now
                # Fast path: the record fits without applying a pending
                # release (would_fit inlined; ceil-to-8 == record_bytes).
                # Deferring poll() is safe — the tail of put() always
                # polls before the reclaim-watermark check, and release
                # application never touches virtual time.
                need = (pwb.header_size + vlen + 7) & ~7
                capacity = pwb.capacity
                head = pwb.head
                pos = head % capacity
                start = head + capacity - pos if pos + need > capacity else head
                if (start + need) - pwb.tail > capacity:
                    self._ensure_pwb_space(pwb, vlen, thread)
                if enabled:
                    m.phase("put", "pwb_space_wait", thread.now - t0)
                t0 = thread.now
                offset = pwb.append(idx, value, thread)
                if enabled:
                    m.phase("put", "pwb_append", thread.now - t0)
                word = ptr.encode_pwb(pwb.pwb_id, offset)
            else:
                t0 = thread.now
                vs = self._pick_storage(thread.now)
                chunk_id, off = self._append_sync_retrying(vs, thread, idx, value)
                if enabled:
                    m.phase("put", "vs_append", thread.now - t0)
                word = ptr.encode_vs(vs.vs_id, chunk_id, off)
                self._maybe_gc(vs, thread.now)
            if cp.active:
                cp.maybe_crash("put.appended")
            t0 = thread.now
            old_word = self.hsit.publish_location_word(idx, word, thread)
            self._supersede_word(idx, old_word, thread)
            if is_new:
                self.index.insert(key, idx, thread)
                inserted = True
            if enabled:
                m.phase("put", "publish", thread.now - t0)
            if cp.active:
                cp.maybe_crash("put.done")
            tier = self.tiering
            if tier is not None:
                tier.tracker.touch(idx)
            self.bytes_put += vlen
            self.puts += 1
            if self._enable_pwb:
                # poll() and utilization() inlined (once per put).
                pending = pwb.pending_release
                if pending is not None and thread.now >= pending[1]:
                    pwb.pending_release = None
                    pwb.release_through(pending[0])
                if (
                    (pwb.head - pwb.tail) / pwb.capacity >= self._pwb_watermark
                    and pwb.pending_release is None
                ):
                    self._reclaim(pwb, thread.now)
        except DeviceError:
            # The put failed after allocating a fresh HSIT entry but
            # before the key reached the index: the entry would leak
            # until the next recovery pass.  Return it now — the value
            # record (if persisted) becomes ill-coupled garbage.
            if is_new and idx is not None and not inserted:
                try:
                    self.hsit.free(idx, thread)
                except DeviceError:
                    pass  # NVM itself is failing; recovery will reclaim
            raise
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _append_sync_retrying(
        self, vs: ValueStorage, thread: VThread, idx: int, value: bytes
    ) -> Tuple[int, int]:
        """append_record_sync with retry (no-PWB ablation path)."""
        if self.injector is None:
            return vs.append_record_sync(thread, idx, value)
        return self.retry_exec.run(
            lambda: vs.append_record_sync(thread, idx, value),
            thread=thread,
            device=vs.ssd.name,
            op="vs_append",
        )

    def _supersede(
        self, idx: int, old: ptr.Location, thread: Optional[VThread]
    ) -> None:
        """Invalidate whatever the old forward pointer referenced."""
        if old.in_vs:
            self.storages[old.vs_id].invalidate(old.chunk_id, old.vs_offset)
        entry_id = self.hsit.read_svc(idx, thread)
        if entry_id is not None:
            self.hsit.clear_svc(idx, thread)
            self.svc.invalidate(entry_id, thread)
        if self.read_cache is not None:
            self.read_cache.invalidate_idx(idx)

    def _supersede_word(
        self, idx: int, old_word: int, thread: Optional[VThread]
    ) -> None:
        """:meth:`_supersede` on a raw location word (write hot path —
        extracts VS fields with bit ops instead of decoding)."""
        if old_word & ptr.MEDIUM_MASK == ptr.MEDIUM_VS_BITS:
            self.storages[(old_word >> ptr.VS_ID_SHIFT) & ptr.VS_ID_MASK].invalidate(
                (old_word >> ptr.VS_CHUNK_SHIFT) & ptr.VS_CHUNK_MASK,
                old_word & ptr.VS_OFFSET_MASK,
            )
        hsit = self.hsit
        entry_id = hsit.read_svc(idx, thread)
        if entry_id is not None:
            hsit.clear_svc(idx, thread)
            self.svc.invalidate(entry_id, thread)
        if self.read_cache is not None:
            self.read_cache.invalidate_idx(idx)

    def _ensure_pwb_space(
        self, pwb: PersistentWriteBuffer, value_len: int, thread: VThread
    ) -> None:
        pwb.poll(thread.now)
        if pwb.would_fit(value_len):
            return
        # Wait out an in-flight reclamation, if any.
        if pwb.pending_release is not None:
            thread.wait_until(pwb.reclaim_done_at)
            pwb.poll(thread.now)
            if pwb.would_fit(value_len):
                return
        # Emergency: reclaim synchronously in the critical path.
        self._reclaim(pwb, thread.now)
        thread.wait_until(pwb.reclaim_done_at)
        pwb.poll(thread.now)
        if not pwb.would_fit(value_len):
            raise PWBFullError(
                f"pwb {pwb.pwb_id} cannot host a {value_len}B value"
            )

    # ------------------------------------------------------------------
    # background reclamation (§5.2)
    # ------------------------------------------------------------------
    def _reclaim(self, pwb: PersistentWriteBuffer, at: float) -> None:
        bg = self._bg_reclaim
        if bg.now < at:
            bg.now = at
        if pwb.pending_release is not None:
            # An earlier reclamation is still in flight; chain after it.
            bg.wait_until(pwb.reclaim_done_at)
            pwb.poll(bg.now)
        start_at = bg.now
        upto = pwb.head
        region = upto - pwb.tail
        if region <= 0:
            return
        # Scan the region and check well-coupledness (two NVM reads per
        # value: the backward pointer and the HSIT forward pointer).
        live: List[Tuple[int, bytes]] = []
        count = 0
        # Well-coupled iff the (dirty-cleared) forward pointer encodes
        # exactly this buffer and offset — one word comparison per
        # record instead of a Location decode.
        hsit = self.hsit
        nvm_load_word = hsit.nvm.load_word
        hsit_base = hsit._base
        expect_base = ptr.MEDIUM_PWB_BITS | (pwb.pwb_id << ptr.PWB_ID_SHIFT)
        for offset, hsit_idx, value in pwb.records_between(pwb.tail, upto):
            count += 1
            word = nvm_load_word(None, hsit_base + hsit_idx * ENTRY_BYTES)
            if word & ~ptr.DIRTY_BIT == expect_base | offset:
                live.append((hsit_idx, value))
        self.nvm.charge_read(bg, min(region, pwb.capacity) + 16 * count)
        if live:
            # Reclaim is the first placement decision (ISSUE 9):
            # records that are neither frequent nor recent skip the
            # fast tier entirely and land cold — PrismDB's tiered
            # compaction, applied at PWB drain time.
            tier = self.tiering
            cold_batch: List[Tuple[int, bytes]] = []
            if tier is not None and tier.temperature_policy:
                tracker = tier.tracker
                pressure = self._fast_tier_pressure()
                hot_batch = []
                for hsit_idx, value in live:
                    if tracker.is_hot(hsit_idx, pressure):
                        hot_batch.append((hsit_idx, value))
                    else:
                        cold_batch.append((hsit_idx, value))
            else:
                hot_batch = live
            if cold_batch:
                cvs = self._pick_cold_storage(bg.now)
                if cvs is None:
                    # No cold capacity left: everything stays fast.
                    hot_batch = live
                else:
                    if not self._reclaim_batch(
                        pwb, cvs, cold_batch, bg, start_at, "tier.demote"
                    ):
                        return
                    tier.cold_reclaims += len(cold_batch)
                    self.metrics.counter("tier.cold_reclaims").inc(
                        len(cold_batch)
                    )
                    self._maybe_gc(cvs, bg.now)
            if hot_batch:
                try:
                    vs = self._pick_storage(bg.now)
                except NoHealthyStorageError:
                    self.events.emit(
                        start_at, "reclaim_failed", pwb_id=pwb.pwb_id,
                        phase="write",
                    )
                    self.metrics.counter("faults.reclaim_failures").inc()
                    return
                label = "reclaim"
                if (
                    tier is not None
                    and tier.temperature_policy
                    and not self._batch_fits(vs, hot_batch)
                ):
                    # Hard pressure: the fast tier cannot hold its own
                    # hot set.  Spill the batch cold rather than wedge
                    # the PWB; re-access promotes survivors back once
                    # GC frees fast chunks.
                    alt = self._fast_fit_storage(hot_batch, bg.now)
                    if alt is not None:
                        vs = alt
                    else:
                        cvs = self._pick_cold_storage(bg.now)
                        if cvs is not None:
                            vs, label = cvs, "tier.demote"
                if not self._reclaim_batch(
                    pwb, vs, hot_batch, bg, start_at, label
                ):
                    return
                if label == "tier.demote":
                    tier.spills += len(hot_batch)
                    self.metrics.counter("tier.spills").inc(len(hot_batch))
                self._maybe_gc(vs, bg.now)
        pwb.pending_release = (upto, bg.now)
        pwb.reclaim_done_at = bg.now
        self.reclaims += 1
        self.events.emit(
            start_at,
            "reclaim",
            pwb_id=pwb.pwb_id,
            region_bytes=region,
            scanned_records=count,
            live_records=len(live),
            live_bytes=sum(len(v) for _, v in live),
            duration=bg.now - start_at,
        )

    def _reclaim_batch(
        self,
        pwb: PersistentWriteBuffer,
        vs: ValueStorage,
        records: List[Tuple[int, bytes]],
        bg: VThread,
        start_at: float,
        label: str,
    ) -> bool:
        """Write one reclaim batch into ``vs`` and publish it.

        Returns False on failure, leaving the PWB window unreleased so
        the next trigger rescans it (records already published by an
        earlier batch are no longer well-coupled and drop out of that
        scan).  ``label`` names the crash points: "reclaim" for the
        fast tier — bit-identical to the pre-tiering path — and
        "tier.demote" for cold placement.
        """
        try:
            placements, done = self._retrying_write(vs, bg.now, records)
        except (StorageError, NoHealthyStorageError):
            # The write never stuck (write_records released its
            # chunks).  Leave the PWB untouched: records stay
            # readable in NVM and the next trigger retries, on a
            # healthier storage if one exists.
            self.events.emit(
                start_at, "reclaim_failed", pwb_id=pwb.pwb_id, phase="write"
            )
            self.metrics.counter("faults.reclaim_failures").inc()
            return False
        bg.wait_until(done)
        self.crash_point.maybe_crash(label + ".pre_publish")
        published = 0
        try:
            for (hsit_idx, _value), (chunk_id, offset, _size) in zip(
                records, placements
            ):
                self.hsit.publish_location_word(
                    hsit_idx, ptr.encode_vs(vs.vs_id, chunk_id, offset), bg
                )
                published += 1
        except DeviceError:
            # Containment: placements that never published would be
            # valid-but-unreachable; drop them.  Published entries
            # stand, but the PWB window must NOT be released while
            # any entry still points into it.
            resolve_partial_publish(
                self.hsit,
                vs,
                [
                    (hsit_idx, placement, None, 0, 0)
                    for (hsit_idx, _v), placement in zip(records, placements)
                ],
                published,
            )
            self.events.emit(
                start_at, "reclaim_failed", pwb_id=pwb.pwb_id, phase="publish"
            )
            self.metrics.counter("faults.reclaim_failures").inc()
            return False
        self.crash_point.maybe_crash(label + ".published")
        return True

    # ------------------------------------------------------------------
    # garbage collection in Value Storage (§5.2)
    # ------------------------------------------------------------------
    def _maybe_gc(self, vs: ValueStorage, at: float) -> None:
        if self._vs_dead(vs):
            return  # read-degraded storage: nothing to collect into
        if vs.free_fraction() >= self.config.gc_free_threshold:
            return
        if vs.vs_id in self._gc_active:
            return  # already collecting this storage further up the stack
        self._gc_active.add(vs.vs_id)
        try:
            self._gc(vs, at)
        finally:
            self._gc_active.discard(vs.vs_id)

    def _gc(self, vs: ValueStorage, at: float) -> None:
        bg = self._bg_gc
        if bg.now < at:
            bg.now = at
        start_at = bg.now
        free_before = vs.free_chunks
        victims = vs.gc_victims(self.config.gc_batch_chunks)
        moves: List[Tuple[int, bytes, int, int]] = []
        read_done = bg.now
        # Bound once: the slot loop runs per live record per victim.
        moves_append = moves.append
        live_records_of = vs.live_records_of
        read_record_raw = vs.read_record_raw
        try:
            for chunk_id in victims:
                for slot in live_records_of(chunk_id):
                    try:
                        _, value = read_record_raw(chunk_id, slot.offset)
                    except CorruptionError:
                        # A rotted record would poison the GC move; heal
                        # it from a repair source, or leave it in place
                        # (it stays valid; a later read surfaces the
                        # typed error and retries the repair).
                        self.metrics.counter("corruption.detected").inc()
                        from repro.repair import fetch_value

                        fetched = fetch_value(
                            self, slot.hsit_idx, vs.vs_id, chunk_id, slot.offset
                        )
                        if fetched is None:
                            self.events.emit(
                                bg.now,
                                "gc_skipped_corrupt",
                                vs_id=vs.vs_id,
                                chunk=chunk_id,
                                offset=slot.offset,
                            )
                            continue
                        value = fetched[0]
                    moves_append((slot.hsit_idx, value, chunk_id, slot.offset))
                read_done = max(
                    read_done,
                    vs.ssd.read_async(bg.now, chunk_id * vs.chunk_size, vs.chunk_size),
                )
        except DeviceError:
            # Nothing moved or invalidated yet: abort this GC round.
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="read")
            self.metrics.counter("faults.gc_failures").inc()
            return
        bg.wait_until(read_done)
        tier = self.tiering
        if tier is not None and tier.temperature_policy and moves:
            kept = self._tiered_gc_partition(vs, moves, bg, start_at)
            if kept is None:
                # A cross-tier relocation failed mid-batch; containment
                # already restored consistency.  Abort this GC round —
                # every un-relocated record is still valid in place.
                self.events.emit(
                    start_at, "gc_failed", vs_id=vs.vs_id, phase="relocate"
                )
                self.metrics.counter("faults.gc_failures").inc()
                return
            moves = kept
        if not moves:
            self.events.emit(
                start_at,
                "gc",
                vs_id=vs.vs_id,
                victim_chunks=len(victims),
                moved_records=0,
                moved_bytes=0,
                chunks_freed=vs.free_chunks - free_before,
                duration=bg.now - start_at,
            )
            return
        try:
            placements, done = self._retrying_write(
                vs, bg.now, [(idx, value) for idx, value, _, _ in moves]
            )
        except StorageError:
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="write")
            self.metrics.counter("faults.gc_failures").inc()
            return
        bg.wait_until(done)
        self.crash_point.maybe_crash("gc.pre_publish")
        published = 0
        rc = self.read_cache
        publish_word = self.hsit.publish_location_word
        encode_vs = ptr.encode_vs
        invalidate = vs.invalidate
        vs_id = vs.vs_id
        try:
            for (idx, value, old_chunk, old_off), (chunk_id, offset, _sz) in zip(
                moves, placements
            ):
                publish_word(idx, encode_vs(vs_id, chunk_id, offset), bg)
                published += 1
                invalidate(old_chunk, old_off)
                if rc is not None:
                    # GC freed the chunk the cached copy was coupled
                    # to; drop it with the relocation publish rather
                    # than risk serving from a reference into a
                    # reclaimed region.
                    rc.invalidate_idx(idx)
        except DeviceError:
            resolve_partial_publish(
                self.hsit,
                vs,
                [
                    (idx, placement, vs, old_chunk, old_off)
                    for (idx, _v, old_chunk, old_off), placement in zip(
                        moves, placements
                    )
                ],
                published,
            )
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="publish")
            self.metrics.counter("faults.gc_failures").inc()
            return
        self.crash_point.maybe_crash("gc.published")
        vs.gc_runs += 1
        moved_bytes = sum(len(value) for _, value, _, _ in moves)
        vs.gc_moved_bytes += moved_bytes
        self.events.emit(
            start_at,
            "gc",
            vs_id=vs.vs_id,
            victim_chunks=len(victims),
            moved_records=len(moves),
            moved_bytes=moved_bytes,
            chunks_freed=vs.free_chunks - free_before,
            duration=bg.now - start_at,
        )

    # ------------------------------------------------------------------
    # tiered placement (ISSUE 9)
    # ------------------------------------------------------------------
    def _tiered_gc_partition(
        self,
        vs: ValueStorage,
        moves: List[Tuple[int, bytes, int, int]],
        bg: VThread,
        start_at: float,
    ) -> Optional[List[Tuple[int, bytes, int, int]]]:
        """Split GC survivors by temperature and relocate across tiers.

        Fast-tier GC demotes cold survivors to the cold pool (how
        aggressively scales with space pressure); cold-tier GC promotes
        rewarmed survivors back to fast.  Returns the moves that stay
        in ``vs`` for the normal local rewrite, or None when a
        relocation batch failed and the whole GC round must abort.
        """
        tier = self.tiering
        tracker = tier.tracker
        keep: List[Tuple[int, bytes, int, int]] = []
        batch: List[Tuple[int, bytes, int, int]] = []
        if not tier.is_cold_vs(vs.vs_id):
            # Demotion ladder: the emptier the storage, the more the
            # recency/frequency protections relax — at the bottom rung
            # everything movable leaves, or GC livelocks rewriting hot
            # data into a tier with no room for it.
            free_frac = vs.free_fraction()
            thr = self.config.gc_free_threshold
            pressure = self._fast_tier_pressure()
            for mv in moves:
                if free_frac < thr * 0.25:
                    hot = False
                elif free_frac < thr * 0.5:
                    hot = tracker.frequency(mv[0]) >= tracker.hot_threshold
                else:
                    hot = tracker.is_hot(mv[0], pressure)
                (keep if hot else batch).append(mv)
            if not batch:
                return moves
            dest = self._pick_cold_storage(bg.now)
            if dest is None:
                return moves  # cold pool full/dead: rewrite locally
            if not self._relocate_batch(vs, dest, batch, bg, "tier.demote"):
                return None
            nbytes = sum(len(v) for _, v, _, _ in batch)
            tier.demotions += len(batch)
            tier.demoted_bytes += nbytes
            self.metrics.counter("tier.demotions").inc(len(batch))
            self.events.emit(
                start_at,
                "tier_demote",
                src_vs=vs.vs_id,
                dest_vs=dest.vs_id,
                records=len(batch),
                bytes=nbytes,
            )
            self._maybe_gc(dest, bg.now)
            return keep
        # Cold-tier GC: survivors that warmed back up go fast again.
        for mv in moves:
            if tracker.should_promote(mv[0]):
                batch.append(mv)
            else:
                keep.append(mv)
        if not batch:
            return moves
        dest = self._promotion_target(bg.now)
        if dest is None:
            return moves  # no fast headroom: stay cold for now
        if not self._relocate_batch(vs, dest, batch, bg, "tier.promote"):
            return None
        nbytes = sum(len(v) for _, v, _, _ in batch)
        tier.promotions += len(batch)
        tier.promoted_bytes += nbytes
        self.metrics.counter("tier.promotions").inc(len(batch))
        self.events.emit(
            start_at,
            "tier_promote",
            trigger="gc",
            src_vs=vs.vs_id,
            dest_vs=dest.vs_id,
            records=len(batch),
            bytes=nbytes,
        )
        self._maybe_gc(dest, bg.now)
        return keep

    def _relocate_batch(
        self,
        src: ValueStorage,
        dest: ValueStorage,
        batch: List[Tuple[int, bytes, int, int]],
        bg: VThread,
        label: str,
    ) -> bool:
        """Move live records from ``src`` to ``dest`` (cross-tier GC).

        Entries are ``(hsit_idx, value, old_chunk, old_off)`` within
        ``src``.  Publish-then-invalidate per record, with the standard
        partial-publish containment on failure.  Returns False when the
        batch did not fully land: a failed write changed nothing, a
        partial publish was resolved by containment — either way the
        caller must abort its GC round rather than re-move entries
        whose old slots may already be invalid.
        """
        records = [(idx, value) for idx, value, _, _ in batch]
        try:
            placements, done = self._retrying_write(dest, bg.now, records)
        except (StorageError, NoHealthyStorageError):
            return False
        bg.wait_until(done)
        self.crash_point.maybe_crash(label + ".pre_publish")
        published = 0
        rc = self.read_cache
        try:
            for (idx, _value, old_chunk, old_off), (chunk_id, offset, _sz) in zip(
                batch, placements
            ):
                self.hsit.publish_location_word(
                    idx, ptr.encode_vs(dest.vs_id, chunk_id, offset), bg
                )
                published += 1
                src.invalidate(old_chunk, old_off)
                if rc is not None:
                    rc.invalidate_idx(idx)
        except DeviceError:
            resolve_partial_publish(
                self.hsit,
                dest,
                [
                    (idx, placement, src, old_chunk, old_off)
                    for (idx, _v, old_chunk, old_off), placement in zip(
                        batch, placements
                    )
                ],
                published,
            )
            return False
        self.crash_point.maybe_crash(label + ".published")
        return True

    def _drain_promotions(self) -> None:
        """Background promotion: republish warmed-up cold values fast.

        Runs on the tier VThread, so foreground requests only feel it
        through device contention.  Fresh-key protection: every queued
        entry carries the pointer word observed at read time; an entry
        whose word has changed since (client put, delete, or a GC
        relocation) is dropped — promotion never clobbers a newer
        value.  The drain runs synchronously in code, so nothing can
        intervene between this check and the publish below.
        """
        tier = self.tiering
        bg = self._bg_tier
        if bg.now < self.clock.now:
            bg.now = self.clock.now
        start_at = bg.now
        hsit = self.hsit
        fresh: List[Tuple[int, int, bytes]] = []
        for idx, expected, value in tier.take_pending():
            if ptr.clear_dirty(hsit.location_word(idx)) != expected:
                tier.promotions_stale += 1
                continue
            fresh.append((idx, expected, value))
        if not fresh:
            return
        dest = self._promotion_target(bg.now)
        if dest is None:
            return  # no fast headroom; the cold copies stay valid
        try:
            placements, done = self._retrying_write(
                dest, bg.now, [(idx, value) for idx, _e, value in fresh]
            )
        except (StorageError, NoHealthyStorageError):
            return
        bg.wait_until(done)
        self.crash_point.maybe_crash("tier.promote.pre_publish")
        olds = [ptr.decode(expected) for _i, expected, _v in fresh]
        published = 0
        rc = self.read_cache
        try:
            for (idx, _e, _value), old, (chunk_id, offset, _sz) in zip(
                fresh, olds, placements
            ):
                self.hsit.publish_location_word(
                    idx, ptr.encode_vs(dest.vs_id, chunk_id, offset), bg
                )
                published += 1
                self.storages[old.vs_id].invalidate(old.chunk_id, old.vs_offset)
                if rc is not None:
                    rc.invalidate_idx(idx)
        except DeviceError:
            resolve_partial_publish(
                self.hsit,
                dest,
                [
                    ((f[0]), placement, self.storages[old.vs_id],
                     old.chunk_id, old.vs_offset)
                    for f, old, placement in zip(fresh, olds, placements)
                ],
                published,
            )
            return
        self.crash_point.maybe_crash("tier.promote.published")
        nbytes = sum(len(value) for _i, _e, value in fresh)
        tier.promotions += len(fresh)
        tier.promoted_bytes += nbytes
        self.metrics.counter("tier.promotions").inc(len(fresh))
        self.events.emit(
            start_at,
            "tier_promote",
            trigger="read",
            dest_vs=dest.vs_id,
            records=len(fresh),
            bytes=nbytes,
        )
        self._maybe_gc(dest, bg.now)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Point lookup; returns None for missing keys."""
        self._check_key(key)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            self.gets += 1
            # DRAM read-cache tier: a hit short-circuits the whole
            # index -> HSIT -> PWB/VS path at DRAM cost.  Coherent by
            # construction — every publish invalidates synchronously —
            # so a hit never returns superseded bytes.
            rc = self.read_cache
            if rc is not None:
                t0 = thread.now
                cached = rc.lookup(key, thread)
                if cached is not None:
                    if m.enabled:
                        m.phase("get", "cache_hit", thread.now - t0)
                        m.counter("read.cache_hits").inc()
                    return cached
                if m.enabled:
                    m.counter("read.cache_misses").inc()
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if m.enabled:
                m.phase("get", "index_lookup", thread.now - t0)
            if idx is None:
                return None
            value = self._read_value(idx, key, thread)
            if rc is not None and value is not None:
                t0 = thread.now
                rc.admit(key, idx, value, thread)
                if m.enabled:
                    m.phase("get", "cache_admit", thread.now - t0)
            return value
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _read_value(self, idx: int, key: bytes, thread: VThread) -> Optional[bytes]:
        m = self.metrics
        enabled = m.enabled
        tier = self.tiering
        if tier is not None:
            tier.tracker.touch(idx)
        loc = self.hsit.read_location(idx, thread)
        # Compare the medium field directly: the is_null/in_pwb
        # properties are descriptor calls and this runs on every read.
        medium = loc.medium
        if medium == ptr.MEDIUM_NULL:
            return None
        if medium == ptr.MEDIUM_PWB:
            t0 = thread.now
            _, value = self.pwbs[loc.pwb_id].read(loc.pwb_offset, thread)
            if enabled:
                m.phase("get", "pwb_read", thread.now - t0)
                m.counter("read.pwb_hits").inc()
            return value
        # Value Storage — try the DRAM cache first (Figure 2 ➍ over ➌).
        if self.config.enable_svc:
            entry_id = self.hsit.read_svc(idx, thread)
            if entry_id is not None:
                t0 = thread.now
                cached = self.svc.lookup(entry_id, thread)
                if cached is not None:
                    if enabled:
                        m.phase("get", "svc_hit", thread.now - t0)
                        m.counter("read.svc_hits").inc()
                    return cached
                if enabled:
                    m.phase("get", "svc_miss", thread.now - t0)
        if enabled:
            m.counter("read.svc_misses").inc()
        vs = self.storages[loc.vs_id]
        if self._vs_dead(vs):
            # The durable copy sits on a dead device.  With a repair
            # source configured the read re-materialises the record
            # onto healthy storage (read-repair); otherwise the key is
            # read-degraded, not silently missing.
            value = self._repair_read(
                idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset, thread,
                dead_device=True,
            )
        else:
            req = vs.record_request(loc.chunk_id, loc.vs_offset)
            raw = self.combiners[loc.vs_id].read_one(thread, req, m)
            try:
                _, value = vs.parse_record(raw)
            except CorruptionError:
                m.counter("corruption.detected").inc()
                value = self._repair_read(
                    idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset, thread
                )
        if tier is not None:
            if tier.is_cold_vs(loc.vs_id):
                tier.cold_reads += 1
                if tier.temperature_policy and tier.tracker.should_promote(idx):
                    # Queue the value for background promotion, tagged
                    # with the word we read it under (fresh-key guard).
                    tier.enqueue_promotion(
                        idx,
                        ptr.encode_vs(loc.vs_id, loc.chunk_id, loc.vs_offset),
                        value,
                    )
            else:
                tier.fast_reads += 1
        if self.config.enable_svc:
            t0 = thread.now
            self.svc.admit(idx, key, value, thread)
            if enabled:
                m.phase("get", "svc_admit", thread.now - t0)
        return value

    def _repair_read(
        self,
        idx: int,
        key: bytes,
        vs_id: int,
        chunk_id: int,
        offset: int,
        thread: VThread,
        dead_device: bool = False,
    ) -> bytes:
        """Heal one unreadable Value Storage record in the read path.

        Re-materialises the value from a repair source (mirror chunk,
        then an unreclaimed PWB copy), rewrites it through the normal
        publish path onto healthy storage, and returns it.  Raises
        :class:`UnrecoverableCorruptionError` when no intact copy
        exists — typed loss, never silently wrong bytes.  A dead device
        without a mirror keeps PR 2's :class:`ReadDegradedError`.
        """
        vs = self.storages[vs_id]
        if dead_device and vs.mirror is None:
            raise ReadDegradedError(vs.ssd.name, key)
        from repro.repair import read_repair

        return read_repair(self, idx, key, vs_id, chunk_id, offset, thread)

    # ------------------------------------------------------------------
    # scan (§4.4)
    # ------------------------------------------------------------------
    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Range scan: up to ``count`` pairs with key >= start."""
        self._check_key(start)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            t0 = thread.now
            matches = self.index.scan(start, count, thread)
            if m.enabled:
                m.phase("scan", "index_scan", thread.now - t0)
            t0 = thread.now
            results: Dict[bytes, bytes] = {}
            misses: Dict[int, List[Tuple[int, int, int, bytes]]] = {}
            chain_entries: List[Tuple[bytes, int]] = []
            # Bound hot callables once: the loop body runs per matched
            # key and these attribute chains dominated its cost.
            read_location = self.hsit.read_location
            read_svc = self.hsit.read_svc
            enable_svc = self.config.enable_svc
            svc_lookup = self.svc.lookup if enable_svc else None
            pwbs = self.pwbs
            storages = self.storages
            misses_setdefault = misses.setdefault
            for key, idx in matches:
                loc = read_location(idx, thread)
                if loc.in_pwb:
                    _, value = pwbs[loc.pwb_id].read(loc.pwb_offset, thread)
                    results[key] = value
                    continue
                if loc.is_null:
                    continue
                if enable_svc:
                    entry_id = read_svc(idx, thread)
                    if entry_id is not None:
                        cached = svc_lookup(entry_id, thread)
                        if cached is not None:
                            results[key] = cached
                            chain_entries.append((key, entry_id))
                            continue
                if self._vs_dead(storages[loc.vs_id]):
                    value = self._repair_read(
                        idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset,
                        thread, dead_device=True,
                    )
                    results[key] = value
                    if self.config.enable_svc:
                        entry_id = self.svc.admit(idx, key, value, thread)
                        chain_entries.append((key, entry_id))
                    continue
                misses_setdefault(loc.vs_id, []).append(
                    (loc.chunk_id, loc.vs_offset, idx, key)
                )
            for vs_id, items in misses.items():
                for idx, key, value in self._fetch_merged(vs_id, items, thread):
                    results[key] = value
                    if self.config.enable_svc:
                        entry_id = self.svc.admit(idx, key, value, thread)
                        chain_entries.append((key, entry_id))
            if self.config.enable_svc and self.config.svc_scan_aware:
                chain_entries.sort()
                self.svc.link_scan_chain([eid for _, eid in chain_entries])
            if m.enabled:
                m.phase("scan", "fetch", thread.now - t0)
            self.scans += 1
            return [(key, results[key]) for key, _ in matches if key in results]
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _fetch_merged(
        self,
        vs_id: int,
        items: Sequence[Tuple[int, int, int, bytes]],
        thread: VThread,
    ) -> List[Tuple[int, bytes, bytes]]:
        """Read records from one Value Storage, merging adjacent ones.

        Scan-aware reorganization places values of a range contiguously
        in a chunk; merging adjacent records into single IOs is where
        that locality pays off (fewer, larger SSD reads).
        """
        vs = self.storages[vs_id]
        ordered = sorted(items)
        runs: List[List[Tuple[int, int, int, bytes]]] = []
        for item in ordered:
            chunk_id, offset, idx, key = item
            size = vs.slot_size(chunk_id, offset)
            if runs:
                last = runs[-1][-1]
                last_end = last[1] + vs.header_size + vs.slot_size(last[0], last[1])
                if last[0] == chunk_id and offset == last_end:
                    runs[-1].append(item)
                    continue
            runs.append([item])
        requests = []
        spans: List[List[Tuple[int, int, int, bytes]]] = []
        for run in runs:
            first_chunk, first_off, _, _ = run[0]
            last_chunk, last_off, _, _ = run[-1]
            end = last_off + vs.header_size + vs.slot_size(last_chunk, last_off)
            requests.append(
                IORequest(
                    "read",
                    first_chunk * vs.chunk_size + first_off,
                    end - first_off,
                )
            )
            spans.append(run)
        self.combiners[vs_id].read(thread, requests, self.metrics)
        out: List[Tuple[int, bytes, bytes]] = []
        for req, run in zip(requests, spans):
            assert req.result is not None
            base = run[0][1]
            for chunk_id, offset, idx, key in run:
                rel = offset - base
                raw = req.result[rel:]
                try:
                    _, value = vs.parse_record(raw)
                except CorruptionError:
                    self.metrics.counter("corruption.detected").inc()
                    value = self._repair_read(
                        idx, key, vs_id, chunk_id, offset, thread
                    )
                out.append((idx, key, value))
        return out

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        """Remove a key. Returns True when it existed."""
        self._check_key(key)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if m.enabled:
                m.phase("delete", "index_lookup", thread.now - t0)
            if idx is None:
                return False
            self.crash_point.maybe_crash("delete.begin")
            t0 = thread.now
            self.index.delete(key, thread)
            old_word = self.hsit.publish_location_word(idx, 0, thread)
            self._supersede_word(idx, old_word, thread)
            if m.enabled:
                m.phase("delete", "publish", thread.now - t0)
            self.crash_point.maybe_crash("delete.published")
            # The HSIT entry rejoins the free list after two epochs (§5.4).
            self.epoch.retire(lambda i=idx: self.hsit.free(i))
            if self.tiering is not None:
                self.tiering.tracker.forget(idx)
            self.deletes += 1
            return True
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    def flush(self, thread: Optional[VThread] = None) -> None:
        """Drain PWBs into Value Storage and finish background work."""
        at = self.clock.now
        for pwb in self.pwbs:
            pwb.poll(float("inf"))
            if pwb.used > 0:
                self._reclaim(pwb, at)
                pwb.poll(float("inf"))
        self._run_cache_maintenance()
        if self.tiering is not None:
            while self.tiering.has_pending():
                self._drain_promotions()
        for _ in range(3):
            self.epoch.try_advance()

    def close(self) -> None:
        self.flush()
        self.epoch.drain()

    def crash(self) -> None:
        """Simulate power failure across all devices."""
        self.nvm.crash()
        self.index.crash()
        self.dram.crash()
        self.svc.crash()
        if self.read_cache is not None:
            self.read_cache.crash()
        for ssd in self.ssds:
            ssd.crash()
        for ssd in self.cold_ssds:
            ssd.crash()
        for ssd in self.mirror_ssds:
            ssd.crash()
        if self.tiering is not None:
            self.tiering.crash()
        self._crashed = True

    def recover(self, recovery_threads: int = 4) -> "RecoveryReport":
        from repro.core.recovery import recover

        report = recover(self, recovery_threads=recovery_threads)
        self._crashed = False
        return report

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def ssd_bytes_written(self) -> int:
        # Cold-tier writes count too: WAF must charge demotion traffic.
        return sum(ssd.bytes_written for ssd in self.ssds) + sum(
            ssd.bytes_written for ssd in self.cold_ssds
        )

    def waf(self) -> float:
        """SSD-level write amplification (SSD writes / application writes)."""
        if self.bytes_put == 0:
            return 0.0
        return self.ssd_bytes_written() / self.bytes_put

    def nvm_bytes_used(self) -> int:
        return self.nvm.used

    def stats(self) -> Dict[str, float]:
        stats = {
            "puts": self.puts,
            "gets": self.gets,
            "scans": self.scans,
            "deletes": self.deletes,
            "reclaims": self.reclaims,
            "gc_runs": sum(vs.gc_runs for vs in self.storages),
            "svc_hits": self.svc.hits,
            "svc_admissions": self.svc.admissions,
            "svc_evictions": self.svc.evictions,
            "scan_writebacks": self.svc.scan_writebacks,
            "waf": self.waf(),
            "ssd_bytes_written": self.ssd_bytes_written(),
            "nvm_bytes_used": self.nvm_bytes_used(),
            "hsit_entries": self.hsit.allocations - self.hsit.frees,
        }
        # Only present when the tier is on, so cache-off metrics JSONs
        # stay byte-identical to builds without the cache subsystem.
        if self.read_cache is not None:
            stats.update(self.read_cache.stats())
        # Same contract for tiering: the tier.* surface exists only
        # when the cold pool does.
        if self.tiering is not None:
            stats.update(self.tiering.stats(self))
        return stats
