"""The Prism key-value store (§4–§5).

Wires the five components together over simulated devices:

* writes persist to the per-thread PWB on NVM, then the HSIT forward
  pointer flips (the linearization point), making the critical path a
  few hundred nanoseconds of NVM work;
* background reclamation drains PWBs into log-structured Value Storage
  chunks on SSD; greedy GC keeps free chunks available;
* reads resolve PWB → SVC → Value Storage, with SSD misses combined
  across threads into io_uring batches, and fetched values admitted to
  the scan-aware DRAM cache.

A note on the simulation: background work (reclamation, GC, cache
maintenance) executes synchronously in *code* the moment it is
triggered, but its effects are timestamped on background virtual
threads — foreground latency only feels them through device-bandwidth
contention and PWB-full stalls, matching the paper's "off the critical
path" design.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.read_cache import ReadCache
from repro.core import pointers as ptr
from repro.core.config import PrismConfig
from repro.core.containment import resolve_partial_publish
from repro.core.epoch import EpochManager
from repro.core.hsit import ENTRY_BYTES, HSIT
from repro.core.pwb import PersistentWriteBuffer, PWBFullError
from repro.core.svc import ScanAwareValueCache
from repro.core.tcq import ThreadCombiner
from repro.core.value_storage import ValueStorage
from repro.faults.errors import (
    CorruptionError,
    DeviceError,
    NoHealthyStorageError,
    ReadDegradedError,
)
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryExecutor
from repro.obs.metrics import EventLog, MetricsRegistry, NULL_REGISTRY
from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread
from repro.storage.crash import CrashPoint
from repro.storage.dram import DRAMDevice
from repro.storage.nvm import NVMDevice
from repro.storage.ssd import SSDDevice
from repro.index.pactree import PACTree


class _WholeStoreCrash:
    """Adapter letting a CrashPoint power-fail an entire store."""

    def __init__(self, store: "Prism") -> None:
        self.store = store

    def power_failure(self) -> None:
        self.store.crash()


class Prism:
    """A key-value store for heterogeneous storage devices."""

    def __init__(
        self,
        config: Optional[PrismConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.config = config or PrismConfig()
        cfg = self.config
        # A caller-supplied clock lets several instances share one
        # virtual timeline (cluster shards); standalone stores keep a
        # private clock, exactly as before.
        self.clock = clock if clock is not None else VirtualClock()
        # Per-op phase tracing goes through this registry.  The no-op
        # default keeps the hooks zero-cost; the benchmark driver swaps
        # in a per-run registry when the store was built with
        # ``enable_metrics``.
        if metrics is not None:
            self.metrics = metrics
        elif cfg.enable_metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY

        # --- devices ---------------------------------------------------
        self.nvm = NVMDevice(cfg.nvm_spec)
        self.dram = DRAMDevice(cfg.dram_spec)
        self.ssds: List[SSDDevice] = [
            SSDDevice(cfg.ssd_spec, name=f"ssd{i}") for i in range(cfg.num_ssds)
        ]
        # Chunk mirroring (ISSUE 3): one dedicated mirror SSD per Value
        # Storage — a different device, so chunk addresses never collide
        # and a primary death leaves every record recoverable.
        self.mirror_ssds: List[SSDDevice] = []
        if cfg.mirror_chunks:
            self.mirror_ssds = [
                SSDDevice(cfg.ssd_spec, name=f"ssd{i}m")
                for i in range(cfg.num_ssds)
            ]

        # --- components --------------------------------------------------
        self.epoch = EpochManager()
        self.hsit = HSIT(self.nvm, cfg.hsit_capacity)
        self.index = PACTree(self.nvm, leaf_capacity=cfg.index_leaf_capacity)
        self.pwbs: List[PersistentWriteBuffer] = [
            PersistentWriteBuffer(
                self.nvm, i, cfg.pwb_capacity, checksums=cfg.enable_checksums
            )
            for i in range(cfg.num_threads)
        ]
        self.storages: List[ValueStorage] = [
            ValueStorage(
                i,
                ssd,
                cfg.chunk_size,
                cfg.queue_depth,
                checksums=cfg.enable_checksums,
                mirror=self.mirror_ssds[i] if self.mirror_ssds else None,
            )
            for i, ssd in enumerate(self.ssds)
        ]
        self.combiners: List[ThreadCombiner] = [
            ThreadCombiner(
                vs.ring,
                mode=cfg.read_batching,
                combine_window=cfg.combine_window,
                timeout_window=cfg.timeout_window,
            )
            for vs in self.storages
        ]
        self.svc = ScanAwareValueCache(
            self.dram,
            cfg.svc_capacity,
            self.hsit,
            self.epoch,
            scan_aware=cfg.svc_scan_aware,
            page_mode=cfg.svc_page_mode,
        )
        # DRAM read-cache tier (ISSUE 6): consulted by get() before the
        # index.  None when disabled — the read path then costs one
        # attribute load and a None check, and runs are bit-identical
        # to a build without the cache subsystem.
        self.read_cache: Optional[ReadCache] = None
        if cfg.enable_read_cache:
            self.read_cache = ReadCache(
                self.dram,
                cfg.read_cache_capacity,
                sketch_width=cfg.read_cache_sketch_width,
            )

        # --- background threads ----------------------------------------
        self._bg_reclaim = VThread(-1, self.clock, name="bg-reclaim", background=True)
        self._bg_gc = VThread(-2, self.clock, name="bg-gc", background=True)
        self._bg_cache = VThread(-3, self.clock, name="bg-cache", background=True)
        self._default_thread = VThread(0, self.clock, name="caller")

        # --- stats -------------------------------------------------------
        self.bytes_put = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.scans = 0
        self.reclaims = 0
        # Structured GC/reclaim history (always on: both are rare, and
        # Figure 17 needs the events regardless of the metrics switch).
        self.events = EventLog("prism")
        self._ops = 0
        # Hot-path caches: _tick()/put() run once per op and two-hop
        # ``self.config.*`` chases show up in profiles.
        self._epoch_every = cfg.epoch_advance_every
        self._enable_pwb = cfg.enable_pwb
        self._pwb_watermark = cfg.pwb_watermark
        self._rr_storage = itertools.count()
        self._crashed = False

        # --- fault injection & retries ---------------------------------
        self.retry_exec = RetryExecutor(
            cfg.retry, injector=None, events=self.events, metrics=self.metrics
        )
        self.injector: Optional[FaultInjector] = None
        if cfg.faults is not None:
            self.injector = FaultInjector(
                cfg.faults, events=self.events, metrics=self.metrics
            )
            self.retry_exec.injector = self.injector
            self.nvm.attach_injector(self.injector)
            for ssd in self.ssds:
                ssd.attach_injector(self.injector)
            for ssd in self.mirror_ssds:
                ssd.attach_injector(self.injector)
            # Failed flushes retry inside the device, covering every
            # persist point (PWB appends, HSIT publishes) at once.
            self.nvm.attach_retry(self.retry_exec)
            for combiner in self.combiners:
                combiner.retry = self.retry_exec

        # --- crash exploration -----------------------------------------
        # One store-wide crash point shared by every instrumented
        # component; unarmed it costs one no-op call per label.
        self.crash_point = CrashPoint(_WholeStoreCrash(self))
        self.hsit.crash_point = self.crash_point
        for pwb in self.pwbs:
            pwb.crash_point = self.crash_point
        for vs in self.storages:
            vs.crash_point = self.crash_point

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "Prism"

    @property
    def gc_events(self) -> List[float]:
        """GC start times (compat shim over the structured event log)."""
        return [float(e["at"]) for e in self.events.of_kind("gc")]

    def _thread(self, thread: Optional[VThread]) -> VThread:
        return thread if thread is not None else self._default_thread

    def _check_key(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise TypeError(f"keys must be non-empty bytes, got {key!r}")
        if self._crashed:
            raise RuntimeError("store crashed; call recover() first")

    def _pwb_for(self, thread: VThread) -> PersistentWriteBuffer:
        return self.pwbs[thread.tid % len(self.pwbs)]

    def _vs_dead(self, vs: ValueStorage) -> bool:
        return self.injector is not None and self.injector.is_dead(vs.ssd.name)

    def _healthy_storages(self) -> List[ValueStorage]:
        """Value Storages whose device still works (degraded mode §ISSUE).

        With no injector every storage is healthy and this is the plain
        list — zero overhead on the fault-free path.
        """
        if self.injector is None:
            return self.storages
        healthy = [vs for vs in self.storages if not self.injector.is_dead(vs.ssd.name)]
        if not healthy:
            raise NoHealthyStorageError("every Value Storage device is dead")
        return healthy

    def _retrying_write(
        self, vs: ValueStorage, at: float, records: List[Tuple[int, bytes]]
    ):
        """write_records with the store's retry policy applied.

        Safe to retry wholesale: on error write_records releases every
        chunk it allocated, so a repeat attempt starts clean.
        """
        if self.injector is None:
            return vs.write_records(at, records)
        return self.retry_exec.run_at(
            lambda t: vs.write_records(t, records),
            at,
            device=vs.ssd.name,
            op="vs_write",
        )

    def _pick_storage(self, at: float) -> ValueStorage:
        """Prefer an idle healthy Value Storage; else least loaded (§5.2)."""
        candidates = self._healthy_storages()
        start = next(self._rr_storage)
        n = len(candidates)
        for i in range(n):
            vs = candidates[(start + i) % n]
            if vs.ring.idle_at(at):
                return vs
        return min(candidates, key=lambda s: s.ring.inflight_at(at))

    def _tick(self) -> None:
        if self._crashed:
            # A simulated power failure fired mid-operation; the unwind
            # must not touch (or advance epochs over) post-crash state.
            return
        self._ops += 1
        if self._ops % self._epoch_every == 0:
            self.epoch.try_advance()
        # pending_work() inlined: when used <= capacity the backlog is
        # just len(_pending), so the disjunction below is equivalent.
        svc = self.svc
        if svc.used > svc.capacity or len(svc._pending) > 256:
            self._run_cache_maintenance()

    def _run_cache_maintenance(self) -> None:
        if self._bg_cache.now < self.clock.now:
            self._bg_cache.now = self.clock.now
        self.svc.process_background(self._bg_cache, self.storages)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes, thread: Optional[VThread] = None) -> None:
        """Insert or update; durable when this returns."""
        self._check_key(key)
        if not isinstance(value, (bytes, bytearray)) or not value:
            raise TypeError(f"values must be non-empty bytes, got {type(value)}")
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        is_new = False
        inserted = False
        idx = None
        try:
            # Phase attribution is gated on ``m.enabled`` so the obs-off
            # path costs one attribute load per site — no null-instrument
            # calls, no f-strings, no per-op allocation.
            enabled = m.enabled
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if enabled:
                m.phase("put", "index_lookup", thread.now - t0)
            is_new = idx is None
            cp = self.crash_point
            if is_new:
                idx = self.hsit.allocate(thread)
                if cp.active:
                    cp.maybe_crash("put.allocated")
            vlen = len(value)
            if self._enable_pwb:
                pwb = self.pwbs[thread.tid % len(self.pwbs)]
                t0 = thread.now
                # Fast path: the record fits without applying a pending
                # release (would_fit inlined; ceil-to-8 == record_bytes).
                # Deferring poll() is safe — the tail of put() always
                # polls before the reclaim-watermark check, and release
                # application never touches virtual time.
                need = (pwb.header_size + vlen + 7) & ~7
                capacity = pwb.capacity
                head = pwb.head
                pos = head % capacity
                start = head + capacity - pos if pos + need > capacity else head
                if (start + need) - pwb.tail > capacity:
                    self._ensure_pwb_space(pwb, vlen, thread)
                if enabled:
                    m.phase("put", "pwb_space_wait", thread.now - t0)
                t0 = thread.now
                offset = pwb.append(idx, value, thread)
                if enabled:
                    m.phase("put", "pwb_append", thread.now - t0)
                word = ptr.encode_pwb(pwb.pwb_id, offset)
            else:
                t0 = thread.now
                vs = self._pick_storage(thread.now)
                chunk_id, off = self._append_sync_retrying(vs, thread, idx, value)
                if enabled:
                    m.phase("put", "vs_append", thread.now - t0)
                word = ptr.encode_vs(vs.vs_id, chunk_id, off)
                self._maybe_gc(vs, thread.now)
            if cp.active:
                cp.maybe_crash("put.appended")
            t0 = thread.now
            old_word = self.hsit.publish_location_word(idx, word, thread)
            self._supersede_word(idx, old_word, thread)
            if is_new:
                self.index.insert(key, idx, thread)
                inserted = True
            if enabled:
                m.phase("put", "publish", thread.now - t0)
            if cp.active:
                cp.maybe_crash("put.done")
            self.bytes_put += vlen
            self.puts += 1
            if self._enable_pwb:
                # poll() and utilization() inlined (once per put).
                pending = pwb.pending_release
                if pending is not None and thread.now >= pending[1]:
                    pwb.pending_release = None
                    pwb.release_through(pending[0])
                if (
                    (pwb.head - pwb.tail) / pwb.capacity >= self._pwb_watermark
                    and pwb.pending_release is None
                ):
                    self._reclaim(pwb, thread.now)
        except DeviceError:
            # The put failed after allocating a fresh HSIT entry but
            # before the key reached the index: the entry would leak
            # until the next recovery pass.  Return it now — the value
            # record (if persisted) becomes ill-coupled garbage.
            if is_new and idx is not None and not inserted:
                try:
                    self.hsit.free(idx, thread)
                except DeviceError:
                    pass  # NVM itself is failing; recovery will reclaim
            raise
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _append_sync_retrying(
        self, vs: ValueStorage, thread: VThread, idx: int, value: bytes
    ) -> Tuple[int, int]:
        """append_record_sync with retry (no-PWB ablation path)."""
        if self.injector is None:
            return vs.append_record_sync(thread, idx, value)
        return self.retry_exec.run(
            lambda: vs.append_record_sync(thread, idx, value),
            thread=thread,
            device=vs.ssd.name,
            op="vs_append",
        )

    def _supersede(
        self, idx: int, old: ptr.Location, thread: Optional[VThread]
    ) -> None:
        """Invalidate whatever the old forward pointer referenced."""
        if old.in_vs:
            self.storages[old.vs_id].invalidate(old.chunk_id, old.vs_offset)
        entry_id = self.hsit.read_svc(idx, thread)
        if entry_id is not None:
            self.hsit.clear_svc(idx, thread)
            self.svc.invalidate(entry_id, thread)
        if self.read_cache is not None:
            self.read_cache.invalidate_idx(idx)

    def _supersede_word(
        self, idx: int, old_word: int, thread: Optional[VThread]
    ) -> None:
        """:meth:`_supersede` on a raw location word (write hot path —
        extracts VS fields with bit ops instead of decoding)."""
        if old_word & ptr.MEDIUM_MASK == ptr.MEDIUM_VS_BITS:
            self.storages[(old_word >> ptr.VS_ID_SHIFT) & ptr.VS_ID_MASK].invalidate(
                (old_word >> ptr.VS_CHUNK_SHIFT) & ptr.VS_CHUNK_MASK,
                old_word & ptr.VS_OFFSET_MASK,
            )
        hsit = self.hsit
        entry_id = hsit.read_svc(idx, thread)
        if entry_id is not None:
            hsit.clear_svc(idx, thread)
            self.svc.invalidate(entry_id, thread)
        if self.read_cache is not None:
            self.read_cache.invalidate_idx(idx)

    def _ensure_pwb_space(
        self, pwb: PersistentWriteBuffer, value_len: int, thread: VThread
    ) -> None:
        pwb.poll(thread.now)
        if pwb.would_fit(value_len):
            return
        # Wait out an in-flight reclamation, if any.
        if pwb.pending_release is not None:
            thread.wait_until(pwb.reclaim_done_at)
            pwb.poll(thread.now)
            if pwb.would_fit(value_len):
                return
        # Emergency: reclaim synchronously in the critical path.
        self._reclaim(pwb, thread.now)
        thread.wait_until(pwb.reclaim_done_at)
        pwb.poll(thread.now)
        if not pwb.would_fit(value_len):
            raise PWBFullError(
                f"pwb {pwb.pwb_id} cannot host a {value_len}B value"
            )

    # ------------------------------------------------------------------
    # background reclamation (§5.2)
    # ------------------------------------------------------------------
    def _reclaim(self, pwb: PersistentWriteBuffer, at: float) -> None:
        bg = self._bg_reclaim
        if bg.now < at:
            bg.now = at
        if pwb.pending_release is not None:
            # An earlier reclamation is still in flight; chain after it.
            bg.wait_until(pwb.reclaim_done_at)
            pwb.poll(bg.now)
        start_at = bg.now
        upto = pwb.head
        region = upto - pwb.tail
        if region <= 0:
            return
        # Scan the region and check well-coupledness (two NVM reads per
        # value: the backward pointer and the HSIT forward pointer).
        live: List[Tuple[int, bytes]] = []
        count = 0
        # Well-coupled iff the (dirty-cleared) forward pointer encodes
        # exactly this buffer and offset — one word comparison per
        # record instead of a Location decode.
        hsit = self.hsit
        nvm_load_word = hsit.nvm.load_word
        hsit_base = hsit._base
        expect_base = ptr.MEDIUM_PWB_BITS | (pwb.pwb_id << ptr.PWB_ID_SHIFT)
        for offset, hsit_idx, value in pwb.records_between(pwb.tail, upto):
            count += 1
            word = nvm_load_word(None, hsit_base + hsit_idx * ENTRY_BYTES)
            if word & ~ptr.DIRTY_BIT == expect_base | offset:
                live.append((hsit_idx, value))
        self.nvm.charge_read(bg, min(region, pwb.capacity) + 16 * count)
        if live:
            try:
                vs = self._pick_storage(bg.now)
                placements, done = self._retrying_write(vs, bg.now, live)
            except (DeviceError, NoHealthyStorageError):
                # The write never stuck (write_records released its
                # chunks).  Leave the PWB untouched: records stay
                # readable in NVM and the next trigger retries, on a
                # healthier storage if one exists.
                self.events.emit(
                    start_at, "reclaim_failed", pwb_id=pwb.pwb_id, phase="write"
                )
                self.metrics.counter("faults.reclaim_failures").inc()
                return
            bg.wait_until(done)
            self.crash_point.maybe_crash("reclaim.pre_publish")
            published = 0
            try:
                for (hsit_idx, _value), (chunk_id, offset, _size) in zip(
                    live, placements
                ):
                    self.hsit.publish_location_word(
                        hsit_idx, ptr.encode_vs(vs.vs_id, chunk_id, offset), bg
                    )
                    published += 1
            except DeviceError:
                # Containment: placements that never published would be
                # valid-but-unreachable; drop them.  Published entries
                # stand, but the PWB window must NOT be released while
                # any entry still points into it.
                resolve_partial_publish(
                    self.hsit,
                    vs,
                    [
                        (hsit_idx, placement, None, 0, 0)
                        for (hsit_idx, _v), placement in zip(live, placements)
                    ],
                    published,
                )
                self.events.emit(
                    start_at, "reclaim_failed", pwb_id=pwb.pwb_id, phase="publish"
                )
                self.metrics.counter("faults.reclaim_failures").inc()
                return
            self.crash_point.maybe_crash("reclaim.published")
            self._maybe_gc(vs, bg.now)
        pwb.pending_release = (upto, bg.now)
        pwb.reclaim_done_at = bg.now
        self.reclaims += 1
        self.events.emit(
            start_at,
            "reclaim",
            pwb_id=pwb.pwb_id,
            region_bytes=region,
            scanned_records=count,
            live_records=len(live),
            live_bytes=sum(len(v) for _, v in live),
            duration=bg.now - start_at,
        )

    # ------------------------------------------------------------------
    # garbage collection in Value Storage (§5.2)
    # ------------------------------------------------------------------
    def _maybe_gc(self, vs: ValueStorage, at: float) -> None:
        if self._vs_dead(vs):
            return  # read-degraded storage: nothing to collect into
        if vs.free_fraction() >= self.config.gc_free_threshold:
            return
        bg = self._bg_gc
        if bg.now < at:
            bg.now = at
        start_at = bg.now
        free_before = vs.free_chunks
        victims = vs.gc_victims(self.config.gc_batch_chunks)
        moves: List[Tuple[int, bytes, int, int]] = []
        read_done = bg.now
        try:
            for chunk_id in victims:
                for slot in vs.live_records_of(chunk_id):
                    try:
                        _, value = vs.read_record_raw(chunk_id, slot.offset)
                    except CorruptionError:
                        # A rotted record would poison the GC move; heal
                        # it from a repair source, or leave it in place
                        # (it stays valid; a later read surfaces the
                        # typed error and retries the repair).
                        self.metrics.counter("corruption.detected").inc()
                        from repro.repair import fetch_value

                        fetched = fetch_value(
                            self, slot.hsit_idx, vs.vs_id, chunk_id, slot.offset
                        )
                        if fetched is None:
                            self.events.emit(
                                bg.now,
                                "gc_skipped_corrupt",
                                vs_id=vs.vs_id,
                                chunk=chunk_id,
                                offset=slot.offset,
                            )
                            continue
                        value = fetched[0]
                    moves.append((slot.hsit_idx, value, chunk_id, slot.offset))
                read_done = max(
                    read_done,
                    vs.ssd.read_async(bg.now, chunk_id * vs.chunk_size, vs.chunk_size),
                )
        except DeviceError:
            # Nothing moved or invalidated yet: abort this GC round.
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="read")
            self.metrics.counter("faults.gc_failures").inc()
            return
        bg.wait_until(read_done)
        if not moves:
            self.events.emit(
                start_at,
                "gc",
                vs_id=vs.vs_id,
                victim_chunks=len(victims),
                moved_records=0,
                moved_bytes=0,
                chunks_freed=vs.free_chunks - free_before,
                duration=bg.now - start_at,
            )
            return
        try:
            placements, done = self._retrying_write(
                vs, bg.now, [(idx, value) for idx, value, _, _ in moves]
            )
        except DeviceError:
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="write")
            self.metrics.counter("faults.gc_failures").inc()
            return
        bg.wait_until(done)
        self.crash_point.maybe_crash("gc.pre_publish")
        published = 0
        rc = self.read_cache
        try:
            for (idx, value, old_chunk, old_off), (chunk_id, offset, _sz) in zip(
                moves, placements
            ):
                self.hsit.publish_location_word(
                    idx, ptr.encode_vs(vs.vs_id, chunk_id, offset), bg
                )
                published += 1
                vs.invalidate(old_chunk, old_off)
                if rc is not None:
                    # GC freed the chunk the cached copy was coupled
                    # to; drop it with the relocation publish rather
                    # than risk serving from a reference into a
                    # reclaimed region.
                    rc.invalidate_idx(idx)
        except DeviceError:
            resolve_partial_publish(
                self.hsit,
                vs,
                [
                    (idx, placement, vs, old_chunk, old_off)
                    for (idx, _v, old_chunk, old_off), placement in zip(
                        moves, placements
                    )
                ],
                published,
            )
            self.events.emit(start_at, "gc_failed", vs_id=vs.vs_id, phase="publish")
            self.metrics.counter("faults.gc_failures").inc()
            return
        self.crash_point.maybe_crash("gc.published")
        vs.gc_runs += 1
        moved_bytes = sum(len(value) for _, value, _, _ in moves)
        vs.gc_moved_bytes += moved_bytes
        self.events.emit(
            start_at,
            "gc",
            vs_id=vs.vs_id,
            victim_chunks=len(victims),
            moved_records=len(moves),
            moved_bytes=moved_bytes,
            chunks_freed=vs.free_chunks - free_before,
            duration=bg.now - start_at,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: bytes, thread: Optional[VThread] = None) -> Optional[bytes]:
        """Point lookup; returns None for missing keys."""
        self._check_key(key)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            self.gets += 1
            # DRAM read-cache tier: a hit short-circuits the whole
            # index -> HSIT -> PWB/VS path at DRAM cost.  Coherent by
            # construction — every publish invalidates synchronously —
            # so a hit never returns superseded bytes.
            rc = self.read_cache
            if rc is not None:
                t0 = thread.now
                cached = rc.lookup(key, thread)
                if cached is not None:
                    if m.enabled:
                        m.phase("get", "cache_hit", thread.now - t0)
                        m.counter("read.cache_hits").inc()
                    return cached
                if m.enabled:
                    m.counter("read.cache_misses").inc()
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if m.enabled:
                m.phase("get", "index_lookup", thread.now - t0)
            if idx is None:
                return None
            value = self._read_value(idx, key, thread)
            if rc is not None and value is not None:
                t0 = thread.now
                rc.admit(key, idx, value, thread)
                if m.enabled:
                    m.phase("get", "cache_admit", thread.now - t0)
            return value
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _read_value(self, idx: int, key: bytes, thread: VThread) -> Optional[bytes]:
        m = self.metrics
        enabled = m.enabled
        loc = self.hsit.read_location(idx, thread)
        # Compare the medium field directly: the is_null/in_pwb
        # properties are descriptor calls and this runs on every read.
        medium = loc.medium
        if medium == ptr.MEDIUM_NULL:
            return None
        if medium == ptr.MEDIUM_PWB:
            t0 = thread.now
            _, value = self.pwbs[loc.pwb_id].read(loc.pwb_offset, thread)
            if enabled:
                m.phase("get", "pwb_read", thread.now - t0)
                m.counter("read.pwb_hits").inc()
            return value
        # Value Storage — try the DRAM cache first (Figure 2 ➍ over ➌).
        if self.config.enable_svc:
            entry_id = self.hsit.read_svc(idx, thread)
            if entry_id is not None:
                t0 = thread.now
                cached = self.svc.lookup(entry_id, thread)
                if cached is not None:
                    if enabled:
                        m.phase("get", "svc_hit", thread.now - t0)
                        m.counter("read.svc_hits").inc()
                    return cached
                if enabled:
                    m.phase("get", "svc_miss", thread.now - t0)
        if enabled:
            m.counter("read.svc_misses").inc()
        vs = self.storages[loc.vs_id]
        if self._vs_dead(vs):
            # The durable copy sits on a dead device.  With a repair
            # source configured the read re-materialises the record
            # onto healthy storage (read-repair); otherwise the key is
            # read-degraded, not silently missing.
            value = self._repair_read(
                idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset, thread,
                dead_device=True,
            )
        else:
            req = vs.record_request(loc.chunk_id, loc.vs_offset)
            raw = self.combiners[loc.vs_id].read_one(thread, req, m)
            try:
                _, value = vs.parse_record(raw)
            except CorruptionError:
                m.counter("corruption.detected").inc()
                value = self._repair_read(
                    idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset, thread
                )
        if self.config.enable_svc:
            t0 = thread.now
            self.svc.admit(idx, key, value, thread)
            if enabled:
                m.phase("get", "svc_admit", thread.now - t0)
        return value

    def _repair_read(
        self,
        idx: int,
        key: bytes,
        vs_id: int,
        chunk_id: int,
        offset: int,
        thread: VThread,
        dead_device: bool = False,
    ) -> bytes:
        """Heal one unreadable Value Storage record in the read path.

        Re-materialises the value from a repair source (mirror chunk,
        then an unreclaimed PWB copy), rewrites it through the normal
        publish path onto healthy storage, and returns it.  Raises
        :class:`UnrecoverableCorruptionError` when no intact copy
        exists — typed loss, never silently wrong bytes.  A dead device
        without a mirror keeps PR 2's :class:`ReadDegradedError`.
        """
        vs = self.storages[vs_id]
        if dead_device and vs.mirror is None:
            raise ReadDegradedError(vs.ssd.name, key)
        from repro.repair import read_repair

        return read_repair(self, idx, key, vs_id, chunk_id, offset, thread)

    # ------------------------------------------------------------------
    # scan (§4.4)
    # ------------------------------------------------------------------
    def scan(
        self, start: bytes, count: int, thread: Optional[VThread] = None
    ) -> List[Tuple[bytes, bytes]]:
        """Range scan: up to ``count`` pairs with key >= start."""
        self._check_key(start)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            t0 = thread.now
            matches = self.index.scan(start, count, thread)
            if m.enabled:
                m.phase("scan", "index_scan", thread.now - t0)
            t0 = thread.now
            results: Dict[bytes, bytes] = {}
            misses: Dict[int, List[Tuple[int, int, int, bytes]]] = {}
            chain_entries: List[Tuple[bytes, int]] = []
            for key, idx in matches:
                loc = self.hsit.read_location(idx, thread)
                if loc.in_pwb:
                    _, value = self.pwbs[loc.pwb_id].read(loc.pwb_offset, thread)
                    results[key] = value
                    continue
                if loc.is_null:
                    continue
                if self.config.enable_svc:
                    entry_id = self.hsit.read_svc(idx, thread)
                    if entry_id is not None:
                        cached = self.svc.lookup(entry_id, thread)
                        if cached is not None:
                            results[key] = cached
                            chain_entries.append((key, entry_id))
                            continue
                if self._vs_dead(self.storages[loc.vs_id]):
                    value = self._repair_read(
                        idx, key, loc.vs_id, loc.chunk_id, loc.vs_offset,
                        thread, dead_device=True,
                    )
                    results[key] = value
                    if self.config.enable_svc:
                        entry_id = self.svc.admit(idx, key, value, thread)
                        chain_entries.append((key, entry_id))
                    continue
                misses.setdefault(loc.vs_id, []).append(
                    (loc.chunk_id, loc.vs_offset, idx, key)
                )
            for vs_id, items in misses.items():
                for idx, key, value in self._fetch_merged(vs_id, items, thread):
                    results[key] = value
                    if self.config.enable_svc:
                        entry_id = self.svc.admit(idx, key, value, thread)
                        chain_entries.append((key, entry_id))
            if self.config.enable_svc and self.config.svc_scan_aware:
                chain_entries.sort()
                self.svc.link_scan_chain([eid for _, eid in chain_entries])
            if m.enabled:
                m.phase("scan", "fetch", thread.now - t0)
            self.scans += 1
            return [(key, results[key]) for key, _ in matches if key in results]
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    def _fetch_merged(
        self,
        vs_id: int,
        items: Sequence[Tuple[int, int, int, bytes]],
        thread: VThread,
    ) -> List[Tuple[int, bytes, bytes]]:
        """Read records from one Value Storage, merging adjacent ones.

        Scan-aware reorganization places values of a range contiguously
        in a chunk; merging adjacent records into single IOs is where
        that locality pays off (fewer, larger SSD reads).
        """
        vs = self.storages[vs_id]
        ordered = sorted(items)
        runs: List[List[Tuple[int, int, int, bytes]]] = []
        for item in ordered:
            chunk_id, offset, idx, key = item
            size = vs.slot_size(chunk_id, offset)
            if runs:
                last = runs[-1][-1]
                last_end = last[1] + vs.header_size + vs.slot_size(last[0], last[1])
                if last[0] == chunk_id and offset == last_end:
                    runs[-1].append(item)
                    continue
            runs.append([item])
        requests = []
        spans: List[List[Tuple[int, int, int, bytes]]] = []
        from repro.storage.iouring import IORequest

        for run in runs:
            first_chunk, first_off, _, _ = run[0]
            last_chunk, last_off, _, _ = run[-1]
            end = last_off + vs.header_size + vs.slot_size(last_chunk, last_off)
            requests.append(
                IORequest(
                    "read",
                    first_chunk * vs.chunk_size + first_off,
                    end - first_off,
                )
            )
            spans.append(run)
        self.combiners[vs_id].read(thread, requests, self.metrics)
        out: List[Tuple[int, bytes, bytes]] = []
        for req, run in zip(requests, spans):
            assert req.result is not None
            base = run[0][1]
            for chunk_id, offset, idx, key in run:
                rel = offset - base
                raw = req.result[rel:]
                try:
                    _, value = vs.parse_record(raw)
                except CorruptionError:
                    self.metrics.counter("corruption.detected").inc()
                    value = self._repair_read(
                        idx, key, vs_id, chunk_id, offset, thread
                    )
                out.append((idx, key, value))
        return out

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes, thread: Optional[VThread] = None) -> bool:
        """Remove a key. Returns True when it existed."""
        self._check_key(key)
        thread = self._thread(thread)
        m = self.metrics
        self.epoch.enter(thread.tid)
        try:
            t0 = thread.now
            idx = self.index.lookup(key, thread)
            if m.enabled:
                m.phase("delete", "index_lookup", thread.now - t0)
            if idx is None:
                return False
            self.crash_point.maybe_crash("delete.begin")
            t0 = thread.now
            self.index.delete(key, thread)
            old_word = self.hsit.publish_location_word(idx, 0, thread)
            self._supersede_word(idx, old_word, thread)
            if m.enabled:
                m.phase("delete", "publish", thread.now - t0)
            self.crash_point.maybe_crash("delete.published")
            # The HSIT entry rejoins the free list after two epochs (§5.4).
            self.epoch.retire(lambda i=idx: self.hsit.free(i))
            self.deletes += 1
            return True
        finally:
            self.epoch.exit(thread.tid)
            self._tick()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.index)

    def flush(self, thread: Optional[VThread] = None) -> None:
        """Drain PWBs into Value Storage and finish background work."""
        at = self.clock.now
        for pwb in self.pwbs:
            pwb.poll(float("inf"))
            if pwb.used > 0:
                self._reclaim(pwb, at)
                pwb.poll(float("inf"))
        self._run_cache_maintenance()
        for _ in range(3):
            self.epoch.try_advance()

    def close(self) -> None:
        self.flush()
        self.epoch.drain()

    def crash(self) -> None:
        """Simulate power failure across all devices."""
        self.nvm.crash()
        self.index.crash()
        self.dram.crash()
        self.svc.crash()
        if self.read_cache is not None:
            self.read_cache.crash()
        for ssd in self.ssds:
            ssd.crash()
        for ssd in self.mirror_ssds:
            ssd.crash()
        self._crashed = True

    def recover(self, recovery_threads: int = 4) -> "RecoveryReport":
        from repro.core.recovery import recover

        report = recover(self, recovery_threads=recovery_threads)
        self._crashed = False
        return report

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def ssd_bytes_written(self) -> int:
        return sum(ssd.bytes_written for ssd in self.ssds)

    def waf(self) -> float:
        """SSD-level write amplification (SSD writes / application writes)."""
        if self.bytes_put == 0:
            return 0.0
        return self.ssd_bytes_written() / self.bytes_put

    def nvm_bytes_used(self) -> int:
        return self.nvm.used

    def stats(self) -> Dict[str, float]:
        stats = {
            "puts": self.puts,
            "gets": self.gets,
            "scans": self.scans,
            "deletes": self.deletes,
            "reclaims": self.reclaims,
            "gc_runs": sum(vs.gc_runs for vs in self.storages),
            "svc_hits": self.svc.hits,
            "svc_admissions": self.svc.admissions,
            "svc_evictions": self.svc.evictions,
            "scan_writebacks": self.svc.scan_writebacks,
            "waf": self.waf(),
            "ssd_bytes_written": self.ssd_bytes_written(),
            "nvm_bytes_used": self.nvm_bytes_used(),
            "hsit_entries": self.hsit.allocations - self.hsit.frees,
        }
        # Only present when the tier is on, so cache-off metrics JSONs
        # stay byte-identical to builds without the cache subsystem.
        if self.read_cache is not None:
            stats.update(self.read_cache.stats())
        return stats
