"""Heterogeneous Storage Index Table (§4.5, §5.4).

The HSIT is an array on NVM whose 16-byte entries locate a key's value
across media: an 8-byte *location word* (PWB or Value Storage, plus the
dirty bit used by the flush-on-read protocol) and an 8-byte SVC word
(DRAM cache pointer, rebuilt empty on recovery).

Durable-linearizability protocol for the location word:

1. the writer stores ``new | DIRTY`` (atomic 8-byte CAS),
2. flushes the cache line and fences,
3. stores ``new`` with the dirty bit cleared.

A reader that observes the dirty bit flushes on the writer's behalf
before using the pointer.  A crash between (1) and (2) rolls the word
back to the old location — the new value is simply unreachable, which
is safe because the old value is still well-coupled.  A crash after
(2) leaves a persisted-but-dirty word; recovery clears stray dirty
bits.  The simulated NVM reproduces exactly these outcomes.

Free entries form a persistent free list threaded through null
location words; deleted entries join it only after two epochs
(:mod:`repro.core.epoch`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import pointers as ptr
from repro.sim.resources import VLock
from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.crash import NULL_CRASH_POINT
from repro.storage.nvm import NVMDevice

ENTRY_BYTES = 16
_CAS_COST = 25e-9


class HSIT:
    """Array-of-entries indirection table on NVM."""

    # Crash-exploration hook; the owning store swaps in its own point.
    crash_point = NULL_CRASH_POINT

    def __init__(self, nvm: NVMDevice, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"HSIT capacity must be >= 1: {capacity}")
        self.nvm = nvm
        self.capacity = capacity
        # header: [free-list head+1 (8B)][next-unused index (8B)]
        self._header = nvm.alloc(16, align=256)
        self._base = nvm.alloc(capacity * ENTRY_BYTES, align=256)
        self._alloc_lock = VLock(name="hsit-alloc")
        self.allocations = 0
        self.frees = 0
        self.reader_flushes = 0

    # ------------------------------------------------------------------
    # raw words
    # ------------------------------------------------------------------
    def _addr(self, idx: int) -> int:
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        return self._base + idx * ENTRY_BYTES

    def _load_word(self, thread: Optional[VThread], addr: int) -> int:
        return self.nvm.load_word(thread, addr)

    def _store_word(self, thread: Optional[VThread], addr: int, word: int) -> None:
        self.nvm.store_word(thread, addr, word)

    def _persist_word(self, thread: Optional[VThread], addr: int, word: int) -> None:
        self.nvm.persist(thread, addr, word.to_bytes(8, "little"))

    def _header_words(self, thread: Optional[VThread]) -> Tuple[int, int]:
        raw = self.nvm.load(thread, self._header, 16)
        return (
            int.from_bytes(raw[:8], "little"),
            int.from_bytes(raw[8:], "little"),
        )

    # ------------------------------------------------------------------
    # allocation / free list
    # ------------------------------------------------------------------
    def allocate(self, thread: Optional[VThread] = None) -> int:
        """Take a free entry (free list first, then fresh space)."""
        if thread is not None:
            self._alloc_lock.acquire(thread)
        try:
            head_plus1, next_unused = self._header_words(thread)
            if head_plus1:
                idx = head_plus1 - 1
                link = ptr.free_link_of(self._load_word(thread, self._addr(idx)))
                self.nvm.persist(thread, self._header, link.to_bytes(8, "little"))
            else:
                if next_unused >= self.capacity:
                    raise StorageError(
                        f"HSIT exhausted: {next_unused} of {self.capacity} used"
                    )
                idx = next_unused
                self.nvm.persist(
                    thread, self._header + 8, (next_unused + 1).to_bytes(8, "little")
                )
            self.allocations += 1
            return idx
        finally:
            if thread is not None:
                self._alloc_lock.release(thread)

    def free(self, idx: int, thread: Optional[VThread] = None) -> None:
        """Push an entry onto the persistent free list.

        Callers must only invoke this through epoch-based reclamation
        so no concurrent reader still holds the entry (§5.4).
        """
        if thread is not None:
            self._alloc_lock.acquire(thread)
        try:
            head_plus1, _ = self._header_words(thread)
            self._persist_word(
                thread, self._addr(idx), ptr.encode_free_link(head_plus1)
            )
            self._store_word(thread, self._addr(idx) + 8, 0)
            self.nvm.persist(thread, self._header, (idx + 1).to_bytes(8, "little"))
            self.frees += 1
        finally:
            if thread is not None:
                self._alloc_lock.release(thread)

    def allocated_entries(self) -> int:
        head_plus1, next_unused = self._header_words(None)
        free = 0
        while head_plus1:
            free += 1
            head_plus1 = ptr.free_link_of(
                self._load_word(None, self._addr(head_plus1 - 1))
            )
        return next_unused - free

    def nvm_bytes(self) -> int:
        _, next_unused = self._header_words(None)
        return 16 + next_unused * ENTRY_BYTES

    # ------------------------------------------------------------------
    # the flush-on-read location protocol
    # ------------------------------------------------------------------
    def publish_location(
        self, idx: int, word: int, thread: Optional[VThread] = None
    ) -> ptr.Location:
        """Durably install a new forward pointer; returns the old location.

        This is the linearization point of every write in Prism.
        """
        return ptr.decode(self.publish_location_word(idx, word, thread))

    def publish_location_word(
        self, idx: int, word: int, thread: Optional[VThread] = None
    ) -> int:
        """:meth:`publish_location` returning the raw old word.

        The write path supersedes the old location with bit tests on
        the word, so it skips the Location decode entirely.
        """
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        addr = self._base + idx * ENTRY_BYTES
        nvm = self.nvm
        cp = self.crash_point
        cp_active = cp.active
        if (
            thread is not None
            and not cp_active
            and nvm._retry is None
            and not nvm.injector.enabled
        ):
            # Fused CAS sequence (one bounds check, one page lookup);
            # bit-identical timing — see NVMDevice.publish_word.
            old = nvm.publish_word(
                thread,
                addr,
                word | ptr.DIRTY_BIT,
                word & ~ptr.DIRTY_BIT,
                _CAS_COST,
            )
            return old & ~ptr.DIRTY_BIT
        old = nvm.load_word(thread, addr)
        if cp_active:
            cp.maybe_crash("hsit.publish.pre")
        # (1) atomic store of the new pointer with the dirty bit set
        nvm.store_word(thread, addr, word | ptr.DIRTY_BIT)
        if thread is not None:
            # thread.spend(_CAS_COST) inlined — once per publish.
            now = thread.now + _CAS_COST
            thread.now = now
            thread.cpu_time += _CAS_COST
            clock = thread.clock
            if now > clock._now:
                clock._now = now
        if cp_active:
            cp.maybe_crash("hsit.publish.dirty")
        # (2) flush + fence: the dirty pointer is now durable
        nvm.flush(thread, addr, 8)
        nvm.fence(thread)
        if cp_active:
            cp.maybe_crash("hsit.publish.flushed")
        # (3) clear the dirty bit (flushed lazily by readers/recovery)
        clean = word & ~ptr.DIRTY_BIT
        nvm.store_word(thread, addr, clean)
        if cp_active:
            cp.maybe_crash("hsit.publish.done")
        return old & ~ptr.DIRTY_BIT

    def read_location(
        self, idx: int, thread: Optional[VThread] = None
    ) -> ptr.Location:
        """Read the forward pointer, flushing on the writer's behalf
        when the dirty bit is observed."""
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        addr = self._base + idx * ENTRY_BYTES
        nvm = self.nvm
        word = nvm.load_word(thread, addr)
        if word & ptr.DIRTY_BIT:
            word &= ~ptr.DIRTY_BIT
            nvm.flush(thread, addr, 8)
            nvm.fence(thread)
            nvm.store_word(thread, addr, word)
            if thread is not None:
                now = thread.now + _CAS_COST
                thread.now = now
                thread.cpu_time += _CAS_COST
                clock = thread.clock
                if now > clock._now:
                    clock._now = now
            self.reader_flushes += 1
        return ptr.decode(word)

    def location_word(self, idx: int) -> int:
        """Raw (untimed) access for recovery and tests."""
        return self._load_word(None, self._addr(idx))

    def clear_dirty_bit(self, idx: int, thread: Optional[VThread] = None) -> None:
        """Recovery helper: normalize a persisted-but-dirty word."""
        addr = self._addr(idx)
        word = self._load_word(thread, addr)
        if ptr.is_dirty(word):
            self._persist_word(thread, addr, ptr.clear_dirty(word))

    # ------------------------------------------------------------------
    # SVC word (cache pointer; meaningless after a crash)
    # ------------------------------------------------------------------
    def set_svc(self, idx: int, entry_id: int, thread: Optional[VThread] = None) -> None:
        """Atomically point the entry at a DRAM-cached copy (id + 1)."""
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        self.nvm.store_word(thread, self._base + idx * ENTRY_BYTES + 8, entry_id + 1)
        if thread is not None:
            now = thread.now + _CAS_COST
            thread.now = now
            thread.cpu_time += _CAS_COST
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def clear_svc(self, idx: int, thread: Optional[VThread] = None) -> None:
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        self.nvm.store_word(thread, self._base + idx * ENTRY_BYTES + 8, 0)
        if thread is not None:
            now = thread.now + _CAS_COST
            thread.now = now
            thread.cpu_time += _CAS_COST
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def read_svc(self, idx: int, thread: Optional[VThread] = None) -> Optional[int]:
        """Cached-copy id, or None when not cached."""
        if not 0 <= idx < self.capacity:
            raise StorageError(f"HSIT index out of range: {idx}")
        word = self.nvm.load_word(thread, self._base + idx * ENTRY_BYTES + 8)
        if word == 0:
            return None
        return word - 1
