"""Key-popularity distributions, following the YCSB reference generators.

The paper uses YCSB with a Zipfian coefficient of 0.99 by default and
sweeps 0.5–1.5 for the skew experiment (Figure 9).

Sampler choice: Gray et al.'s rejection-free closed form (YCSB's
default) is only valid for 0 < theta < 1 — its exponent ``1/(1-theta)``
diverges at 1 and goes negative beyond.  For theta >= 1 the generators
switch to exact CDF inversion over the harmonic prefix sums, which is
correct for any positive theta and still O(log n) per draw; both
regimes support incremental key-space growth.
"""

from __future__ import annotations

import bisect
import random
import zlib
from typing import Dict, List, Optional

# ----------------------------------------------------------------------
# Shared per-theta harmonic prefix caches.
#
# Benchmark sweeps build many generators with the same theta (one per
# store x workload x repetition), and the O(n) harmonic setup dominated
# their construction cost.  Both caches are append-only prefix sums, so
# extending a cached prefix performs *exactly* the same sequence of
# float additions a fresh build would — cached and uncached generators
# produce bit-identical samples.
#
# The two regimes accumulate with different expressions (``i**-theta``
# vs ``1.0 / (i**theta)``); those are NOT interchangeable in floating
# point, so each keeps its own cache.
# ----------------------------------------------------------------------
_EXACT_CUM: Dict[float, List[float]] = {}  # exact-CDF regime: i**-theta
_ZETA_CUM: Dict[float, List[float]] = {}  # closed-form regime: 1.0/(i**theta)


def _exact_prefix(theta: float, n: int) -> List[float]:
    """Prefix sums of ``i**-theta`` for ``i`` in 1..n (shared, extended
    in place)."""
    cum = _EXACT_CUM.get(theta)
    if cum is None:
        cum = _EXACT_CUM[theta] = []
    if len(cum) < n:
        total = cum[-1] if cum else 0.0
        for i in range(len(cum) + 1, n + 1):
            total += i**-theta
            cum.append(total)
    return cum


class ZipfianGenerator:
    """Zipfian rank sampler: ranks in ``[0, n)``, rank 0 most popular,
    P(rank k) proportional to ``1 / (k + 1)**theta``.

    Two regimes, chosen by ``theta``:

    * ``0 < theta < 1`` — Gray et al.'s rejection-free closed form, as
      in YCSB.  Constant time per sample.
    * ``theta >= 1`` — exact inversion of the CDF.  The closed form's
      exponent ``alpha = 1/(1 - theta)`` diverges at ``theta == 1`` and
      turns *negative* beyond it, mapping uniform draws to out-of-range
      (huge or negative) ranks, so the Figure 9 sweep (0.5–1.5) cannot
      use it.  Instead we keep the running prefix sums of the harmonic
      weights ``k**-theta`` and binary-search a uniform draw into them:
      exact for any ``theta > 0`` at O(log n) per sample and O(n) setup.

    :meth:`grow` extends the key space incrementally (appending the new
    ranks' weights / extending ``zeta_n``), so growing n times costs
    O(n) total rather than O(n²) from rebuilding.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item: {n}")
        if theta <= 0:
            raise ValueError(f"theta must be positive: {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random()
        # Gray's closed form also degenerates for n <= 2: with n == 2
        # the eta expression is 0/0 (zeta_2 == zeta_n), so tiny key
        # spaces use exact inversion too (valid for any theta > 0).
        self._exact = theta >= 1.0 or n < 3
        if self._exact:
            # The shared prefix may be longer than n (another instance
            # grew it); next() bounds its binary search by self.n.
            self._cum: List[float] = _exact_prefix(theta, n)
            self.zeta_n = self._cum[n - 1]
        else:
            self.zeta_n = self._zeta(n, theta)
            self.zeta_2 = self._zeta(2, theta)
            self.alpha = 1.0 / (1.0 - theta)
            self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta_2 / self.zeta_n)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        cum = _ZETA_CUM.get(theta)
        if cum is None:
            cum = _ZETA_CUM[theta] = []
        if len(cum) < n:
            total = cum[-1] if cum else 0.0
            for i in range(len(cum) + 1, n + 1):
                total += 1.0 / (i**theta)
                cum.append(total)
        return cum[n - 1]

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if self._exact:
            return min(bisect.bisect_left(self._cum, uz, 0, self.n), self.n - 1)
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        # Clamp: for u close enough to 1 the base rounds to exactly 1.0
        # (e.g. u = 1 - 2**-53) and the closed form yields rank n — one
        # past the key space.  The exact-CDF branch clamps likewise.
        rank = int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)
        return rank if rank < self.n else self.n - 1

    def grow(self, new_n: int) -> None:
        """Extend the key space to ``new_n`` items incrementally."""
        if new_n <= self.n:
            return
        theta = self.theta
        if self._exact:
            # Extending the shared prefix continues the same running
            # sum, so growing via the cache is bit-identical to the old
            # per-instance append loop.
            self._cum = _exact_prefix(theta, new_n)
            self.zeta_n = self._cum[new_n - 1]
        else:
            self.zeta_n += sum(i**-theta for i in range(self.n + 1, new_n + 1))
            self.eta = (1 - (2.0 / new_n) ** (1 - theta)) / (
                1 - self.zeta_2 / self.zeta_n
            )
        self.n = new_n


class ScrambledZipfianGenerator:
    """Zipfian ranks hashed over the key space (YCSB's default).

    Hot keys are spread across the keyspace instead of clustering at
    the low end, which matters for range indexes and sharding.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        rank = self._zipf.next()
        return zlib.crc32(rank.to_bytes(8, "little")) % self.n

    def grow(self, new_n: int) -> None:
        """Extend the key space after inserts.

        Without this, scrambled workloads kept sampling the stale rank
        range and hash modulo after the key space grew (its siblings
        already grew); delegates to :meth:`ZipfianGenerator.grow`,
        which is incremental (amortized O(1) per insert)."""
        if new_n > self.n:
            self._zipf.grow(new_n)
            self.n = new_n


class HotKeyStormGenerator:
    """Celebrity skew: a handful of hot keys absorb a fixed share of
    traffic, the rest falls through to a scrambled Zipfian tail.

    Models the extreme-skew storm (theta >= 1.2) that crushes a single
    shard: with probability ``celebrity_share`` a draw returns one of
    ``celebrities`` keys — the *same* keys the scrambled tail maps its
    top ranks to, so the boost stacks on the distribution's natural hot
    set rather than inventing a second one.  With the defaults (5
    celebrities at 35%), well over 30% of all traffic lands on five
    keys scattered across the key space.
    """

    def __init__(
        self,
        n: int,
        theta: float = 1.2,
        rng: Optional[random.Random] = None,
        celebrities: int = 5,
        celebrity_share: float = 0.35,
    ):
        if celebrities < 1:
            raise ValueError(f"need at least one celebrity: {celebrities}")
        if not 0.0 < celebrity_share < 1.0:
            raise ValueError(
                f"celebrity share must be in (0, 1): {celebrity_share}"
            )
        self.n = n
        self.rng = rng or random.Random()
        self.celebrities = min(celebrities, n)
        self.celebrity_share = celebrity_share
        self._tail = ScrambledZipfianGenerator(n, theta, self.rng)

    def next(self) -> int:
        if self.rng.random() < self.celebrity_share:
            rank = self.rng.randrange(self.celebrities)
            return zlib.crc32(rank.to_bytes(8, "little")) % self.n
        return self._tail.next()

    def grow(self, new_n: int) -> None:
        if new_n > self.n:
            self._tail.grow(new_n)
            self.n = new_n


class UniformGenerator:
    """Every key equally likely."""

    def __init__(self, n: int, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item: {n}")
        self.n = n
        self.rng = rng or random.Random()

    def next(self) -> int:
        return self.rng.randrange(self.n)


class LatestGenerator:
    """Skewed toward recently touched keys (YCSB-D's distribution).

    Recency ranks are hashed over the key space like YCSB's scrambled
    generators: the hot set is small and shared between readers and
    updaters, but *scattered* across the key space rather than
    clustered at one end (clustering would hand range-partitioned
    block caches an artificial spatial-locality gift).
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        offset = self._zipf.next()
        recency_rank = max(0, self.n - 1 - offset)
        return zlib.crc32(recency_rank.to_bytes(8, "big")) % self.n

    def grow(self, new_n: int) -> None:
        """Extend the key space after inserts.

        Delegates to :meth:`ZipfianGenerator.grow`, which extends the
        zeta prefix incrementally — growing one key at a time over n
        inserts costs O(n) total, not the O(n²) a full rebuild per
        grow would."""
        if new_n > self.n:
            self._zipf.grow(new_n)
            self.n = new_n
