"""Key-popularity distributions, following the YCSB reference generators.

The paper uses YCSB with a Zipfian coefficient of 0.99 by default and
sweeps 0.5–1.5 for the skew experiment (Figure 9).
"""

from __future__ import annotations

import random
import zlib
from typing import Optional


class ZipfianGenerator:
    """Gray et al.'s rejection-free zipfian sampler (as in YCSB).

    Produces ranks in ``[0, n)`` where rank 0 is the most popular.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item: {n}")
        if theta <= 0 or theta == 1.0:
            raise ValueError(f"theta must be positive and != 1: {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random()
        self.zeta_n = self._zeta(n, theta)
        self.zeta_2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta_2 / self.zeta_n)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i**theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


class ScrambledZipfianGenerator:
    """Zipfian ranks hashed over the key space (YCSB's default).

    Hot keys are spread across the keyspace instead of clustering at
    the low end, which matters for range indexes and sharding.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        rank = self._zipf.next()
        return zlib.crc32(rank.to_bytes(8, "little")) % self.n


class UniformGenerator:
    """Every key equally likely."""

    def __init__(self, n: int, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError(f"need at least one item: {n}")
        self.n = n
        self.rng = rng or random.Random()

    def next(self) -> int:
        return self.rng.randrange(self.n)


class LatestGenerator:
    """Skewed toward recently touched keys (YCSB-D's distribution).

    Recency ranks are hashed over the key space like YCSB's scrambled
    generators: the hot set is small and shared between readers and
    updaters, but *scattered* across the key space rather than
    clustered at one end (clustering would hand range-partitioned
    block caches an artificial spatial-locality gift).
    """

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[random.Random] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        offset = self._zipf.next()
        recency_rank = max(0, self.n - 1 - offset)
        return zlib.crc32(recency_rank.to_bytes(8, "big")) % self.n

    def grow(self, new_n: int) -> None:
        """Extend the key space after inserts."""
        if new_n > self.n:
            self.n = new_n
            self._zipf = ZipfianGenerator(new_n, self._zipf.theta, self._zipf.rng)
