"""Workload generators: YCSB (Table 2) and the Nutanix production mix."""

from repro.workloads.zipfian import (
    HotKeyStormGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.generator import Op, OpStream, make_key, make_value
from repro.workloads.ycsb import (
    WORKLOADS,
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_E,
    YCSB_LOAD,
)
from repro.workloads.nutanix import NUTANIX
from repro.workloads.trace import TraceWriter, capture_workload, read_trace, replay

__all__ = [
    "ZipfianGenerator",
    "HotKeyStormGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "LatestGenerator",
    "Op",
    "OpStream",
    "make_key",
    "make_value",
    "WorkloadSpec",
    "WORKLOADS",
    "YCSB_LOAD",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "NUTANIX",
    "TraceWriter",
    "read_trace",
    "replay",
    "capture_workload",
]
