"""Operation streams: the glue between workload specs and the harness."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

_KEY_PREFIX = b"user"


def make_key(index: int) -> bytes:
    """YCSB-style key: 'user' + zero-padded decimal index."""
    return _KEY_PREFIX + b"%012d" % index


def key_index(key: bytes) -> int:
    return int(key[len(_KEY_PREFIX):])


def make_value(key: bytes, size: int, version: int = 0) -> bytes:
    """Deterministic value bytes: verifiable yet incompressible-ish."""
    if size < 1:
        raise ValueError(f"value size must be positive: {size}")
    seed = zlib.crc32(key) ^ version
    unit = seed.to_bytes(4, "little")
    reps = -(-size // 4)
    buf = unit * reps
    # Values are usually 4-byte multiples: skip the no-op tail slice
    # (it would copy the whole buffer again, once per generated write).
    return buf if len(buf) == size else buf[:size]


@dataclass(slots=True)
class Op:
    """One workload operation (slotted: one is built per simulated op)."""

    kind: str  # "insert" | "update" | "read" | "scan" | "delete"
    key: bytes
    value: Optional[bytes] = None
    scan_length: int = 0


class OpStream:
    """Generates operations for one workload spec over one key space.

    Each consumer (virtual thread) should own its stream, seeded
    differently, so threads don't replay identical key sequences.
    """

    def __init__(
        self,
        spec: "WorkloadSpec",
        num_keys: int,
        value_size: int = 1024,
        theta: float = 0.99,
        seed: int = 0,
        insert_seq: Optional["InsertSequence"] = None,
    ) -> None:
        from repro.workloads.zipfian import (
            HotKeyStormGenerator,
            LatestGenerator,
            ScrambledZipfianGenerator,
            UniformGenerator,
        )

        self.spec = spec
        self.num_keys = num_keys
        self.value_size = value_size
        self.rng = random.Random(seed)
        if spec.distribution == "zipfian":
            self.chooser = ScrambledZipfianGenerator(num_keys, theta, self.rng)
        elif spec.distribution == "latest":
            self.chooser = LatestGenerator(num_keys, theta, self.rng)
        elif spec.distribution == "uniform":
            self.chooser = UniformGenerator(num_keys, self.rng)
        elif spec.distribution == "hotstorm":
            self.chooser = HotKeyStormGenerator(num_keys, theta, self.rng)
        else:
            raise ValueError(f"unknown distribution: {spec.distribution}")
        self._version = self.rng.randrange(1 << 30)
        self.insert_seq = insert_seq

    def _pick_key(self) -> bytes:
        return make_key(self.chooser.next())

    def ops(self, count: int) -> Iterator[Op]:
        spec = self.spec
        # Cumulative thresholds, hoisted (same left-to-right float sums
        # as the old inline comparisons).  When the spec's insert share
        # snaps to zero, the scan threshold is forced to 1.0 so float
        # residue in read+update+scan (e.g. 0.95 + 0.05 summing a hair
        # under 1.0) can never emit a phantom insert on a rare draw.
        c_read = spec.read
        c_update = c_read + spec.update
        c_scan = c_update + spec.scan
        if spec.insert == 0.0:
            c_scan = 1.0
        for _ in range(count):
            roll = self.rng.random()
            if roll < c_read:
                yield Op("read", self._pick_key())
            elif roll < c_update:
                key = self._pick_key()
                self._version += 1
                yield Op(
                    "update", key, make_value(key, self.value_size, self._version)
                )
            elif roll < c_scan:
                length = self.rng.randint(1, spec.max_scan_length)
                yield Op("scan", self._pick_key(), scan_length=length)
            else:
                if self.insert_seq is not None:
                    key = make_key(self.insert_seq.next())
                else:
                    key = self._pick_key()
                self._version += 1
                yield Op(
                    "insert", key, make_value(key, self.value_size, self._version)
                )
                # The "latest" distribution follows the insert frontier:
                # a fresh key becomes the hottest.  grow() is incremental
                # (amortized O(1) per insert), so tracking every insert
                # is affordable.
                grow = getattr(self.chooser, "grow", None)
                if grow is not None:
                    idx = key_index(key)
                    if idx >= self.num_keys:
                        self.num_keys = idx + 1
                        grow(self.num_keys)


class InsertSequence:
    """Shared monotone key-index source for concurrent inserters."""

    def __init__(self, start: int = 0, shuffle_span: int = 0, seed: int = 0) -> None:
        self._next = start
        self._pending: list = []
        self._rng = random.Random(seed)
        self._shuffle_span = shuffle_span

    def next(self) -> int:
        """Next fresh key index (optionally shuffled within a window,
        which is how YCSB loads 'in random order')."""
        if self._shuffle_span <= 1:
            value = self._next
            self._next += 1
            return value
        if not self._pending:
            span = range(self._next, self._next + self._shuffle_span)
            self._next += self._shuffle_span
            self._pending = list(span)
            self._rng.shuffle(self._pending)
        return self._pending.pop()
