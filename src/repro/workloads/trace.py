"""Operation-trace capture and replay.

Production evaluations (like the paper's Nutanix run, §7.5) replay
recorded traces rather than synthetic mixes.  This module provides the
plumbing: record the operations any workload performs into a portable
text format, then replay the file against any store — including one
with a different engine, for apples-to-apples comparisons on the exact
same operation sequence.

Format: one op per line, tab-separated, keys/values hex-encoded::

    put\\t6b6579\\t76616c7565
    get\\t6b6579
    scan\\t6b6579\\t50
    delete\\t6b6579
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.workloads.generator import Op

PathLike = Union[str, Path]


class TraceWriter:
    """Append operations to a trace file (or any text stream)."""

    def __init__(self, target: Union[PathLike, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            self._stream = open(target, "w", encoding="ascii")
            self._owned = True
        self.ops_written = 0

    def record(self, op: Op) -> None:
        if op.kind in ("insert", "update", "put"):
            assert op.value is not None
            line = f"put\t{op.key.hex()}\t{op.value.hex()}"
        elif op.kind == "read":
            line = f"get\t{op.key.hex()}"
        elif op.kind == "scan":
            line = f"scan\t{op.key.hex()}\t{op.scan_length}"
        elif op.kind == "delete":
            line = f"delete\t{op.key.hex()}"
        else:
            raise ValueError(f"cannot record op kind: {op.kind}")
        self._stream.write(line + "\n")
        self.ops_written += 1

    def record_all(self, ops: Iterable[Op]) -> int:
        before = self.ops_written
        for op in ops:
            self.record(op)
        return self.ops_written - before

    def close(self) -> None:
        if self._owned:
            self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(source: Union[PathLike, IO[str]]) -> Iterator[Op]:
    """Parse a trace back into :class:`Op` objects (lazy)."""
    if hasattr(source, "read"):
        lines: Iterable[str] = source  # type: ignore[assignment]
        close = False
    else:
        lines = open(source, "r", encoding="ascii")
        close = True
    try:
        for lineno, raw in enumerate(lines, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            kind = parts[0]
            if kind == "put" and len(parts) == 3:
                yield Op("update", bytes.fromhex(parts[1]), bytes.fromhex(parts[2]))
            elif kind == "get" and len(parts) == 2:
                yield Op("read", bytes.fromhex(parts[1]))
            elif kind == "scan" and len(parts) == 3:
                yield Op("scan", bytes.fromhex(parts[1]), scan_length=int(parts[2]))
            elif kind == "delete" and len(parts) == 2:
                yield Op("delete", bytes.fromhex(parts[1]))
            else:
                raise ValueError(f"malformed trace line {lineno}: {line!r}")
    finally:
        if close:
            lines.close()  # type: ignore[union-attr]


def replay(store, ops: Iterable[Op], thread=None) -> int:
    """Apply a trace to a store; returns the operation count."""
    count = 0
    for op in ops:
        if op.kind in ("update", "insert"):
            store.put(op.key, op.value, thread)
        elif op.kind == "read":
            store.get(op.key, thread)
        elif op.kind == "scan":
            store.scan(op.key, op.scan_length, thread)
        elif op.kind == "delete":
            store.delete(op.key, thread)
        else:  # pragma: no cover - read_trace never yields others
            raise ValueError(f"cannot replay op kind: {op.kind}")
        count += 1
    return count


def capture_workload(
    spec,
    num_ops: int,
    num_keys: int,
    target: Union[PathLike, IO[str]],
    value_size: int = 1024,
    theta: float = 0.99,
    seed: int = 0,
) -> int:
    """Generate a workload and persist it as a trace in one step."""
    from repro.workloads.generator import OpStream

    stream = OpStream(spec, num_keys, value_size=value_size, theta=theta, seed=seed)
    with TraceWriter(target) as writer:
        return writer.record_all(stream.ops(num_ops))
