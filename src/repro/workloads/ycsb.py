"""YCSB workload definitions, exactly as the paper runs them (Table 2).

The paper's variants differ slightly from stock YCSB: D is "read
latest" with 5% *updates*, and E is scan-intensive with 5% *updates*
(not inserts).  LOAD inserts the whole dataset in random order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix of one workload (fractions sum to <= 1; the
    remainder is inserts)."""

    name: str
    read: float = 0.0
    update: float = 0.0
    scan: float = 0.0
    distribution: str = "zipfian"  # "zipfian" | "latest" | "uniform" | "hotstorm"
    max_scan_length: int = 100  # uniform 1..N, mean ~50 (§7.1)
    description: str = ""

    @property
    def insert(self) -> float:
        remainder = 1.0 - self.read - self.update - self.scan
        # Snap float residue to zero: 1.0 - 0.95 - 0.05 is ~4.2e-17,
        # not a real insert share — left unsnapped, nominally
        # insert-free mixes (B/D/E) report a phantom insert fraction
        # and can emit phantom inserts on rare draws.
        return remainder if remainder > 1e-9 else 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.scan
        if total > 1.0 + 1e-9:
            raise ValueError(f"{self.name}: op mix sums to {total} > 1")


YCSB_LOAD = WorkloadSpec(
    name="LOAD", description="Write-only: 100% inserts"
)
YCSB_A = WorkloadSpec(
    name="A", read=0.5, update=0.5,
    description="Write-intensive: 50% updates, 50% reads",
)
YCSB_B = WorkloadSpec(
    name="B", read=0.95, update=0.05,
    description="Read-intensive: 5% updates, 95% reads",
)
YCSB_C = WorkloadSpec(
    name="C", read=1.0, description="Read-only",
)
YCSB_D = WorkloadSpec(
    name="D", read=0.95, update=0.05, distribution="latest",
    description="Read-latest: 5% updates, 95% reads",
)
YCSB_E = WorkloadSpec(
    name="E", update=0.05, scan=0.95,
    description="Scan-intensive: 5% updates, 95% scans",
)

WORKLOADS = {
    spec.name: spec
    for spec in (YCSB_LOAD, YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_E)
}
