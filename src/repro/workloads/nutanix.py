"""The Nutanix production workload (§7.5, Figure 10b).

Only aggregate characteristics are published: "rather write-intensive:
57% Updates, 41% Reads, and 2% Scans", with real-world skew.  We
synthesize a stream with exactly those ratios over a scrambled-Zipfian
popularity distribution — the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from repro.workloads.ycsb import WorkloadSpec

NUTANIX = WorkloadSpec(
    name="Nutanix",
    read=0.41,
    update=0.57,
    scan=0.02,
    description="Production mix: 57% updates, 41% reads, 2% scans",
)
