"""Per-key temperature tracking for tiered placement.

Two complementary signals, both deterministic and DRAM-resident:

* **frequency** — a TinyLFU-style count-min sketch (the same
  :class:`~repro.cache.sketch.FrequencySketch` machinery the read
  cache uses for admission), keyed by HSIT index.  Aging halves the
  counters periodically, so the estimate tracks *recent* popularity.
* **recency** — an ops-counted clock bit: every touch stamps the key
  with the tracker's logical tick, and a key stamped within the last
  ``recency_window`` operations is protected from demotion even if its
  sketch count is still low (freshly written data always starts cold
  by frequency).

GC asks :meth:`is_hot` when choosing which survivors stay on the fast
tier; the read path asks :meth:`should_promote` when a cold-tier read
suggests the record warmed back up.  Both views live in DRAM only — a
crash resets the temperature state, which merely restarts placement
from a cold start (the durable data is unaffected).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.sketch import FrequencySketch


class TemperatureTracker:
    """Frequency sketch + recency clock over HSIT entry indexes."""

    __slots__ = ("sketch", "hot_threshold", "promote_threshold",
                 "recency_window", "_tick", "_last_touch")

    def __init__(
        self,
        sketch_width: int = 8192,
        hot_threshold: int = 2,
        promote_threshold: int = 2,
        recency_window: int = 2048,
    ) -> None:
        if hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1: {hot_threshold}")
        if promote_threshold < 1:
            raise ValueError(
                f"promote_threshold must be >= 1: {promote_threshold}"
            )
        if recency_window < 0:
            raise ValueError(f"recency_window must be >= 0: {recency_window}")
        self.sketch = FrequencySketch(width=sketch_width)
        self.hot_threshold = hot_threshold
        self.promote_threshold = promote_threshold
        self.recency_window = recency_window
        self._tick = 0
        self._last_touch: Dict[int, int] = {}

    def touch(self, idx: int) -> None:
        """Count one access (read or write) of HSIT entry ``idx``."""
        self._tick += 1
        self._last_touch[idx] = self._tick
        self.sketch.add(idx.to_bytes(8, "little"))

    def forget(self, idx: int) -> None:
        """Drop the recency stamp of a deleted key (the sketch entry
        ages out on its own)."""
        self._last_touch.pop(idx, None)

    def frequency(self, idx: int) -> int:
        """Recent access-frequency estimate (sketch minimum)."""
        return self.sketch.estimate(idx.to_bytes(8, "little"))

    def is_recent(self, idx: int) -> bool:
        """Touched within the last ``recency_window`` tracked ops?"""
        last = self._last_touch.get(idx)
        if last is None:
            return False
        return self._tick - last <= self.recency_window

    def is_hot(self, idx: int, pressure: bool = False) -> bool:
        """Should this record stay on the fast tier?

        Hot means frequently accessed, or — unless the fast tier is
        under space ``pressure`` — recently touched (new data gets a
        grace period to prove itself before demotion).
        """
        if self.frequency(idx) >= self.hot_threshold:
            return True
        return not pressure and self.is_recent(idx)

    def should_promote(self, idx: int) -> bool:
        """Has a cold-tier record warmed enough to move back up?"""
        return self.frequency(idx) >= self.promote_threshold

    def crash(self) -> None:
        """DRAM loses the temperature state; placement restarts cold."""
        self.sketch = FrequencySketch(width=self.sketch.width)
        self._tick = 0
        self._last_touch.clear()
