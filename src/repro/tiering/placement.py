"""Tier manager: placement policy, promotion queue, observability.

The :class:`TierManager` is the DRAM-side brain of tiered placement.
It owns the :class:`~repro.tiering.temperature.TemperatureTracker`,
knows which Value Storages are fast and which are cold (the store lays
them out fast-first, so ``vs_id < num_fast`` identifies the tier), and
accumulates the ``tier.*`` counters.  Promotion candidates found on
the read path are queued here — deduplicated by HSIT index and tagged
with the pointer word observed at read time, so the background drain
can detect that a newer client value superseded the cold copy (fresh-
key protection) and drop the stale promotion instead of publishing it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from repro.core.config import TIER_TEMPERATURE, PrismConfig
from repro.tiering.temperature import TemperatureTracker

# A queued promotion: (hsit_idx, expected pointer word at enqueue time,
# value bytes read from the cold tier).
PendingPromotion = Tuple[int, int, bytes]


class TierManager:
    """Placement policy + temperature state + tier.* counters."""

    def __init__(self, cfg: PrismConfig) -> None:
        self.policy = cfg.tier_policy
        self.num_fast = cfg.num_ssds
        self.num_cold = cfg.num_cold_ssds
        self.fast_headroom = cfg.tier_fast_headroom
        self.tracker = TemperatureTracker(
            sketch_width=cfg.tier_sketch_width,
            hot_threshold=cfg.tier_hot_threshold,
            promote_threshold=cfg.tier_promote_threshold,
            recency_window=cfg.tier_recency_window,
        )
        # Counters surfaced through stats()/metrics.
        self.demotions = 0  # records moved fast -> cold
        self.promotions = 0  # records moved cold -> fast
        self.promotions_stale = 0  # dropped: key superseded since read
        self.cold_reclaims = 0  # records placed cold straight from PWB
        self.spills = 0  # hot records forced cold: fast tier had no room
        self.fast_reads = 0
        self.cold_reads = 0
        self.demoted_bytes = 0
        self.promoted_bytes = 0
        # Promotion queue, deduplicated by HSIT index.
        self._pending: Deque[PendingPromotion] = deque()
        self._queued: Set[int] = set()

    @property
    def temperature_policy(self) -> bool:
        """True when placement follows hotness (vs the spread baseline)."""
        return self.policy == TIER_TEMPERATURE

    def is_cold_vs(self, vs_id: int) -> bool:
        return vs_id >= self.num_fast

    # -- promotion queue ------------------------------------------------

    def enqueue_promotion(self, idx: int, expected_word: int, value: bytes) -> None:
        """Remember a cold-read value for background promotion."""
        if idx in self._queued:
            return
        self._queued.add(idx)
        self._pending.append((idx, expected_word, value))

    def has_pending(self) -> bool:
        return bool(self._pending)

    def take_pending(self, limit: int = 64) -> List[PendingPromotion]:
        """Drain up to ``limit`` queued promotions."""
        batch: List[PendingPromotion] = []
        while self._pending and len(batch) < limit:
            entry = self._pending.popleft()
            self._queued.discard(entry[0])
            batch.append(entry)
        return batch

    # -- observability --------------------------------------------------

    def stats(self, store) -> dict:
        """The tier.* surface merged into ``Prism.stats()``."""
        fast = store.storages[: self.num_fast]
        cold = store.storages[self.num_fast :]
        fast_used = sum(vs.used_bytes() for vs in fast)
        cold_used = sum(vs.used_bytes() for vs in cold)
        fast_cap = sum(vs.ssd.spec.capacity for vs in fast)
        cold_cap = sum(vs.ssd.spec.capacity for vs in cold)
        bytes_put = max(1, store.bytes_put)
        return {
            "tier_demotions": self.demotions,
            "tier_promotions": self.promotions,
            "tier_promotions_stale": self.promotions_stale,
            "tier_cold_reclaims": self.cold_reclaims,
            "tier_spills": self.spills,
            "tier_fast_reads": self.fast_reads,
            "tier_cold_reads": self.cold_reads,
            "tier_demoted_bytes": self.demoted_bytes,
            "tier_promoted_bytes": self.promoted_bytes,
            "tier_demotion_waf": self.demoted_bytes / bytes_put,
            "tier_fast_used_bytes": fast_used,
            "tier_fast_capacity_bytes": fast_cap,
            "tier_fast_occupancy": fast_used / fast_cap if fast_cap else 0.0,
            "tier_cold_used_bytes": cold_used,
            "tier_cold_capacity_bytes": cold_cap,
            "tier_cold_occupancy": cold_used / cold_cap if cold_cap else 0.0,
            "tier_cold_bytes_written": sum(
                vs.ssd.bytes_written for vs in cold
            ),
        }

    def crash(self) -> None:
        """All tier state is DRAM: a crash clears it.  Placement
        restarts from a cold sketch; the queued promotions die with the
        process (the cold copies stay durable and readable)."""
        self.tracker.crash()
        self._pending.clear()
        self._queued.clear()
