"""Hot/cold tiered data placement (ISSUE 9, PrismDB direction).

Prism's thesis is matching data to heterogeneous devices; this package
extends Value Storage from one uniform flash tier to two: the fast
low-latency SSDs the paper evaluates, plus a pool of cheap
high-capacity QLC cold SSDs.  A per-key :class:`TemperatureTracker`
(count-min frequency sketch + an ops-counted recency clock) classifies
records; GC and reclamation consult it to demote cold survivors onto
the cold tier, and re-access promotes values back through the normal
write path.  :class:`TierManager` holds the policy, the promotion
queue, and the tier.* observability surface.
"""

from repro.tiering.temperature import TemperatureTracker
from repro.tiering.placement import TierManager

__all__ = ["TemperatureTracker", "TierManager"]
