"""Common device machinery: timing channels, accounting, crash hooks."""

from __future__ import annotations

from typing import Optional

from repro.sim.resources import BandwidthChannel
from repro.sim.vthread import VThread
from repro.storage.specs import DeviceSpec


class StorageError(Exception):
    """Base class for device-level failures."""


class OutOfSpaceError(StorageError):
    """Raised when an allocation exceeds device capacity."""


class _NullFaultInjector:
    """The default no-fault injector: hooks are no-ops.

    The real injector lives in :mod:`repro.faults.injector`; devices
    hold this shared sentinel until one is attached, so the fault-free
    path costs one attribute lookup and a no-op call per IO and never
    touches virtual time or randomness.
    """

    enabled = False

    # The consult hooks return the fail-slow latency penalty (extra
    # virtual seconds the device adds to the IO); the null injector
    # never delays anything.
    def before_io(self, device, op: str, at: float) -> float:
        return 0.0

    def before_flush(self, device, at: float) -> float:
        return 0.0

    def corrupt_write(self, device, at: float, offset: int, data: bytes) -> bytes:
        return data

    def is_dead(self, name: str) -> bool:
        return False

    def kill_device(self, name: str, at: float = 0.0) -> None:
        raise RuntimeError("no fault injector attached")


NULL_INJECTOR = _NullFaultInjector()


class Device:
    """Base class for all simulated devices.

    Timing: every transfer is served by a per-direction
    :class:`BandwidthChannel`; callers pass a :class:`VThread` whose
    clock is advanced to the completion time, or ``None`` for untimed
    (functional) access.

    Accounting: ``bytes_read`` / ``bytes_written`` feed the
    write-amplification and endurance analyses (Figure 12, §8).
    """

    def __init__(self, spec: DeviceSpec, name: Optional[str] = None) -> None:
        self.spec = spec
        self.name = name or spec.name
        self.read_channel = BandwidthChannel(
            spec.read_bandwidth, lanes=spec.lanes, name=f"{self.name}.read"
        )
        self.write_channel = BandwidthChannel(
            spec.write_bandwidth, lanes=spec.lanes, name=f"{self.name}.write"
        )
        # Latencies and bound channel methods cached off the (frozen)
        # spec/channels: the charge methods sit on the per-IO hot path
        # and a two-hop attribute chase per call adds up.
        self._read_latency = spec.read_latency
        self._write_latency = spec.write_latency
        self._capacity = spec.capacity
        self._read_request = self.read_channel.request
        self._write_request = self.write_channel.request
        self.bytes_read = 0
        self.bytes_written = 0
        # Fault injection: consulted by the timed IO paths of concrete
        # devices.  The shared null sentinel keeps the default free.
        self.injector = NULL_INJECTOR

    # Crash ordering: volatile components are crashed first by
    # CrashScenario.power_failure (DRAM subclasses override to True).
    volatile = False

    def attach_injector(self, injector) -> None:
        """Route this device's timed IO through a fault injector."""
        self.injector = injector

    @property
    def capacity(self) -> int:
        return self._capacity

    def charge_read(self, thread: Optional[VThread], nbytes: int) -> float:
        """Account and time a read; returns the completion time."""
        self.bytes_read += nbytes
        if thread is None:
            return 0.0
        end = self.read_channel.request(thread.now, nbytes, self._read_latency)
        if end > thread.now:
            thread.now = end
            clock = thread.clock
            if end > clock._now:
                clock._now = end
        return end

    def charge_write(self, thread: Optional[VThread], nbytes: int) -> float:
        """Account and time a write; returns the completion time."""
        self.bytes_written += nbytes
        if thread is None:
            return 0.0
        end = self.write_channel.request(thread.now, nbytes, self._write_latency)
        if end > thread.now:
            thread.now = end
            clock = thread.clock
            if end > clock._now:
                clock._now = end
        return end

    def charge_write_async(self, at: float, nbytes: int) -> float:
        """Account a write without blocking any thread.

        Returns the virtual completion time; used by background writers
        that only need to know when the device finished.
        """
        self.bytes_written += nbytes
        return self.write_channel.request(at, nbytes, self._write_latency)

    def charge_read_async(self, at: float, nbytes: int) -> float:
        self.bytes_read += nbytes
        return self.read_channel.request(at, nbytes, self._read_latency)

    def endurance_consumed(self) -> float:
        """Fraction of rated lifetime writes consumed so far."""
        limit = self.spec.endurance_bytes()
        if limit == float("inf"):
            return 0.0
        return self.bytes_written / limit

    def crash(self) -> None:
        """Drop volatile state. Subclasses override."""

    def reset_accounting(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
