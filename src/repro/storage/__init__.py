"""Simulated heterogeneous storage devices.

The paper's testbed (Figure 1) pairs Intel Optane DCPMM with PCIe-4
flash SSDs.  This package reproduces those devices as virtual-time
models with faithful *semantics*:

* :class:`NVMDevice` is byte-addressable and persistent, but stores go
  through a simulated volatile CPU cache — data is durable only after
  an explicit ``flush``; a crash drops unflushed lines.  This is what
  makes the cross-media crash-consistency protocol testable.
* :class:`SSDDevice` is block-addressable with separate read/write
  bandwidth channels and an :class:`IOUring`-style batched async
  interface; in-flight writes are lost on crash.
* :class:`DRAMDevice` is fast, volatile, and capacity-accounted.
"""

from repro.storage.specs import (
    DEVICE_CATALOG,
    DRAM_SPEC,
    FLASH_SSD_GEN3_SPEC,
    FLASH_SSD_GEN4_SPEC,
    NVM_SPEC,
    OPTANE_SSD_SPEC,
    DeviceSpec,
)
from repro.storage.base import Device, StorageError, OutOfSpaceError
from repro.storage.dram import DRAMDevice
from repro.storage.nvm import NVMDevice, PersistentHeap
from repro.storage.ssd import SSDDevice
from repro.storage.iouring import IORequest, IOUring
from repro.storage.raid import RAID0
from repro.storage.crash import CrashPoint, CrashScenario, SimulatedCrash

__all__ = [
    "DeviceSpec",
    "DEVICE_CATALOG",
    "DRAM_SPEC",
    "NVM_SPEC",
    "OPTANE_SSD_SPEC",
    "FLASH_SSD_GEN4_SPEC",
    "FLASH_SSD_GEN3_SPEC",
    "Device",
    "StorageError",
    "OutOfSpaceError",
    "DRAMDevice",
    "NVMDevice",
    "PersistentHeap",
    "SSDDevice",
    "IOUring",
    "IORequest",
    "RAID0",
    "CrashScenario",
    "CrashPoint",
    "SimulatedCrash",
]
