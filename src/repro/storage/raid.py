"""RAID-0 striping across multiple SSDs.

The paper's baselines aggregate eight SSDs with mdadm/dm-stripe RAID-0
(§7.1).  Prism itself does *not* use RAID — it manages one Value
Storage per SSD — so this module exists for the baselines (and for the
#SSD sweeps of Figures 13–14, where KVell runs on a stripe set).

Fault behaviour: every IO consults each member's fault injector, and a
member failure surfaces as the device's own :class:`StorageError` with
``raid_member`` set to the failing member's index — RAID-0 has no
redundancy, so the stripe set cannot mask the error.  The one
concession is :meth:`RAID0.degraded_read`, which (with exactly one
member dead) returns the surviving extents and reports the dead ones
as missing ranges instead of failing the whole read.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.vthread import VThread
from repro.storage.base import StorageError
from repro.storage.ssd import SSDDevice


class RAID0:
    """Stripe a flat address space across member SSDs."""

    def __init__(self, devices: Sequence[SSDDevice], stripe_size: int = 512 * 1024) -> None:
        if not devices:
            raise ValueError("RAID0 needs at least one device")
        if stripe_size <= 0:
            raise ValueError(f"stripe size must be positive: {stripe_size}")
        self.devices: List[SSDDevice] = list(devices)
        self.stripe_size = stripe_size
        self.capacity = min(d.capacity for d in self.devices) * len(self.devices)

    def _extents(
        self, offset: int, size: int
    ) -> List[Tuple[int, SSDDevice, int, int]]:
        """Map a logical range to (member, device, dev_offset, length)."""
        if offset < 0 or size < 0 or offset + size > self.capacity:
            raise ValueError(f"RAID0 access [{offset}, {offset + size}) out of range")
        pieces = []
        n = len(self.devices)
        pos = offset
        remaining = size
        while remaining > 0:
            stripe_idx, stripe_off = divmod(pos, self.stripe_size)
            member = stripe_idx % n
            dev = self.devices[member]
            dev_stripe = stripe_idx // n
            take = min(self.stripe_size - stripe_off, remaining)
            pieces.append((member, dev, dev_stripe * self.stripe_size + stripe_off, take))
            pos += take
            remaining -= take
        return pieces

    @staticmethod
    def _consult(member: int, dev: SSDDevice, op: str, at: float) -> float:
        """Let the member's injector veto the IO; tag failures with the
        member index so callers know which leg of the stripe died.
        Returns the member's fail-slow latency penalty (0.0 normally)."""
        try:
            return dev.injector.before_io(dev, op, at)
        except StorageError as exc:
            exc.raid_member = member
            raise

    def _dead_members(self) -> List[int]:
        return [
            i
            for i, dev in enumerate(self.devices)
            if dev.injector.is_dead(dev.name)
        ]

    # ------------------------------------------------------------------
    # timed IO — pieces proceed in parallel, caller waits for the last
    # ------------------------------------------------------------------
    def read(self, thread: Optional[VThread], offset: int, size: int) -> bytes:
        chunks = []
        at = thread.now if thread is not None else 0.0
        done = at
        for member, dev, dev_off, length in self._extents(offset, size):
            penalty = self._consult(member, dev, "read", at)
            chunks.append(dev.read_raw(dev_off, length))
            dev.read_ios += 1
            if thread is not None:
                end = dev.read_channel.request(thread.now, length, dev.spec.read_latency)
                dev.bytes_read += length
                done = max(done, end + penalty if penalty else end)
            else:
                dev.bytes_read += length
        if thread is not None:
            thread.wait_until(done)
        return b"".join(chunks)

    def write(self, thread: Optional[VThread], offset: int, data: bytes) -> None:
        at = thread.now if thread is not None else 0.0
        done = at
        pos = 0
        for member, dev, dev_off, length in self._extents(offset, len(data)):
            penalty = self._consult(member, dev, "write", at)
            dev.write_raw(dev_off, data[pos : pos + length])
            dev.write_ios += 1
            pos += length
            if thread is not None:
                end = dev.write_channel.request(thread.now, length, dev.spec.write_latency)
                dev.bytes_written += length
                done = max(done, end + penalty if penalty else end)
            else:
                dev.bytes_written += length
        if thread is not None:
            thread.wait_until(done)

    def degraded_read(
        self, thread: Optional[VThread], offset: int, size: int
    ) -> Tuple[bytes, List[Tuple[int, int]]]:
        """Best-effort read with exactly one member dead.

        Extents on the dead member come back zero-filled and their
        logical ``(offset, length)`` ranges are reported in the second
        return value; surviving members are read (and timed) normally.
        Raises :class:`StorageError` when no member is dead (use
        :meth:`read`) or when two or more are (nothing meaningful
        survives a RAID-0 double failure).
        """
        dead = self._dead_members()
        if len(dead) != 1:
            raise StorageError(
                f"degraded_read needs exactly one dead member, have {dead}"
            )
        chunks = []
        missing: List[Tuple[int, int]] = []
        at = thread.now if thread is not None else 0.0
        done = at
        pos = offset
        for member, dev, dev_off, length in self._extents(offset, size):
            if member == dead[0]:
                chunks.append(b"\0" * length)
                missing.append((pos, length))
                pos += length
                continue
            penalty = self._consult(member, dev, "read", at)
            chunks.append(dev.read_raw(dev_off, length))
            dev.read_ios += 1
            dev.bytes_read += length
            if thread is not None:
                end = dev.read_channel.request(thread.now, length, dev.spec.read_latency)
                done = max(done, end + penalty if penalty else end)
            pos += length
        if thread is not None:
            thread.wait_until(done)
        return b"".join(chunks), missing

    # ------------------------------------------------------------------
    # async IO
    # ------------------------------------------------------------------
    def read_async(self, at: float, offset: int, size: int) -> Tuple[bytes, float]:
        chunks = []
        done = at
        for member, dev, dev_off, length in self._extents(offset, size):
            try:
                completion = dev.read_async(at, dev_off, length)
            except StorageError as exc:
                exc.raid_member = member
                raise
            chunks.append(dev.read_raw(dev_off, length))
            done = max(done, completion)
        return b"".join(chunks), done

    def write_async(self, at: float, offset: int, data: bytes) -> float:
        done = at
        pos = 0
        for member, dev, dev_off, length in self._extents(offset, len(data)):
            try:
                done = max(done, dev.write_async(at, dev_off, data[pos : pos + length]))
            except StorageError as exc:
                exc.raid_member = member
                raise
            pos += length
        return done

    # ------------------------------------------------------------------
    # accounting over members
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure reaches every member of the stripe set."""
        for dev in self.devices:
            dev.crash()

    @property
    def bytes_written(self) -> int:
        return sum(d.bytes_written for d in self.devices)

    @property
    def bytes_read(self) -> int:
        return sum(d.bytes_read for d in self.devices)

    def scan_time(self, used_bytes: int) -> float:
        """Parallel full scan across members (recovery experiment)."""
        per_device = used_bytes / len(self.devices)
        return max(d.scan_time(int(per_device)) for d in self.devices)
