"""Whole-machine crash orchestration for crash-consistency tests.

A power failure hits every device at once: DRAM empties, NVM loses
unflushed cache lines, completed SSD writes survive.  Tests register
devices (and persistent heaps) with a :class:`CrashScenario` and pull
the plug at chosen code points.

:class:`CrashPoint` is the production-side hook: protocol code calls
``maybe_crash("label")`` at every boundary where a power failure has a
distinct outcome, and the crash-exploration harness
(:mod:`repro.faults.crash_sweep`) discovers, arms, and fires those
labels systematically.  Unarmed, non-recording points never touch
virtual time, so instrumented code stays bit-identical to
uninstrumented code.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, runtime_checkable


@runtime_checkable
class Crashable(Protocol):
    """Anything that reacts to power loss."""

    def crash(self) -> None: ...


class CrashScenario:
    """Coordinates a simultaneous crash across registered components."""

    def __init__(self) -> None:
        self._components: List[Crashable] = []
        self.crash_count = 0

    def register(self, component: Crashable) -> Crashable:
        """Track a component; returns it for chaining."""
        if not isinstance(component, Crashable):
            raise TypeError(f"{type(component).__name__} has no crash() method")
        self._components.append(component)
        return component

    def power_failure(self) -> None:
        """Crash every registered component, volatile-first.

        Volatile components (a ``volatile = True`` attribute: DRAM, the
        SVC) lose their contents before any persistent device rolls
        back, so crash semantics do not depend on the order tests
        registered components in — a DRAM cache can never be "read"
        after NVM already reverted.
        """
        ordered = sorted(
            self._components,
            key=lambda c: not getattr(c, "volatile", False),
        )
        for component in ordered:
            component.crash()
        self.crash_count += 1


class CrashPoint:
    """A named point where a test may inject a crash.

    Production code calls ``maybe_crash("after-value-write")``; tests
    arm the point they want — optionally at its Nth occurrence — and
    the crash-sweep harness records every label reached.  Unarmed,
    non-recording points are free.
    """

    def __init__(self, scenario) -> None:
        # ``scenario`` needs only a ``power_failure()`` method: a real
        # CrashScenario, or an adapter around a whole store.
        self.scenario = scenario
        self._armed: str = ""
        self._countdown: int = 0
        self.fired: str = ""
        self.recording = False
        self.seen: Dict[str, int] = {}
        # True while armed or recording.  Hot call sites read this flag
        # instead of paying a maybe_crash() call per label when the
        # point is inert (the overwhelmingly common case).
        self.active = False

    def arm(self, label: str, occurrence: int = 1) -> None:
        """Crash at the ``occurrence``-th time ``label`` is reached."""
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1: {occurrence}")
        self._armed = label
        self._countdown = occurrence
        self.fired = ""
        self.active = True

    def disarm(self) -> None:
        self._armed = ""
        self._countdown = 0
        self.active = self.recording

    def start_recording(self) -> None:
        """Begin counting every label reached (crash-point discovery)."""
        self.recording = True
        self.seen = {}
        self.active = True

    def stop_recording(self) -> Dict[str, int]:
        self.recording = False
        self.active = bool(self._armed)
        return dict(self.seen)

    def maybe_crash(self, label: str) -> None:
        if self.recording:
            self.seen[label] = self.seen.get(label, 0) + 1
        if self._armed and self._armed == label:
            self._countdown -= 1
            if self._countdown > 0:
                return
            self.fired = label
            self._armed = ""
            self.active = self.recording
            self.scenario.power_failure()
            raise SimulatedCrash(label)


class _NullCrashPoint(CrashPoint):
    """Shared inert point for components used outside a store."""

    def __init__(self) -> None:
        super().__init__(scenario=None)

    def arm(self, label: str, occurrence: int = 1) -> None:
        raise RuntimeError("cannot arm the null crash point")

    def maybe_crash(self, label: str) -> None:
        pass


NULL_CRASH_POINT = _NullCrashPoint()


class SimulatedCrash(Exception):
    """Raised at an armed crash point to unwind the in-flight operation."""

    def __init__(self, label: str) -> None:
        super().__init__(f"simulated power failure at '{label}'")
        self.label = label
