"""Whole-machine crash orchestration for crash-consistency tests.

A power failure hits every device at once: DRAM empties, NVM loses
unflushed cache lines, completed SSD writes survive.  Tests register
devices (and persistent heaps) with a :class:`CrashScenario` and pull
the plug at chosen code points.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable


@runtime_checkable
class Crashable(Protocol):
    """Anything that reacts to power loss."""

    def crash(self) -> None: ...


class CrashScenario:
    """Coordinates a simultaneous crash across registered components."""

    def __init__(self) -> None:
        self._components: List[Crashable] = []
        self.crash_count = 0

    def register(self, component: Crashable) -> Crashable:
        """Track a component; returns it for chaining."""
        if not isinstance(component, Crashable):
            raise TypeError(f"{type(component).__name__} has no crash() method")
        self._components.append(component)
        return component

    def power_failure(self) -> None:
        """Crash every registered component, volatile-first."""
        for component in self._components:
            component.crash()
        self.crash_count += 1


class CrashPoint:
    """A named point where a test may inject a crash.

    Production code calls ``maybe_crash("after-value-write")``; tests
    arm the point they want.  Unarmed points are free.
    """

    def __init__(self, scenario: CrashScenario) -> None:
        self.scenario = scenario
        self._armed: str = ""
        self.fired: str = ""

    def arm(self, label: str) -> None:
        self._armed = label
        self.fired = ""

    def maybe_crash(self, label: str) -> None:
        if self._armed and self._armed == label:
            self.fired = label
            self._armed = ""
            self.scenario.power_failure()
            raise SimulatedCrash(label)


class SimulatedCrash(Exception):
    """Raised at an armed crash point to unwind the in-flight operation."""

    def __init__(self, label: str) -> None:
        super().__init__(f"simulated power failure at '{label}'")
        self.label = label
