"""Byte-addressable persistent memory with volatile-cache semantics.

This module is the linchpin of the reproduction.  The paper's crash
consistency protocol (§5.4–5.5) exists because a store to Optane DCPMM
may linger in the volatile CPU cache: an atomic pointer update is *not*
durable until a cache-line flush reaches the DIMM.  We reproduce those
semantics exactly:

* :meth:`NVMDevice.store` updates the current (volatile) view and
  records an undo snapshot of each touched cache line;
* :meth:`NVMDevice.flush` makes the covered lines durable;
* :meth:`NVMDevice.crash` rolls every unflushed line back to its last
  durable content.

Prism's flush-on-read dirty-bit protocol, backward pointers, and
append-only PWB are all validated against these semantics by the crash
tests.

:class:`PersistentHeap` is an object-granularity convenience used by
the persistent key index.  The paper assumes the index guarantees its
own crash consistency ("We assume that the Persistent Key Index ensures
its own crash consistency", §5.5); the heap provides exactly that
contract — objects revert to their last committed snapshot on crash.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.vthread import VThread
from repro.storage.base import Device, OutOfSpaceError, StorageError
from repro.storage.specs import NVM_SPEC, DeviceSpec

CACHE_LINE = 256  # Optane DCPMM internal access granularity (XPLine)
_LINE_SHIFT = 8  # log2(CACHE_LINE)
_PAGE = 4096
_PAGE_SHIFT = 12  # log2(_PAGE)
_PAGE_MASK = _PAGE - 1
# Durable content of a never-written line (shared undo snapshot).
_ZERO_LINE = bytes(CACHE_LINE)


class NVMDevice(Device):
    """Simulated Intel Optane DCPMM with explicit persistence."""

    def __init__(self, spec: Optional[DeviceSpec] = None, name: str = "nvm") -> None:
        super().__init__(spec or NVM_SPEC, name=name)
        self._pages: Dict[int, bytearray] = {}
        # line index -> durable content of that line before unflushed stores
        self._undo: Dict[int, bytes] = {}
        self._brk = 0  # bump allocator
        self.flushes = 0
        self.bytes_flushed = 0
        self.fences = 0
        self.crashes = 0
        # Optional RetryExecutor: when attached, failed flushes retry
        # internally, which covers every persist point (PWB headers,
        # HSIT publishes, bitmap commits) without touching call sites.
        # A flush that fails leaves its lines volatile, so retrying is
        # always safe.
        self._retry = None

    def attach_retry(self, executor) -> None:
        """Retry failed flushes through ``executor`` (idempotent op)."""
        self._retry = executor

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve a region; returns its base address."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive: {nbytes}")
        base = -(-self._brk // align) * align
        if base + nbytes > self.capacity:
            raise OutOfSpaceError(
                f"{self.name}: alloc {nbytes} at {base} exceeds capacity {self.capacity}"
            )
        self._brk = base + nbytes
        return base

    @property
    def used(self) -> int:
        return self._brk

    # ------------------------------------------------------------------
    # raw page access
    # ------------------------------------------------------------------
    def _page(self, idx: int) -> bytearray:
        page = self._pages.get(idx)
        if page is None:
            page = bytearray(_PAGE)
            self._pages[idx] = page
        return page

    def _read_raw(self, addr: int, size: int) -> bytes:
        # Fast path: the access stays within one 4 KB page (true for
        # every word/cache-line access, the bulk of NVM traffic).
        off = addr & _PAGE_MASK
        if off + size <= _PAGE:
            page = self._pages.get(addr >> _PAGE_SHIFT)
            if page is None:
                return bytes(size)
            return bytes(page[off : off + size])
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_idx, off = divmod(addr + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos : pos + take] = page[off : off + take]
            pos += take
        return bytes(out)

    def _write_raw(self, addr: int, data: bytes) -> None:
        size = len(data)
        off = addr & _PAGE_MASK
        if off + size <= _PAGE:
            self._page(addr >> _PAGE_SHIFT)[off : off + size] = data
            return
        pos = 0
        while pos < size:
            page_idx, off = divmod(addr + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            self._page(page_idx)[off : off + take] = data[pos : pos + take]
            pos += take

    def _lines(self, addr: int, size: int) -> range:
        first = addr >> _LINE_SHIFT
        last = (addr + max(size, 1) - 1) >> _LINE_SHIFT
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # load / store / flush / fence
    # ------------------------------------------------------------------
    def load(self, thread: Optional[VThread], addr: int, size: int) -> bytes:
        """Read ``size`` bytes (sees unflushed stores, like a real CPU)."""
        if addr < 0 or addr + size > self._capacity:
            raise StorageError(f"{self.name}: load [{addr}, {addr + size}) out of range")
        # charge_read inlined: word loads dominate NVM traffic.
        self.bytes_read += size
        if thread is not None:
            end = self._read_request(thread.now, size, self._read_latency)
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end
        return self._read_raw(addr, size)

    def load_word(self, thread: Optional[VThread], addr: int) -> int:
        """8-byte load returning an int: identical timing/accounting to
        ``load(thread, addr, 8)`` without the intermediate bytes object.
        HSIT pointer words are the hottest NVM traffic in the store."""
        if addr < 0 or addr + 8 > self._capacity:
            raise StorageError(f"{self.name}: load [{addr}, {addr + 8}) out of range")
        self.bytes_read += 8
        if thread is not None:
            end = self._read_request(thread.now, 8, self._read_latency)
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end
        off = addr & _PAGE_MASK
        if off + 8 > _PAGE:  # pragma: no cover - words are 8-aligned
            return int.from_bytes(self._read_raw(addr, 8), "little")
        page = self._pages.get(addr >> _PAGE_SHIFT)
        if page is None:
            return 0
        return int.from_bytes(page[off : off + 8], "little")

    def store_word(self, thread: Optional[VThread], addr: int, word: int) -> None:
        """8-byte store: identical semantics (undo snapshot, volatile
        view, CPU cost) to ``store(thread, addr, word.to_bytes(8))``."""
        if addr < 0 or addr + 8 > self._capacity:
            raise StorageError(
                f"{self.name}: store [{addr}, {addr + 8}) out of range"
            )
        off = addr & _PAGE_MASK
        if off + 8 > _PAGE:  # pragma: no cover - words are 8-aligned
            self.store(thread, addr, word.to_bytes(8, "little"))
            return
        undo = self._undo
        first = addr >> _LINE_SHIFT
        last = (addr + 7) >> _LINE_SHIFT
        page_idx = addr >> _PAGE_SHIFT
        page = self._pages.get(page_idx)
        if page is None:
            page = self._pages[page_idx] = bytearray(_PAGE)
        if first not in undo:
            # A 256 B line never straddles a 4 KB page, so the snapshot
            # is a single slice of the page just fetched (_read_raw
            # inlined).
            loff = (first << _LINE_SHIFT) & _PAGE_MASK
            undo[first] = page[loff : loff + CACHE_LINE]
        if last != first and last not in undo:
            undo[last] = self._read_raw(last << _LINE_SHIFT, CACHE_LINE)
        page[off : off + 8] = word.to_bytes(8, "little")
        if thread is not None:
            now = thread.now + 5e-9
            thread.now = now
            thread.cpu_time += 5e-9
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def store(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """Store bytes into the volatile view; durable only after flush."""
        size = len(data)
        if addr < 0 or addr + size > self._capacity:
            raise StorageError(
                f"{self.name}: store [{addr}, {addr + size}) out of range"
            )
        # Snapshot durable content of each touched line exactly once.
        undo = self._undo
        first = addr >> _LINE_SHIFT
        last = (addr + (size or 1) - 1) >> _LINE_SHIFT
        if first == last:
            if first not in undo:
                undo[first] = self._read_raw(first << _LINE_SHIFT, CACHE_LINE)
        else:
            for line in range(first, last + 1):
                if line not in undo:
                    undo[line] = self._read_raw(line << _LINE_SHIFT, CACHE_LINE)
        self._write_raw(addr, data)
        if thread is not None:
            # Stores land in the CPU cache: cheap, but not free
            # (thread.spend(5e-9) inlined).
            now = thread.now + 5e-9
            thread.now = now
            thread.cpu_time += 5e-9
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def flush(self, thread: Optional[VThread], addr: int, size: int) -> None:
        """clwb/clflushopt: persist the cache lines covering the range.

        A fault-injected flush failure surfaces *before* any line is
        persisted: the covered lines stay volatile, so the operation
        can be retried wholesale (and is, when a retry executor is
        attached)."""
        penalty = 0.0
        if self._retry is not None:
            def consult() -> float:
                return self.injector.before_flush(
                    self, thread.now if thread is not None else 0.0
                )

            penalty = self._retry.run(
                consult, thread=thread, device=self.name, op="flush"
            )
        elif self.injector.enabled:
            penalty = self.injector.before_flush(
                self, thread.now if thread is not None else 0.0
            )
        undo = self._undo
        first = addr >> _LINE_SHIFT
        last = (addr + (size or 1) - 1) >> _LINE_SHIFT
        if first == last:
            flushed = 1 if undo.pop(first, None) is not None else 0
        else:
            flushed = 0
            for line in range(first, last + 1):
                if undo.pop(line, None) is not None:
                    flushed += 1
        self.flushes += 1
        self.bytes_flushed += flushed * CACHE_LINE
        # The write to the DIMM media happens now (charge_write inlined:
        # flushes run once or more per put).
        nbytes = (flushed if flushed > 1 else 1) * CACHE_LINE
        self.bytes_written += nbytes
        if thread is not None:
            end = self._write_request(thread.now, nbytes, self._write_latency)
            if penalty:
                end += penalty  # fail-slow inflation (gray failure)
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end

    def fence(self, thread: Optional[VThread]) -> None:
        """sfence: ordering point; modelled as a small CPU cost."""
        self.fences += 1
        if thread is not None:
            # thread.spend(10e-9) inlined — one fence per persist.
            now = thread.now + 10e-9
            thread.now = now
            thread.cpu_time += 10e-9
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def persist(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """store + flush + fence in one step.

        The three phases are inlined (same statements, same order) —
        persist() runs at least once per put and the call transitions
        were measurable.
        """
        # -- store --
        size = len(data)
        if addr < 0 or addr + size > self._capacity:
            raise StorageError(
                f"{self.name}: store [{addr}, {addr + size}) out of range"
            )
        undo = self._undo
        pages = self._pages
        first = addr >> _LINE_SHIFT
        last = (addr + (size or 1) - 1) >> _LINE_SHIFT
        if self._retry is None and not self.injector.enabled:
            # Nothing can interrupt between the store and flush phases
            # here (the only raise points are the gated-off injector
            # hooks), so the per-line snapshot the store phase would
            # take is popped unread by the flush phase.  Skip both:
            # drop pre-existing undo entries and count every line in
            # range as flushed — exactly what the two phases net to.
            for line in range(first, last + 1):
                undo.pop(line, None)
            snapshot_lines = False
        else:
            snapshot_lines = True
            # Snapshot each touched line exactly once.  A 256 B line
            # never straddles a 4 KB page, so the snapshot is one page
            # slice (_read_raw inlined: a value-sized record touches
            # ~5 lines).
            for line in range(first, last + 1):
                if line not in undo:
                    laddr = line << _LINE_SHIFT
                    page = pages.get(laddr >> _PAGE_SHIFT)
                    if page is None:
                        undo[line] = _ZERO_LINE
                    else:
                        loff = laddr & _PAGE_MASK
                        undo[line] = page[loff : loff + CACHE_LINE]
        off = addr & _PAGE_MASK
        if off + size <= _PAGE:
            page = pages.get(addr >> _PAGE_SHIFT)
            if page is None:
                page = pages[addr >> _PAGE_SHIFT] = bytearray(_PAGE)
            page[off : off + size] = data
        else:
            self._write_raw(addr, data)
        if thread is not None:
            now = thread.now + 5e-9
            thread.now = now
            thread.cpu_time += 5e-9
            clock = thread.clock
            if now > clock._now:
                clock._now = now
        # -- flush --
        penalty = 0.0
        if snapshot_lines:
            if self._retry is not None:
                def consult() -> float:
                    return self.injector.before_flush(
                        self, thread.now if thread is not None else 0.0
                    )

                penalty = self._retry.run(
                    consult, thread=thread, device=self.name, op="flush"
                )
            else:
                penalty = self.injector.before_flush(
                    self, thread.now if thread is not None else 0.0
                )
            if first == last:
                flushed = 1 if undo.pop(first, None) is not None else 0
            else:
                flushed = 0
                for line in range(first, last + 1):
                    if undo.pop(line, None) is not None:
                        flushed += 1
        else:
            # The store phase guaranteed (then dropped) an undo entry
            # for every line in range, so all of them count as flushed.
            flushed = last - first + 1
        self.flushes += 1
        self.bytes_flushed += flushed * CACHE_LINE
        nbytes = (flushed if flushed > 1 else 1) * CACHE_LINE
        self.bytes_written += nbytes
        if thread is not None:
            end = self._write_request(thread.now, nbytes, self._write_latency)
            if penalty:
                end += penalty  # fail-slow inflation (gray failure)
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end
        # -- fence --
        self.fences += 1
        if thread is not None:
            now = thread.now + 10e-9
            thread.now = now
            thread.cpu_time += 10e-9
            clock = thread.clock
            if now > clock._now:
                clock._now = now

    def publish_word(
        self,
        thread: VThread,
        addr: int,
        dirty_word: int,
        clean_word: int,
        cas_cost: float,
    ) -> int:
        """Fused pointer-publish CAS for the HSIT hot path.

        Equivalent to ``load_word`` + ``store_word(dirty)`` + CAS spend
        + ``flush(addr, 8)`` + ``fence`` + ``store_word(clean)`` with
        one bounds check and one page lookup.  Every virtual-time
        charge is issued in the same order with the same operands, so
        completion times are bit-identical to the discrete sequence.
        Callers must gate on: a real thread, no active crash points, no
        retry executor, and a disabled injector — the only behaviours
        the discrete steps add beyond this fast path.  Returns the raw
        previous word.
        """
        if addr < 0 or addr + 8 > self._capacity:
            raise StorageError(
                f"{self.name}: store [{addr}, {addr + 8}) out of range"
            )
        off = addr & _PAGE_MASK
        if off + 8 > _PAGE:  # pragma: no cover - HSIT words are 8-aligned
            old = self.load_word(thread, addr)
            self.store_word(thread, addr, dirty_word)
            thread.spend(cas_cost)
            self.flush(thread, addr, 8)
            self.fence(thread)
            self.store_word(thread, addr, clean_word)
            return old
        # -- load_word --
        self.bytes_read += 8
        now = thread.now
        end = self._read_request(now, 8, self._read_latency)
        if end > now:
            now = end
        pages = self._pages
        page_idx = addr >> _PAGE_SHIFT
        page = pages.get(page_idx)
        if page is None:
            page = pages[page_idx] = bytearray(_PAGE)
            old = 0
        else:
            old = int.from_bytes(page[off : off + 8], "little")
        # -- store_word(dirty): the snapshot this store would take is
        # deleted unread by the flush below, so only a pre-existing
        # undo entry needs dropping (done at the flush step)
        undo = self._undo
        first = addr >> _LINE_SHIFT
        loff = off & ~(CACHE_LINE - 1)
        page[off : off + 8] = dirty_word.to_bytes(8, "little")
        now = now + 5e-9
        thread.cpu_time += 5e-9
        # -- CAS cost (spent by the caller in the discrete sequence) --
        now = now + cas_cost
        thread.cpu_time += cas_cost
        # -- flush: the dirty line would always be in the undo map here
        undo.pop(first, None)
        self.flushes += 1
        self.bytes_flushed += CACHE_LINE
        self.bytes_written += CACHE_LINE
        end = self._write_request(now, CACHE_LINE, self._write_latency)
        if end > now:
            now = end
        # -- fence --
        self.fences += 1
        now = now + 10e-9
        thread.cpu_time += 10e-9
        # -- store_word(clean): the flush made the dirty word durable,
        # so the fresh snapshot is the current page content
        undo[first] = page[loff : loff + CACHE_LINE]
        page[off : off + 8] = clean_word.to_bytes(8, "little")
        now = now + 5e-9
        thread.cpu_time += 5e-9
        # Clock folding: the discrete steps update the global clock at
        # every wait/spend, but the values only grow and nothing reads
        # the clock in between — one final max is identical.
        thread.now = now
        clock = thread.clock
        if now > clock._now:
            clock._now = now
        return old

    def write_durable(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """Bulk non-temporal write (ntstore + sfence): bypasses the
        CPU cache, so the data is durable immediately.  Used for large
        sequential writes (SSTables, log segments) where per-line undo
        tracking would be pointless overhead."""
        if addr < 0 or addr + len(data) > self._capacity:
            raise StorageError(
                f"{self.name}: write [{addr}, {addr + len(data)}) out of range"
            )
        # Any pending cached stores to these lines are superseded.
        for line in self._lines(addr, len(data)):
            self._undo.pop(line, None)
        self._write_raw(addr, data)
        self.charge_write(thread, len(data))

    def write_durable_async(self, at: float, addr: int, data: bytes) -> float:
        """Background-timed variant of :meth:`write_durable`."""
        for line in self._lines(addr, len(data)):
            self._undo.pop(line, None)
        self._write_raw(addr, data)
        return self.charge_write_async(at, len(data))

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: every unflushed line reverts to durable state."""
        for line, durable in self._undo.items():
            self._write_raw(line * CACHE_LINE, durable)
        self._undo.clear()
        self.crashes += 1

    def unflushed_lines(self) -> int:
        return len(self._undo)


class PersistentHeap:
    """Object-granularity persistence on top of an :class:`NVMDevice`.

    Objects declare ``persistent_fields``; :meth:`commit` snapshots
    those fields (durable), and :meth:`crash` restores every live
    object to its last committed snapshot.  Space is accounted against
    the underlying device so NVM-footprint experiments include the
    index.
    """

    def __init__(self, device: NVMDevice) -> None:
        self.device = device
        self._objects: Dict[int, object] = {}
        self._snapshots: Dict[int, Dict[str, object]] = {}
        self._sizes: Dict[int, int] = {}
        self._next_handle = 1

    def _fields(self, obj: object) -> Tuple[str, ...]:
        fields = getattr(obj, "persistent_fields", None)
        if not fields:
            raise TypeError(f"{type(obj).__name__} declares no persistent_fields")
        return fields

    @staticmethod
    def _copy(value: object) -> object:
        if isinstance(value, list):
            return list(value)
        if isinstance(value, dict):
            return dict(value)
        if isinstance(value, (bytearray, set)):
            return type(value)(value)
        return value

    def allocate(self, obj: object, nbytes: int, thread: Optional[VThread] = None) -> int:
        """Place an object on NVM; it is *not* durable until committed."""
        self.device.alloc(nbytes)
        handle = self._next_handle
        self._next_handle += 1
        self._objects[handle] = obj
        self._sizes[handle] = nbytes
        if thread is not None:
            thread.spend(50e-9)  # allocator metadata
        return handle

    def commit(self, handle: int, thread: Optional[VThread] = None) -> None:
        """Make the object's current field values durable."""
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"no live object for handle {handle}")
        fields = getattr(obj, "persistent_fields", None)
        if not fields:
            raise TypeError(f"{type(obj).__name__} declares no persistent_fields")
        # _copy inlined: a leaf commit copies ~5 fields and runs once
        # per index mutation.
        snapshot = {}
        for name in fields:
            value = getattr(obj, name)
            if isinstance(value, list):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, (bytearray, set)):
                value = type(value)(value)
            snapshot[name] = value
        self._snapshots[handle] = snapshot
        size = self._sizes[handle]
        device = self.device
        device.bytes_written += size
        if thread is not None:
            end = device._write_request(
                thread.now, size, device._write_latency
            )
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end

    def get(self, handle: int) -> object:
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"no live object for handle {handle}")
        return obj

    def free(self, handle: int) -> None:
        self._objects.pop(handle, None)
        self._snapshots.pop(handle, None)
        self._sizes.pop(handle, None)

    def charge_read(self, thread: Optional[VThread], handle: int) -> None:
        """Time an NVM read of the object (Device.charge_read inlined —
        the index pays this on every leaf traversal)."""
        size = self._sizes.get(handle, CACHE_LINE)
        device = self.device
        device.bytes_read += size
        if thread is not None:
            end = device._read_request(thread.now, size, device._read_latency)
            if end > thread.now:
                thread.now = end
                clock = thread.clock
                if end > clock._now:
                    clock._now = end

    def crash(self) -> None:
        """Restore all objects to their committed snapshots."""
        for handle in list(self._objects):
            snapshot = self._snapshots.get(handle)
            if snapshot is None:
                # Never committed: the allocation never became durable.
                self.free(handle)
                continue
            obj = self._objects[handle]
            for name, value in snapshot.items():
                setattr(obj, name, self._copy(value))

    @property
    def live_objects(self) -> int:
        return len(self._objects)
