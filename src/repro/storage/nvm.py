"""Byte-addressable persistent memory with volatile-cache semantics.

This module is the linchpin of the reproduction.  The paper's crash
consistency protocol (§5.4–5.5) exists because a store to Optane DCPMM
may linger in the volatile CPU cache: an atomic pointer update is *not*
durable until a cache-line flush reaches the DIMM.  We reproduce those
semantics exactly:

* :meth:`NVMDevice.store` updates the current (volatile) view and
  records an undo snapshot of each touched cache line;
* :meth:`NVMDevice.flush` makes the covered lines durable;
* :meth:`NVMDevice.crash` rolls every unflushed line back to its last
  durable content.

Prism's flush-on-read dirty-bit protocol, backward pointers, and
append-only PWB are all validated against these semantics by the crash
tests.

:class:`PersistentHeap` is an object-granularity convenience used by
the persistent key index.  The paper assumes the index guarantees its
own crash consistency ("We assume that the Persistent Key Index ensures
its own crash consistency", §5.5); the heap provides exactly that
contract — objects revert to their last committed snapshot on crash.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.vthread import VThread
from repro.storage.base import Device, OutOfSpaceError, StorageError
from repro.storage.specs import NVM_SPEC, DeviceSpec

CACHE_LINE = 256  # Optane DCPMM internal access granularity (XPLine)
_PAGE = 4096


class NVMDevice(Device):
    """Simulated Intel Optane DCPMM with explicit persistence."""

    def __init__(self, spec: Optional[DeviceSpec] = None, name: str = "nvm") -> None:
        super().__init__(spec or NVM_SPEC, name=name)
        self._pages: Dict[int, bytearray] = {}
        # line index -> durable content of that line before unflushed stores
        self._undo: Dict[int, bytes] = {}
        self._brk = 0  # bump allocator
        self.flushes = 0
        self.bytes_flushed = 0
        self.fences = 0
        self.crashes = 0
        # Optional RetryExecutor: when attached, failed flushes retry
        # internally, which covers every persist point (PWB headers,
        # HSIT publishes, bitmap commits) without touching call sites.
        # A flush that fails leaves its lines volatile, so retrying is
        # always safe.
        self._retry = None

    def attach_retry(self, executor) -> None:
        """Retry failed flushes through ``executor`` (idempotent op)."""
        self._retry = executor

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve a region; returns its base address."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive: {nbytes}")
        base = -(-self._brk // align) * align
        if base + nbytes > self.capacity:
            raise OutOfSpaceError(
                f"{self.name}: alloc {nbytes} at {base} exceeds capacity {self.capacity}"
            )
        self._brk = base + nbytes
        return base

    @property
    def used(self) -> int:
        return self._brk

    # ------------------------------------------------------------------
    # raw page access
    # ------------------------------------------------------------------
    def _page(self, idx: int) -> bytearray:
        page = self._pages.get(idx)
        if page is None:
            page = bytearray(_PAGE)
            self._pages[idx] = page
        return page

    def _read_raw(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_idx, off = divmod(addr + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos : pos + take] = page[off : off + take]
            pos += take
        return bytes(out)

    def _write_raw(self, addr: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            page_idx, off = divmod(addr + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            self._page(page_idx)[off : off + take] = data[pos : pos + take]
            pos += take

    def _lines(self, addr: int, size: int) -> range:
        first = addr // CACHE_LINE
        last = (addr + max(size, 1) - 1) // CACHE_LINE
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # load / store / flush / fence
    # ------------------------------------------------------------------
    def load(self, thread: Optional[VThread], addr: int, size: int) -> bytes:
        """Read ``size`` bytes (sees unflushed stores, like a real CPU)."""
        if addr < 0 or addr + size > self.capacity:
            raise StorageError(f"{self.name}: load [{addr}, {addr + size}) out of range")
        self.charge_read(thread, size)
        return self._read_raw(addr, size)

    def store(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """Store bytes into the volatile view; durable only after flush."""
        if addr < 0 or addr + len(data) > self.capacity:
            raise StorageError(
                f"{self.name}: store [{addr}, {addr + len(data)}) out of range"
            )
        # Snapshot durable content of each touched line exactly once.
        for line in self._lines(addr, len(data)):
            if line not in self._undo:
                self._undo[line] = self._read_raw(line * CACHE_LINE, CACHE_LINE)
        self._write_raw(addr, data)
        if thread is not None:
            # Stores land in the CPU cache: cheap, but not free.
            thread.spend(5e-9)

    def flush(self, thread: Optional[VThread], addr: int, size: int) -> None:
        """clwb/clflushopt: persist the cache lines covering the range.

        A fault-injected flush failure surfaces *before* any line is
        persisted: the covered lines stay volatile, so the operation
        can be retried wholesale (and is, when a retry executor is
        attached)."""
        def consult() -> None:
            self.injector.before_flush(
                self, thread.now if thread is not None else 0.0
            )

        if self._retry is not None:
            self._retry.run(consult, thread=thread, device=self.name, op="flush")
        else:
            consult()
        lines = [l for l in self._lines(addr, size) if l in self._undo]
        for line in lines:
            del self._undo[line]
        self.flushes += 1
        self.bytes_flushed += len(lines) * CACHE_LINE
        # The write to the DIMM media happens now.
        self.charge_write(thread, max(len(lines), 1) * CACHE_LINE)

    def fence(self, thread: Optional[VThread]) -> None:
        """sfence: ordering point; modelled as a small CPU cost."""
        self.fences += 1
        if thread is not None:
            thread.spend(10e-9)

    def persist(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """store + flush + fence in one step."""
        self.store(thread, addr, data)
        self.flush(thread, addr, len(data))
        self.fence(thread)

    def write_durable(self, thread: Optional[VThread], addr: int, data: bytes) -> None:
        """Bulk non-temporal write (ntstore + sfence): bypasses the
        CPU cache, so the data is durable immediately.  Used for large
        sequential writes (SSTables, log segments) where per-line undo
        tracking would be pointless overhead."""
        if addr < 0 or addr + len(data) > self.capacity:
            raise StorageError(
                f"{self.name}: write [{addr}, {addr + len(data)}) out of range"
            )
        # Any pending cached stores to these lines are superseded.
        for line in self._lines(addr, len(data)):
            self._undo.pop(line, None)
        self._write_raw(addr, data)
        self.charge_write(thread, len(data))

    def write_durable_async(self, at: float, addr: int, data: bytes) -> float:
        """Background-timed variant of :meth:`write_durable`."""
        for line in self._lines(addr, len(data)):
            self._undo.pop(line, None)
        self._write_raw(addr, data)
        return self.charge_write_async(at, len(data))

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: every unflushed line reverts to durable state."""
        for line, durable in self._undo.items():
            self._write_raw(line * CACHE_LINE, durable)
        self._undo.clear()
        self.crashes += 1

    def unflushed_lines(self) -> int:
        return len(self._undo)


class PersistentHeap:
    """Object-granularity persistence on top of an :class:`NVMDevice`.

    Objects declare ``persistent_fields``; :meth:`commit` snapshots
    those fields (durable), and :meth:`crash` restores every live
    object to its last committed snapshot.  Space is accounted against
    the underlying device so NVM-footprint experiments include the
    index.
    """

    def __init__(self, device: NVMDevice) -> None:
        self.device = device
        self._objects: Dict[int, object] = {}
        self._snapshots: Dict[int, Dict[str, object]] = {}
        self._sizes: Dict[int, int] = {}
        self._next_handle = 1

    def _fields(self, obj: object) -> Tuple[str, ...]:
        fields = getattr(obj, "persistent_fields", None)
        if not fields:
            raise TypeError(f"{type(obj).__name__} declares no persistent_fields")
        return fields

    @staticmethod
    def _copy(value: object) -> object:
        if isinstance(value, list):
            return list(value)
        if isinstance(value, dict):
            return dict(value)
        if isinstance(value, (bytearray, set)):
            return type(value)(value)
        return value

    def allocate(self, obj: object, nbytes: int, thread: Optional[VThread] = None) -> int:
        """Place an object on NVM; it is *not* durable until committed."""
        self.device.alloc(nbytes)
        handle = self._next_handle
        self._next_handle += 1
        self._objects[handle] = obj
        self._sizes[handle] = nbytes
        if thread is not None:
            thread.spend(50e-9)  # allocator metadata
        return handle

    def commit(self, handle: int, thread: Optional[VThread] = None) -> None:
        """Make the object's current field values durable."""
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"no live object for handle {handle}")
        snapshot = {name: self._copy(getattr(obj, name)) for name in self._fields(obj)}
        self._snapshots[handle] = snapshot
        self.device.bytes_written += self._sizes[handle]
        if thread is not None:
            end = self.device.write_channel.request(
                thread.now, self._sizes[handle], self.device.spec.write_latency
            )
            thread.wait_until(end)

    def get(self, handle: int) -> object:
        obj = self._objects.get(handle)
        if obj is None:
            raise KeyError(f"no live object for handle {handle}")
        return obj

    def free(self, handle: int) -> None:
        self._objects.pop(handle, None)
        self._snapshots.pop(handle, None)
        self._sizes.pop(handle, None)

    def charge_read(self, thread: Optional[VThread], handle: int) -> None:
        """Time an NVM read of the object."""
        self.device.charge_read(thread, self._sizes.get(handle, CACHE_LINE))

    def crash(self) -> None:
        """Restore all objects to their committed snapshots."""
        for handle in list(self._objects):
            snapshot = self._snapshots.get(handle)
            if snapshot is None:
                # Never committed: the allocation never became durable.
                self.free(handle)
                continue
            obj = self._objects[handle]
            for name, value in snapshot.items():
                setattr(obj, name, self._copy(value))

    @property
    def live_objects(self) -> int:
        return len(self._objects)
