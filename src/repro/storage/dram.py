"""DRAM: fast, volatile, capacity-accounted object storage.

DRAM holds Prism's Scan-aware Value Cache and the validity bitmaps, and
the baselines' block/page caches.  Contents are ordinary Python
objects; the device tracks the *logical* bytes they occupy so cache
capacity limits and cost comparisons stay honest, and charges DRAM
access time so cache hits are not free.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.vthread import VThread
from repro.storage.base import Device, OutOfSpaceError
from repro.storage.specs import DRAM_SPEC, DeviceSpec


class DRAMDevice(Device):
    """Volatile byte-budget device."""

    volatile = True  # crashed first by CrashScenario.power_failure

    def __init__(self, spec: Optional[DeviceSpec] = None, name: str = "dram") -> None:
        super().__init__(spec or DRAM_SPEC, name=name)
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of capacity."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.used + nbytes > self.capacity:
            raise OutOfSpaceError(
                f"{self.name}: need {nbytes}, only {self.free} of {self.capacity} free"
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` of capacity."""
        if nbytes < 0:
            raise ValueError(f"negative release: {nbytes}")
        if nbytes > self.used:
            raise ValueError(f"{self.name}: releasing {nbytes} with only {self.used} used")
        self.used -= nbytes

    def would_fit(self, nbytes: int) -> bool:
        return self.used + nbytes <= self.capacity

    def read(self, thread: Optional[VThread], nbytes: int) -> None:
        """Time a DRAM read of ``nbytes``."""
        self.charge_read(thread, nbytes)

    def write(self, thread: Optional[VThread], nbytes: int) -> None:
        """Time a DRAM write of ``nbytes``."""
        self.charge_write(thread, nbytes)

    def crash(self) -> None:
        """DRAM loses everything on a crash."""
        self.used = 0
