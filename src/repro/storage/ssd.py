"""Block-addressable flash SSD with async-friendly timing.

Reads and writes are served by separate bandwidth channels with the
internal parallelism of an NVMe device (``spec.lanes``).  The async
path (:mod:`repro.storage.iouring`) submits batches against the same
channels, so bandwidth contention between foreground reads and
background log writes emerges naturally.

Durability: a write is durable once its device service completes.  The
cross-media protocols under test never rely on SSD write atomicity —
Prism's commit point is the HSIT update on NVM — so the device does
not model torn block writes by default (the paper's Value Storage
assumes the same, recovering purely from HSIT).  With a fault injector
attached, the timed write paths additionally consult
``injector.corrupt_write``: seeded *silent* bit flips and torn writes
mutate the stored bytes while the device still reports success, so
only record checksums can catch them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.vthread import VThread
from repro.storage.base import Device, StorageError
from repro.storage.specs import FLASH_SSD_GEN4_SPEC, DeviceSpec

_PAGE = 4096
_PAGE_SHIFT = 12  # log2(_PAGE)
_PAGE_MASK = _PAGE - 1


class SSDDevice(Device):
    """Simulated NVMe flash SSD."""

    def __init__(self, spec: Optional[DeviceSpec] = None, name: str = "ssd") -> None:
        super().__init__(spec or FLASH_SSD_GEN4_SPEC, name=name)
        self._pages: Dict[int, bytearray] = {}
        self.read_ios = 0
        self.write_ios = 0

    # ------------------------------------------------------------------
    # raw storage
    # ------------------------------------------------------------------
    def _page(self, idx: int) -> bytearray:
        page = self._pages.get(idx)
        if page is None:
            page = bytearray(_PAGE)
            self._pages[idx] = page
        return page

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self._capacity:
            raise StorageError(
                f"{self.name}: access [{offset}, {offset + size}) out of range"
            )

    def read_raw(self, offset: int, size: int) -> bytes:
        """Untimed data access (used by timed paths and recovery)."""
        self._check(offset, size)
        # Fast path: access within a single 4 KB page (typical record).
        off = offset & _PAGE_MASK
        if off + size <= _PAGE:
            page = self._pages.get(offset >> _PAGE_SHIFT)
            if page is None:
                return bytes(size)
            return bytes(page[off : off + size])
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_idx, off = divmod(offset + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            page = self._pages.get(page_idx)
            if page is not None:
                out[pos : pos + take] = page[off : off + take]
            pos += take
        return bytes(out)

    def write_raw(self, offset: int, data: bytes) -> None:
        size = len(data)
        self._check(offset, size)
        off = offset & _PAGE_MASK
        if off + size <= _PAGE:
            self._page(offset >> _PAGE_SHIFT)[off : off + size] = data
            return
        pos = 0
        while pos < size:
            page_idx, off = divmod(offset + pos, _PAGE)
            take = min(_PAGE - off, size - pos)
            self._page(page_idx)[off : off + take] = data[pos : pos + take]
            pos += take

    # ------------------------------------------------------------------
    # synchronous (timed) IO
    # ------------------------------------------------------------------
    def read(self, thread: Optional[VThread], offset: int, size: int) -> bytes:
        """Blocking read: the thread waits for device completion."""
        penalty = self.injector.before_io(
            self, "read", thread.now if thread is not None else 0.0
        )
        data = self.read_raw(offset, size)
        self.read_ios += 1
        self.charge_read(thread, size)
        if penalty and thread is not None:
            thread.wait_until(thread.now + penalty)
        return data

    def write(self, thread: Optional[VThread], offset: int, data: bytes) -> None:
        """Blocking write."""
        at = thread.now if thread is not None else 0.0
        penalty = self.injector.before_io(self, "write", at)
        # Silent-corruption hook: the stored bytes may differ from the
        # submitted ones (bit flip / torn write) while the device still
        # reports success — timing and accounting cover the full size.
        self.write_raw(offset, self.injector.corrupt_write(self, at, offset, data))
        self.write_ios += 1
        self.charge_write(thread, len(data))
        if penalty and thread is not None:
            thread.wait_until(thread.now + penalty)

    # ------------------------------------------------------------------
    # asynchronous (timed) IO — building blocks for IOUring
    # ------------------------------------------------------------------
    def read_async(self, at: float, offset: int, size: int) -> float:
        """Start a read at virtual time ``at``; returns completion time."""
        penalty = self.injector.before_io(self, "read", at)
        self.read_ios += 1
        end = self.charge_read_async(at, size)
        return end + penalty if penalty else end

    def write_async(self, at: float, offset: int, data: bytes) -> float:
        """Start a write at ``at``; data is durable at the returned time."""
        penalty = self.injector.before_io(self, "write", at)
        self.write_raw(offset, self.injector.corrupt_write(self, at, offset, data))
        self.write_ios += 1
        end = self.charge_write_async(at, len(data))
        return end + penalty if penalty else end

    def crash(self) -> None:
        """Completed writes are durable; nothing volatile to drop here."""

    def scan_time(self, used_bytes: int) -> float:
        """Virtual seconds to sequentially scan ``used_bytes`` of the device.

        Used by the recovery-time experiment: KVell must scan the whole
        dataset on SSD, Prism does not.
        """
        return self.spec.read_latency + used_bytes / self.spec.read_bandwidth
