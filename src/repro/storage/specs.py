"""Device characteristics from the paper's Figure 1.

Bandwidths are bytes/second, latencies are seconds, and costs are
dollars per terabyte, exactly as reported for the evaluated hardware.
The catalog is exported both for configuring simulations and for the
Figure 1 benchmark, which reprints the table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

GB = 1024**3
TB = 1024**4
US = 1e-6
PB = 1024**5


@dataclass(frozen=True)
class DeviceSpec:
    """Performance and cost envelope of one storage device."""

    name: str
    kind: str  # "dram" | "nvm" | "ssd"
    read_bandwidth: float  # bytes / second
    write_bandwidth: float  # bytes / second
    read_latency: float  # seconds per request
    write_latency: float  # seconds per request
    cost_per_tb: float  # dollars
    capacity: int  # bytes
    endurance_pbw: float  # petabytes written before wear-out (inf for DRAM)
    lanes: int = 1  # internal parallelism for bandwidth channels

    def cost(self) -> float:
        """Dollar cost of this device at its capacity."""
        return self.cost_per_tb * (self.capacity / TB)

    def with_capacity(self, capacity: int) -> "DeviceSpec":
        """The same device resized (cost scales with capacity)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        return replace(self, capacity=capacity)

    def endurance_bytes(self) -> float:
        return self.endurance_pbw * PB


DRAM_SPEC = DeviceSpec(
    name="SK Hynix DDR4",
    kind="dram",
    read_bandwidth=15 * GB,
    write_bandwidth=15 * GB,
    read_latency=0.08 * US,
    write_latency=0.08 * US,
    cost_per_tb=5427.0,
    capacity=16 * GB,
    endurance_pbw=float("inf"),
)

NVM_SPEC = DeviceSpec(
    name="Intel Optane DCPMM",
    kind="nvm",
    read_bandwidth=int(6.8 * GB),
    write_bandwidth=int(1.9 * GB),
    read_latency=0.30 * US,
    write_latency=0.09 * US,
    cost_per_tb=4096.0,
    capacity=128 * GB,
    endurance_pbw=292.0,
)

OPTANE_SSD_SPEC = DeviceSpec(
    name="Intel Optane 905P",
    kind="ssd",
    read_bandwidth=int(2.6 * GB),
    write_bandwidth=int(2.2 * GB),
    read_latency=10 * US,
    write_latency=10 * US,
    cost_per_tb=1024.0,
    capacity=960 * GB,
    endurance_pbw=17.5,
)

FLASH_SSD_GEN4_SPEC = DeviceSpec(
    name="Samsung 980 Pro",
    kind="ssd",
    read_bandwidth=7 * GB,
    write_bandwidth=5 * GB,
    read_latency=50 * US,
    write_latency=20 * US,
    cost_per_tb=150.0,
    capacity=1 * TB,
    endurance_pbw=0.6,
)

FLASH_SSD_GEN3_SPEC = DeviceSpec(
    name="Samsung 980",
    kind="ssd",
    read_bandwidth=int(3.5 * GB),
    write_bandwidth=3 * GB,
    read_latency=60 * US,
    write_latency=20 * US,
    cost_per_tb=100.0,
    capacity=1 * TB,
    endurance_pbw=0.6,
)

QLC_SSD_SPEC = DeviceSpec(
    name="Samsung 870 QVO (QLC)",
    kind="ssd",
    read_bandwidth=int(0.56 * GB),  # SATA-bound
    write_bandwidth=int(0.35 * GB),  # sustained QLC program, past the SLC cache
    read_latency=120 * US,
    write_latency=90 * US,
    cost_per_tb=45.0,
    capacity=8 * TB,
    endurance_pbw=2.9,  # 0.36 PBW/TB — the capacity tier wears fastest
)

# --- emerging media from the paper's discussion (§8) -----------------
# Not part of Figure 1's evaluated testbed; used by the extension
# experiments exploring "other emerging storage media".

CXL_NVM_SPEC = DeviceSpec(
    name="CXL persistent memory",
    kind="nvm",
    read_bandwidth=int(8.0 * GB),  # a x8 CXL 2.0 link
    write_bandwidth=int(4.0 * GB),
    read_latency=0.60 * US,  # DCPMM latency + one CXL hop
    write_latency=0.35 * US,
    cost_per_tb=2048.0,  # expansion memory undercuts DIMM NVM
    capacity=512 * GB,
    endurance_pbw=292.0,
)

PCIE5_SSD_SPEC = DeviceSpec(
    name="PCIe Gen5 flash SSD",
    kind="ssd",
    read_bandwidth=13 * GB,  # the Samsung Gen5 teaser the paper cites
    write_bandwidth=int(6.6 * GB),
    read_latency=50 * US,
    write_latency=20 * US,
    cost_per_tb=150.0,
    capacity=2 * TB,
    endurance_pbw=1.2,
)

DEVICE_CATALOG: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        DRAM_SPEC,
        NVM_SPEC,
        OPTANE_SSD_SPEC,
        FLASH_SSD_GEN4_SPEC,
        FLASH_SSD_GEN3_SPEC,
        QLC_SSD_SPEC,
    )
}


def format_catalog() -> str:
    """Render Figure 1's table for the device-catalog benchmark."""
    header = (
        f"{'Model':24} {'Kind':5} {'R-BW GB/s':>9} {'W-BW GB/s':>9} "
        f"{'R-lat us':>9} {'W-lat us':>9} {'$/TB':>8}"
    )
    rows = [header, "-" * len(header)]
    for spec in DEVICE_CATALOG.values():
        rows.append(
            f"{spec.name:24} {spec.kind:5} "
            f"{spec.read_bandwidth / GB:>9.1f} {spec.write_bandwidth / GB:>9.1f} "
            f"{spec.read_latency / US:>9.2f} {spec.write_latency / US:>9.2f} "
            f"{spec.cost_per_tb:>8.0f}"
        )
    return "\n".join(rows)
