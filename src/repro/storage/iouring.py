"""io_uring-style batched asynchronous IO.

The paper submits IO through Linux io_uring (§5.1, §5.3): a submission
queue (SQ) and completion queue (CQ) per Value Storage, with a queue
depth of 64.  The performance-relevant properties reproduced here:

* one submission syscall covers a whole batch (CPU cost amortizes);
* the queue depth caps *outstanding* requests — a shallow ring forces
  serialization and starves the device, a deep ring keeps it busy;
* device latency is pipelined across in-flight requests while the
  bandwidth channel enforces the transfer-rate ceiling.

Together these create the latency/bandwidth trade-off that motivates
opportunistic thread combining: more in-flight requests raise
utilization but queueing delays individual completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.resources import WaitList
from repro.storage.base import StorageError
from repro.storage.ssd import SSDDevice

# Cost of an io_uring_enter round trip (submission + later reap), paid
# once per batch by the submitting thread.
SUBMIT_SYSCALL_COST = 2.0e-6
# Per-request SQE preparation cost.
SQE_PREP_COST = 0.15e-6


@dataclass
class IORequest:
    """One submission-queue entry."""

    op: str  # "read" | "write"
    offset: int
    size: int
    data: Optional[bytes] = None
    context: object = None  # caller cookie (e.g. HSIT index)
    completion: float = field(default=0.0, compare=False)
    result: Optional[bytes] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"unknown op: {self.op}")
        if self.op == "write":
            if self.data is None:
                raise ValueError("write request needs data")
            self.size = len(self.data)


class IOUring:
    """A SQ/CQ pair bound to one SSD.

    ``queue_depth`` bounds in-flight requests: a submission finding the
    ring full stalls (in virtual time) until the earliest outstanding
    completion frees a slot, exactly like a blocked ``io_uring_enter``
    with a full SQ.
    """

    def __init__(self, device: SSDDevice, queue_depth: int = 64) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {queue_depth}")
        self.device = device
        self.queue_depth = queue_depth
        self.batches_submitted = 0
        self.requests_submitted = 0
        self.io_errors = 0  # CQEs that completed with an error
        self._outstanding = WaitList()  # event-ordered completion times

    def submit(self, at: float, requests: Sequence[IORequest]) -> float:
        """Submit a batch at virtual time ``at``.

        Fills in each request's ``completion`` (and ``result`` for
        reads).  Returns the time the submitting thread regains control
        — after the syscall, plus any stall for ring slots.
        """
        if not requests:
            return at
        t = at + SUBMIT_SYSCALL_COST + SQE_PREP_COST * len(requests)
        outstanding = self._outstanding
        device = self.device
        qd = self.queue_depth
        stall = outstanding.stall
        add = outstanding.add
        outstanding.reap(t)
        for req in requests:
            t = stall(t, qd)
            try:
                if req.op == "read":
                    req.completion = device.read_async(t, req.offset, req.size)
                    req.result = device.read_raw(req.offset, req.size)
                else:
                    assert req.data is not None
                    req.completion = device.write_async(t, req.offset, req.data)
            except StorageError:
                # Errored CQE: earlier requests of the batch are already
                # in flight (and, for writes, durable) — exactly the
                # io_uring contract.  The caller retries or degrades.
                self.io_errors += 1
                raise
            add(req.completion)
        self.batches_submitted += 1
        self.requests_submitted += len(requests)
        return t

    def submit_one(self, at: float, req: IORequest) -> float:
        """Place one already-prepared SQE (no per-call syscall cost).

        Used by the thread combiner, where the leader pays the syscall
        once for the whole combined batch.  Returns the completion
        time, after any stall for a free ring slot.
        """
        outstanding = self._outstanding
        outstanding.reap(at)
        t = outstanding.stall(at, self.queue_depth)
        device = self.device
        try:
            if req.op == "read":
                req.completion = device.read_async(t, req.offset, req.size)
                req.result = device.read_raw(req.offset, req.size)
            else:
                assert req.data is not None
                req.completion = device.write_async(t, req.offset, req.data)
        except StorageError:
            self.io_errors += 1
            raise
        outstanding.add(req.completion)
        self.requests_submitted += 1
        return req.completion

    def submit_and_wait(self, at: float, requests: Sequence[IORequest]) -> float:
        """Submit and wait for the whole batch; returns completion time."""
        self.submit(at, requests)
        return max(req.completion for req in requests) if requests else at

    def idle_at(self, at: float) -> bool:
        """True when no in-flight request is still being serviced.

        Prism picks an idle Value Storage when several SSDs are
        available (§5.2).
        """
        self._outstanding.reap(at)
        return not self._outstanding

    def inflight_at(self, at: float) -> int:
        self._outstanding.reap(at)
        return len(self._outstanding)

    def inflight_snapshot(self, at: float) -> int:
        """Count requests still in service at ``at`` without reaping.

        Pure observation for metrics sampling: reaping at one thread's
        (possibly ahead) clock would change stall decisions for threads
        still behind it."""
        return self._outstanding.count_after(at)

    def average_batch(self) -> float:
        if self.batches_submitted == 0:
            return 0.0
        return self.requests_submitted / self.batches_submitted


def split_into_batches(
    requests: Sequence[IORequest], queue_depth: int
) -> List[List[IORequest]]:
    """Chop an arbitrarily long request list into QD-sized batches."""
    return [
        list(requests[i : i + queue_depth])
        for i in range(0, len(requests), queue_depth)
    ]
