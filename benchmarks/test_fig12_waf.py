"""Figure 12: SSD-level write amplification vs skew (512 B and 1 KB).

Paper (1 KB values, theta 0.5/0.99/1.2): Prism 0.9/0.4/0.1,
KVell 1.2/0.9/0.5, MatrixKV 2.5/4.6/13.3 — Prism lowest everywhere
(KVell up to 13x, MatrixKV up to 162x of Prism); skew *lowers* WAF for
Prism and KVell (coalescing) but *raises* it for MatrixKV (compaction).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import waf_sweep

THETAS = (0.5, 0.99, 1.2)
PAPER = {
    512: {"Prism": (0.7, 0.3, 0.1), "KVell": (2.7, 1.6, 1.3), "MatrixKV": (3.0, 5.3, 16.2)},
    1024: {"Prism": (0.9, 0.4, 0.1), "KVell": (1.2, 0.9, 0.5), "MatrixKV": (2.5, 4.6, 13.3)},
}


@pytest.fixture(scope="module")
def results():
    return waf_sweep(thetas=THETAS, value_sizes=(512, 1024))


def test_fig12_table(results):
    banner("Figure 12 — SSD-level WAF vs data skew")
    for size in (512, 1024):
        print(f"\n  value size {size} B   " + "".join(f"{t:>10}" for t in THETAS))
        for store in ("Prism", "KVell", "MatrixKV"):
            measured = "".join(f"{results[size][store][t]:>10.2f}" for t in THETAS)
            paper = "/".join(str(x) for x in PAPER[size][store])
            print(f"  {store:10} {measured}    (paper {paper})")
    print()
    for size in (512, 1024):
        ratio = results[size]["KVell"][1.2] / max(results[size]["Prism"][1.2], 1e-6)
        paper_row(f"{size}B z1.2: KVell / Prism", "up to 13x", f"{ratio:.1f}x")


def test_prism_has_lowest_waf(results):
    for size in (512, 1024):
        for theta in THETAS:
            prism = results[size]["Prism"][theta]
            assert prism <= results[size]["KVell"][theta], (size, theta)
            assert prism <= results[size]["MatrixKV"][theta], (size, theta)


def test_skew_reduces_prism_waf(results):
    """PWB coalesces hot-key rewrites before they reach flash."""
    for size in (512, 1024):
        assert results[size]["Prism"][1.2] < results[size]["Prism"][0.5]


def test_skew_reduces_kvell_waf(results):
    for size in (512, 1024):
        assert results[size]["KVell"][1.2] <= results[size]["KVell"][0.5]


def test_prism_waf_below_one(results):
    """Write buffering means flash sees less than the app wrote."""
    for size in (512, 1024):
        assert results[size]["Prism"][0.99] < 1.5
