"""Figure 10: (a) the 1-billion-pair YCSB run, (b) Nutanix production mix.

Paper: with the dataset outgrowing the caches, Prism still beats KVell
on every workload (up to 2.42x; 1.3x on C) and by 1.44x on the Nutanix
mix (57% updates / 41% reads / 2% scans).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import large_dataset, nutanix_run
from repro.bench.report import throughput_table

WORKLOADS = ("A", "B", "C", "D", "E")


@pytest.fixture(scope="module")
def big():
    return large_dataset()


@pytest.fixture(scope="module")
def nutanix():
    return nutanix_run()


def test_fig10a_large_dataset(big):
    banner("Figure 10a — large dataset (caches dwarfed), Prism vs KVell")
    print(throughput_table("large-dataset YCSB", big, WORKLOADS))
    print()
    paper_row(
        "C: Prism / KVell",
        "1.3x",
        f"{big['Prism']['C'].throughput / big['KVell']['C'].throughput:.2f}x",
    )
    best = max(
        big["Prism"][wl].throughput / big["KVell"][wl].throughput
        for wl in WORKLOADS
    )
    paper_row("best ratio", "up to 2.42x", f"{best:.2f}x")


def test_fig10a_prism_wins_overall(big):
    wins = sum(
        big["Prism"][wl].throughput > big["KVell"][wl].throughput
        for wl in WORKLOADS
    )
    assert wins >= 4, f"Prism won only {wins}/5 workloads"


def test_fig10b_nutanix(nutanix):
    banner("Figure 10b — Nutanix production workload")
    for name, result in nutanix.items():
        print(f"  {name:8} {result.kops:10.1f} Kops/s  "
              f"avg {result.latency.average():7.1f} us  "
              f"p99 {result.latency.p99():8.1f} us")
    ratio = nutanix["Prism"].throughput / nutanix["KVell"].throughput
    print()
    paper_row("Prism / KVell", "1.44x", f"{ratio:.2f}x")
    assert ratio > 1.0
