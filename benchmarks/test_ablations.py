"""§7.6 "Impact of individual techniques": per-technique ablations.

Paper: async bandwidth-optimized writes +23% on writes; thread
combining 11.7x on read-only; SVC 9.6x lookups / 4.4x scans;
scan-aware eviction ~+10%; value-granule caching beats page-granule.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import ablations


@pytest.fixture(scope="module")
def results():
    return ablations()


def test_ablation_matrix(results):
    banner("§7.6 — impact of individual techniques (Kops)")
    header = f"  {'variant':20}" + "".join(f"{wl:>12}" for wl in ("A", "C", "E"))
    print(header)
    print("  " + "-" * (len(header) - 2))
    for variant, runs in results.items():
        row = f"  {variant:20}" + "".join(
            f"{runs[wl].kops:>12.1f}" for wl in ("A", "C", "E")
        )
        print(row)
    print()
    full = results["full"]
    paper_row(
        "PWB (async writes) on A",
        "+23%",
        f"+{(full['A'].throughput / results['no-pwb']['A'].throughput - 1) * 100:.0f}%",
    )
    paper_row(
        "SVC on C (lookup)",
        "9.6x",
        f"{full['C'].throughput / results['no-svc']['C'].throughput:.1f}x",
    )
    paper_row(
        "SVC on E (scan)",
        "4.4x",
        f"{full['E'].throughput / results['no-svc']['E'].throughput:.1f}x",
    )
    paper_row(
        "scan-aware eviction on E",
        "~+10%",
        f"+{(full['E'].throughput / results['no-scan-aware']['E'].throughput - 1) * 100:.0f}%",
    )
    paper_row(
        "thread combining on C",
        "up to 11.7x",
        f"{full['C'].throughput / results['sync-read']['C'].throughput:.1f}x",
    )


def test_pwb_improves_writes(results):
    assert (
        results["full"]["A"].throughput > results["no-pwb"]["A"].throughput
    )


def test_svc_improves_reads_and_scans(results):
    assert results["full"]["C"].throughput > results["no-svc"]["C"].throughput
    assert results["full"]["E"].throughput > results["no-svc"]["E"].throughput


def test_scan_aware_improves_scans(results):
    assert (
        results["full"]["E"].throughput
        > results["no-scan-aware"]["E"].throughput
    )


def test_value_granularity_beats_page_granularity(results):
    """Prism's value-granule SVC vs a page-granule cache (§7.6)."""
    assert (
        results["full"]["C"].throughput
        > results["page-granule-svc"]["C"].throughput
    )


def test_combining_beats_shallow_sync_reads(results):
    assert (
        results["full"]["C"].throughput > results["sync-read"]["C"].throughput
    )
