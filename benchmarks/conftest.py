"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures on
the simulated testbed and prints the measured series next to the
values the paper reports.  Absolute numbers differ (simulator vs. real
Optane testbed); the *shapes* are the reproduction target — see
EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only

``REPRO_SCALE`` (default 1.0) scales dataset/op counts.

Heavy experiment execution lives in module-scoped fixtures (run once,
shared by the table printer and the shape assertions); an autouse hook
registers every test with pytest-benchmark so the whole suite runs
under ``--benchmark-only``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _register_benchmark(benchmark):
    """Make every test in benchmarks/ a pytest-benchmark test."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    yield


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def paper_row(label: str, paper: str, measured: str) -> None:
    print(f"  {label:<34} paper: {paper:<24} measured: {measured}")
