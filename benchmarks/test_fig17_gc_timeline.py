"""Figure 17: YCSB-A throughput over time while Value Storage GC runs.

Paper: GC begins ~15 s in and throughput stays flat — non-blocking
access through HSIT plus per-Value-Storage GC isolation.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import gc_timeline


@pytest.fixture(scope="module")
def outcome():
    return gc_timeline()


def test_fig17_timeline(outcome):
    result, store = outcome
    banner("Figure 17 — throughput timeline under garbage collection")
    series = result.timeline.series()
    peak = max(series) if series else 0
    for i, rate in enumerate(series):
        bar = "#" * int(40 * rate / peak) if peak else ""
        marks = " <- GC" if i in result.timeline.events else ""
        print(f"  {i * result.timeline.bucket_seconds * 1e3:7.0f} ms "
              f"{rate / 1e3:9.1f} Kops {bar}{marks}")
    print()
    gc_runs = sum(vs.gc_runs for vs in store.storages)
    paper_row("GC events during run", "> 0 (begins mid-run)", str(gc_runs))
    paper_row(
        "throughput stability (min/max)",
        "flat (no visible dips)",
        f"{result.timeline.min_over_max():.2f}",
    )


def test_gc_actually_ran(outcome):
    _, store = outcome
    assert sum(vs.gc_runs for vs in store.storages) > 0


def test_throughput_stays_stable_through_gc(outcome):
    """The paper's claim: GC does not significantly affect performance."""
    result, _ = outcome
    assert result.timeline.min_over_max() > 0.4


def test_all_data_still_readable(outcome):
    result, store = outcome
    assert result.ops > 0
    assert len(store) > 0
