"""Figure 17: YCSB-A throughput over time while Value Storage GC runs.

Paper: GC begins ~15 s in and throughput stays flat — non-blocking
access through HSIT plus per-Value-Storage GC isolation.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import gc_timeline


@pytest.fixture(scope="module")
def outcome():
    return gc_timeline()


def test_fig17_timeline(outcome):
    result, store = outcome
    banner("Figure 17 — throughput timeline under garbage collection")
    series = result.timeline.series()
    peak = max(series) if series else 0
    for i, rate in enumerate(series):
        bar = "#" * int(40 * rate / peak) if peak else ""
        marks = " <- GC" if i in result.timeline.events else ""
        print(f"  {i * result.timeline.bucket_seconds * 1e3:7.0f} ms "
              f"{rate / 1e3:9.1f} Kops {bar}{marks}")
    print()
    gc_runs = sum(vs.gc_runs for vs in store.storages)
    paper_row("GC events during run", "> 0 (begins mid-run)", str(gc_runs))
    paper_row(
        "throughput stability (min/max)",
        "flat (no visible dips)",
        f"{result.timeline.min_over_max():.2f}",
    )


def test_gc_actually_ran(outcome):
    _, store = outcome
    assert sum(vs.gc_runs for vs in store.storages) > 0


def test_throughput_stays_stable_through_gc(outcome):
    """The paper's claim: GC does not significantly affect performance."""
    result, _ = outcome
    assert result.timeline.min_over_max() > 0.4


def test_all_data_still_readable(outcome):
    result, store = outcome
    assert result.ops > 0
    assert len(store) > 0


def test_structured_gc_events_recorded(outcome):
    """The run's metrics snapshot carries the structured GC log: each
    event says which Value Storage ran, what it moved, and how long it
    took — Figure 17's annotations without scraping timestamps."""
    result, store = outcome
    events = result.metrics["events"].get("gc", [])
    assert events, "GC ran but no structured gc events were captured"
    for event in events:
        assert event["kind"] == "gc"
        assert event["at"] >= 0
        assert event["vs_id"] >= 0
        assert event["duration"] >= 0
        assert event["moved_records"] >= 0
    moved = sum(e["moved_records"] for e in events)
    banner("Figure 17 — structured GC events")
    for event in events[:10]:
        print(f"  t={event['at'] * 1e3:9.3f} ms vs={event['vs_id']} "
              f"chunks={event['victim_chunks']} moved={event['moved_records']} "
              f"freed={event['chunks_freed']} "
              f"dur={event['duration'] * 1e6:7.1f} us")
    paper_row("records relocated by GC", "> 0", str(moved))
    # The store-level event log agrees with the snapshot.
    assert len(store.events.of_kind("gc")) >= len(events)
