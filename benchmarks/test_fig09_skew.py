"""Figure 9: relative throughput vs Zipfian coefficient (0.5 -> 1.5).

Paper: Prism and the LSM stores *improve* with skew (hot data
concentrates in PWB/SVC/memtables); KVell *degrades* (hash sharding
turns hot keys into hot workers).  Normalized to theta = 0.99.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import scaled, skew_sweep

THETAS = (0.5, 0.99, 1.2, 1.5)
WORKLOADS = ("A", "B", "C")
STORES = ("Prism", "KVell", "MatrixKV", "RocksDB-NVM")
# 1.5x the sweep's default op count: tightens the relative-throughput
# estimates (the hot-path work bought back more wall time than this
# costs, so the suite still runs faster than it used to).
NUM_OPS = 12_000


@pytest.fixture(scope="module")
def results():
    return skew_sweep(
        thetas=THETAS, workloads=WORKLOADS, stores=STORES,
        num_ops=scaled(NUM_OPS),
    )


def _relative(series):
    base = series[0.99].throughput
    return {theta: series[theta].throughput / base for theta in THETAS}


def test_fig09_table(results):
    banner("Figure 9 — relative throughput vs Zipfian coefficient "
           "(normalized to 0.99)")
    header = f"{'store':14}{'workload':10}" + "".join(f"{t:>8}" for t in THETAS)
    print(header)
    print("-" * len(header))
    for store in results:
        for wl in WORKLOADS:
            rel = _relative(results[store][wl])
            row = f"{store:14}{wl:10}" + "".join(f"{rel[t]:>8.2f}" for t in THETAS)
            print(row)
    print()
    paper_row("Prism trend", "rises with skew", "see table")
    paper_row("KVell trend", "drops with skew (imbalance)", "see table")


def test_prism_improves_with_skew(results):
    for wl in WORKLOADS:
        series = results["Prism"][wl]
        assert series[1.5].throughput > series[1.2].throughput > series[0.5].throughput, wl


def test_kvell_relative_skew_penalty(results):
    """KVell benefits least from skew among the stores — per the paper
    its sharding turns hot keys into hot workers."""
    # Compared at the sweep's high end (1.5), where worker imbalance
    # dominates; at 1.2 the exact-CDF sampler puts the two within a few
    # percent of each other at this scale.
    for wl in ("A",):
        kvell_gain = (
            results["KVell"][wl][1.5].throughput
            / results["KVell"][wl][0.5].throughput
        )
        prism_gain = (
            results["Prism"][wl][1.5].throughput
            / results["Prism"][wl][0.5].throughput
        )
        assert prism_gain > kvell_gain, (wl, prism_gain, kvell_gain)


def test_lsm_stores_improve_with_skew(results):
    for store in ("MatrixKV", "RocksDB-NVM"):
        series = results[store]["B"]
        assert series[1.5].throughput > series[0.5].throughput, store
