"""Figure 7: YCSB throughput — Prism vs KVell vs MatrixKV vs RocksDB-NVM.

Paper (40 threads, 100 M keys): Prism wins every workload; up to 13.1x
over the LSM stores on A, 1.2–1.7x over KVell on B/C/D, and E in the
hundreds of Kops with Prism ahead of everyone.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import ycsb_comparison
from repro.bench.report import throughput_table

WORKLOADS = ("LOAD", "A", "B", "C", "D", "E")


@pytest.fixture(scope="module")
def results():
    return ycsb_comparison(workloads=WORKLOADS)


def test_fig07_table(results):
    banner("Figure 7 — YCSB throughput (four stores)")
    print(throughput_table("YCSB throughput", results, WORKLOADS))
    print()
    paper_row(
        "A: Prism vs LSM stores",
        "up to 13.1x",
        f"{results['Prism']['A'].throughput / max(results['MatrixKV']['A'].throughput, results['RocksDB-NVM']['A'].throughput):.1f}x",
    )
    paper_row(
        "A: Prism vs KVell",
        "1.3x",
        f"{results['Prism']['A'].throughput / results['KVell']['A'].throughput:.1f}x",
    )
    paper_row(
        "C: Prism vs KVell",
        "1.3x",
        f"{results['Prism']['C'].throughput / results['KVell']['C'].throughput:.1f}x",
    )
    paper_row(
        "E: Prism vs KVell",
        "2.3x",
        f"{results['Prism']['E'].throughput / results['KVell']['E'].throughput:.1f}x",
    )


def test_fig07_prism_wins_writes(results):
    """Prism beats every baseline on the write-heavy workloads."""
    for wl in ("LOAD", "A"):
        prism = results["Prism"][wl].throughput
        for store in ("KVell", "MatrixKV", "RocksDB-NVM"):
            assert prism > results[store][wl].throughput, (wl, store)


def test_fig07_prism_wins_reads(results):
    for wl in ("B", "C"):
        prism = results["Prism"][wl].throughput
        for store in ("KVell", "MatrixKV", "RocksDB-NVM"):
            assert prism > results[store][wl].throughput, (wl, store)
    # D (read-latest): Prism's hot set sits in the PWB, but an LSM's
    # sits in its memtable, so RocksDB-NVM can tie here; require Prism
    # to be at least competitive (within 10%) and ahead of KVell.
    prism_d = results["Prism"]["D"].throughput
    assert prism_d > results["KVell"]["D"].throughput
    for store in ("MatrixKV", "RocksDB-NVM"):
        assert prism_d > 0.9 * results[store]["D"].throughput, store


def test_fig07_prism_wins_scans(results):
    prism = results["Prism"]["E"].throughput
    assert prism > results["KVell"]["E"].throughput
    assert prism > results["MatrixKV"]["E"].throughput


def test_fig07_lsm_stores_trail_on_writes(results):
    """MatrixKV and RocksDB-NVM suffer compaction on A (paper: ~10x+)."""
    for store in ("MatrixKV", "RocksDB-NVM"):
        ratio = results["Prism"]["A"].throughput / results[store]["A"].throughput
        assert ratio > 2.0, (store, ratio)
