"""Figure 1: the heterogeneous-device characteristics table."""

from benchmarks.conftest import banner
from repro.storage.specs import (
    DEVICE_CATALOG,
    FLASH_SSD_GEN4_SPEC,
    NVM_SPEC,
    format_catalog,
)


def test_fig01_device_catalog():
    table = format_catalog()
    banner("Figure 1 — heterogeneous storage media")
    print(table)
    print()
    ratio = NVM_SPEC.cost_per_tb / FLASH_SSD_GEN4_SPEC.cost_per_tb
    print(f"  flash is {ratio:.1f}x cheaper per TB than NVM (paper: 27.3x)")
    lat = FLASH_SSD_GEN4_SPEC.read_latency / NVM_SPEC.read_latency
    print(f"  NVM read latency is {lat:.0f}x lower than flash (paper: ~167x)")
    assert len(DEVICE_CATALOG) == 5
    assert 27 <= ratio <= 28
    # the paper's central observation: no total order between devices
    assert NVM_SPEC.read_latency < FLASH_SSD_GEN4_SPEC.read_latency
    assert FLASH_SSD_GEN4_SPEC.read_bandwidth > NVM_SPEC.read_bandwidth
