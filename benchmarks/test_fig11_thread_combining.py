"""Figure 11: opportunistic thread combining (TC) vs timeout-based
asynchronous IO (TA), YCSB-C, varying the coalescing limit (QD).

Paper: the TC/TA gap widens with QD; TC at QD 64 gives up to 11.7x the
throughput and 1.9x lower response time than QD 1; TA's 100 us wait
window wrecks latency at every depth.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import scaled, thread_combining_sweep

DEPTHS = (1, 2, 4, 8, 16, 32, 64)
# 1.5x the sweep's default op count: steadier Kops and p99 estimates
# per depth, paid for by the hot-path speedups.
NUM_OPS = 12_000


@pytest.fixture(scope="module")
def results():
    return thread_combining_sweep(
        queue_depths=DEPTHS, num_ops=scaled(NUM_OPS),
    )


def test_fig11_series(results):
    banner("Figure 11 — thread combining vs timeout async IO (YCSB-C)")
    header = f"{'QD':>4} {'TC Kops':>10} {'TA Kops':>10} {'TC avg us':>10} {'TA avg us':>10} {'TC p99':>8} {'TA p99':>8}"
    print(header)
    print("-" * len(header))
    for qd in DEPTHS:
        tc, ta = results["TC"][qd], results["TA"][qd]
        print(
            f"{qd:>4} {tc.kops:>10.1f} {ta.kops:>10.1f} "
            f"{tc.latency.average():>10.1f} {ta.latency.average():>10.1f} "
            f"{tc.latency.p99():>8.1f} {ta.latency.p99():>8.1f}"
        )
    print()
    gain = results["TC"][64].throughput / results["TC"][1].throughput
    paper_row("TC QD64 / TC QD1 throughput", "11.7x", f"{gain:.1f}x")
    resp = results["TC"][1].latency.average() / results["TC"][64].latency.average()
    paper_row("TC QD64 response-time gain", "1.9x", f"{resp:.1f}x")


def test_tc_beats_ta_at_every_depth(results):
    for qd in DEPTHS:
        assert results["TC"][qd].throughput >= results["TA"][qd].throughput, qd


def test_deeper_queues_raise_tc_throughput(results):
    assert results["TC"][64].throughput > 1.5 * results["TC"][1].throughput


def test_ta_latency_dominated_by_timeout(results):
    """The strawman pays its 100 us window on every miss."""
    assert results["TA"][64].latency.average() > results["TC"][64].latency.average()


def test_gap_widens_with_depth(results):
    gap_small = results["TC"][1].throughput / results["TA"][1].throughput
    gap_large = results["TC"][64].throughput / results["TA"][64].throughput
    assert gap_large >= gap_small * 0.9  # monotone-ish widening
