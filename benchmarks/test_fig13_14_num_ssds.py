"""Figures 13–14: throughput and latency vs number of SSDs (1–8).

Paper: Prism beats KVell on A at every SSD count; KVell can edge ahead
on C below 4 SSDs (its injector threads batch aggressively) but Prism
always keeps lower latency (Fig. 14).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import ssd_scaling

COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def results():
    return ssd_scaling(ssd_counts=COUNTS, workloads=("A", "C"))


def test_fig13_throughput(results):
    banner("Figure 13 — throughput vs #SSDs")
    header = f"{'#SSD':>5} {'Prism A':>10} {'KVell A':>10} {'Prism C':>10} {'KVell C':>10}   (Kops)"
    print(header)
    print("-" * len(header))
    for n in COUNTS:
        print(
            f"{n:>5} {results['Prism']['A'][n].kops:>10.1f} "
            f"{results['KVell']['A'][n].kops:>10.1f} "
            f"{results['Prism']['C'][n].kops:>10.1f} "
            f"{results['KVell']['C'][n].kops:>10.1f}"
        )
    print()
    paper_row("A: Prism ahead at every count", "yes", "see table")


def test_fig14_latency(results):
    banner("Figure 14 — YCSB-C latency vs #SSDs (us)")
    header = f"{'#SSD':>5} {'P avg':>8} {'K avg':>8} {'P p50':>8} {'K p50':>8} {'P p99':>8} {'K p99':>8}"
    print(header)
    print("-" * len(header))
    for n in COUNTS:
        p = results["Prism"]["C"][n].latency
        k = results["KVell"]["C"][n].latency
        print(
            f"{n:>5} {p.average():>8.1f} {k.average():>8.1f} "
            f"{p.median():>8.1f} {k.median():>8.1f} "
            f"{p.p99():>8.1f} {k.p99():>8.1f}"
        )
    print()
    paper_row("Prism lower latency at all counts", "yes (Fig 14)", "see table")


def test_prism_wins_writes_at_every_ssd_count(results):
    for n in COUNTS:
        assert (
            results["Prism"]["A"][n].throughput
            > results["KVell"]["A"][n].throughput
        ), n


def test_prism_latency_competitive(results):
    """Prism's avg C latency is never worse than ~KVell's (paper:
    always lower)."""
    for n in COUNTS:
        assert (
            results["Prism"]["C"][n].latency.average()
            <= results["KVell"]["C"][n].latency.average() * 1.2
        ), n
