"""Table 3: latency (avg / median / 99%) for YCSB A, C, E.

Paper (us): Prism A 44/2/145, C 12/1/128, E 325/270/808 — consistently
the lowest tail among the multicore stores (up to 8.7x below KVell).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import ycsb_comparison
from repro.bench.report import latency_table

WORKLOADS = ("A", "C", "E")


@pytest.fixture(scope="module")
def results():
    return ycsb_comparison(workloads=WORKLOADS)


def test_table3(results):
    banner("Table 3 — latency comparison (us)")
    print(latency_table("YCSB latency", results, WORKLOADS))
    print()
    paper_row("Prism median A", "2 us", f"{results['Prism']['A'].latency.median():.1f} us")
    paper_row("Prism median C", "1 us", f"{results['Prism']['C'].latency.median():.1f} us")
    paper_row(
        "A p99: KVell / Prism",
        "8.7x",
        f"{results['KVell']['A'].latency.p99() / results['Prism']['A'].latency.p99():.1f}x",
    )


def test_prism_has_microsecond_medians(results):
    """NVM fast paths give Prism 1–2 us medians (paper Table 3)."""
    assert results["Prism"]["A"].latency.median() < 10
    assert results["Prism"]["C"].latency.median() < 10


def test_prism_tail_beats_kvell(results):
    for wl in ("A", "C"):
        assert (
            results["Prism"][wl].latency.p99()
            <= results["KVell"][wl].latency.p99() * 1.05
        ), wl


def test_prism_avg_beats_lsm_stores_on_writes(results):
    for store in ("MatrixKV", "RocksDB-NVM"):
        assert (
            results["Prism"]["A"].latency.average()
            < results[store]["A"].latency.average()
        ), store
