"""Table 3: latency (avg / median / 99%) for YCSB A, C, E.

Paper (us): Prism A 44/2/145, C 12/1/128, E 325/270/808 — consistently
the lowest tail among the multicore stores (up to 8.7x below KVell).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import ycsb_comparison
from repro.bench.report import latency_table

WORKLOADS = ("A", "C", "E")


@pytest.fixture(scope="module")
def results():
    return ycsb_comparison(workloads=WORKLOADS)


def test_table3(results):
    banner("Table 3 — latency comparison (us)")
    print(latency_table("YCSB latency", results, WORKLOADS))
    print()
    paper_row("Prism median A", "2 us", f"{results['Prism']['A'].latency.median():.1f} us")
    paper_row("Prism median C", "1 us", f"{results['Prism']['C'].latency.median():.1f} us")
    paper_row(
        "A p99: KVell / Prism",
        "8.7x",
        f"{results['KVell']['A'].latency.p99() / results['Prism']['A'].latency.p99():.1f}x",
    )


def test_prism_has_microsecond_medians(results):
    """NVM fast paths give Prism 1–2 us medians (paper Table 3)."""
    assert results["Prism"]["A"].latency.median() < 10
    assert results["Prism"]["C"].latency.median() < 10


def test_prism_tail_beats_kvell(results):
    for wl in ("A", "C"):
        assert (
            results["Prism"][wl].latency.p99()
            <= results["KVell"][wl].latency.p99() * 1.05
        ), wl


def test_prism_avg_beats_lsm_stores_on_writes(results):
    for store in ("MatrixKV", "RocksDB-NVM"):
        assert (
            results["Prism"]["A"].latency.average()
            < results[store]["A"].latency.average()
        ), store


def test_metrics_histograms_match_recorders(results):
    """Every run carries a metrics snapshot whose ``op.all`` histogram
    agrees with the exact-sample recorder (log buckets are ~6% wide)."""
    for store, by_wl in results.items():
        for wl, run in by_wl.items():
            hist = run.histogram("op.all")
            assert hist["count"] == run.ops, (store, wl)
            for key, exact in (
                ("p50_us", run.latency.median()),
                ("p99_us", run.latency.p99()),
            ):
                approx = hist[key]
                tol = max(0.12 * exact, 0.5)
                assert abs(approx - exact) <= tol, (store, wl, key, approx, exact)


def test_prism_metrics_attribute_phase_latency(results):
    """Prism runs break op latency into traced phases (the metrics
    layer's reason to exist): the put path must show index lookup and
    PWB append time, the read path its SSD wait."""
    metrics = results["Prism"]["A"].metrics
    hists = metrics["histograms"]
    for phase in ("phase.put.index_lookup", "phase.put.pwb_append",
                  "phase.put.publish", "phase.get.index_lookup"):
        assert phase in hists, phase
        assert hists[phase]["count"] > 0, phase
    banner("Prism YCSB-A phase attribution (us)")
    for name in sorted(hists):
        if name.startswith("phase."):
            h = hists[name]
            print(f"  {name:32} n={h['count']:7} avg={h['avg_us']:8.2f} "
                  f"p99={h['p99_us']:8.2f}")


def test_prism_metrics_sample_devices(results):
    """Per-SSD queue depth and utilization series are present and sane."""
    metrics = results["Prism"]["A"].metrics
    series = metrics["series"]
    ssd_ids = {name.split(".")[1] for name in series if name.startswith("ssd.")}
    assert len(ssd_ids) >= 1
    for vs_id in ssd_ids:
        qd = series[f"ssd.{vs_id}.queue_depth"]
        util = series[f"ssd.{vs_id}.utilization"]
        assert len(qd["t"]) > 2
        assert all(v >= 0 for v in qd["v"])
        assert all(0.0 <= v <= 1.0 for v in util["v"])
