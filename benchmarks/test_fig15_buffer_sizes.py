"""Figure 15: throughput vs PWB size (LOAD, A) and SVC size (C, E).

Paper: (a) LOAD is flat (reclamation keeps up); A rises with PWB size
(more absorbed writes).  (b) C and E rise with SVC size; even 20% of
the full cache retains ~55% of performance.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import buffer_size_sweep

MB = 1024**2
PWB_SIZES = (1 * MB, 2 * MB, 4 * MB, 8 * MB)
SVC_SIZES = (1 * MB, 2 * MB, 4 * MB, 8 * MB)


@pytest.fixture(scope="module")
def results():
    return buffer_size_sweep(pwb_sizes=PWB_SIZES, svc_sizes=SVC_SIZES)


def test_fig15a_pwb_size(results):
    banner("Figure 15a — throughput vs PWB size")
    print(f"{'PWB MB':>8} {'LOAD Kops':>12} {'A Kops':>12}")
    for size in PWB_SIZES:
        r = results["pwb"][size]
        print(f"{size // MB:>8} {r['LOAD'].kops:>12.1f} {r['A'].kops:>12.1f}")
    print()
    paper_row("LOAD vs PWB size", "stable (background reclaim)", "see table")
    paper_row("A vs PWB size", "rises with PWB", "see table")


def test_fig15b_svc_size(results):
    banner("Figure 15b — throughput vs SVC size")
    print(f"{'SVC MB':>8} {'C Kops':>12} {'E Kops':>12}")
    for size in SVC_SIZES:
        r = results["svc"][size]
        print(f"{size // MB:>8} {r['C'].kops:>12.1f} {r['E'].kops:>12.1f}")
    print()
    small = results["svc"][SVC_SIZES[0]]["C"].throughput
    large = results["svc"][SVC_SIZES[-1]]["C"].throughput
    paper_row("small cache retains", ">=55% of large", f"{small / large:.0%}")


def test_load_stable_across_pwb_sizes(results):
    """Background reclamation keeps LOAD throughput roughly flat."""
    loads = [results["pwb"][s]["LOAD"].throughput for s in PWB_SIZES]
    assert min(loads) > 0.5 * max(loads)


def test_bigger_pwb_helps_updates(results):
    small = results["pwb"][PWB_SIZES[0]]["A"].throughput
    large = results["pwb"][PWB_SIZES[-1]]["A"].throughput
    assert large >= small * 0.95  # rises (or at worst flat)


def test_bigger_svc_helps_reads(results):
    small = results["svc"][SVC_SIZES[0]]["C"].throughput
    large = results["svc"][SVC_SIZES[-1]]["C"].throughput
    assert large > small
