"""Figure 16: multicore scalability (A, C, E).

Paper (10–40 cores): Prism scales near-linearly everywhere; KVell
trails (QD 1 far below QD 64); MatrixKV stays flat at the bottom.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import multicore_scalability

THREADS = (1, 2, 4, 8, 16)
WORKLOADS = ("A", "C", "E")


@pytest.fixture(scope="module")
def results():
    return multicore_scalability(thread_counts=THREADS, workloads=WORKLOADS)


def test_fig16_series(results):
    banner("Figure 16 — multicore scalability")
    for wl in WORKLOADS:
        print(f"\n  workload {wl} (Kops):")
        header = f"  {'threads':>8}" + "".join(f"{n:>14}" for n in results)
        print(header)
        for t in THREADS:
            row = f"  {t:>8}" + "".join(
                f"{results[name][wl][t].kops:>14.1f}" for name in results
            )
            print(row)
    print()
    scale = results["Prism"]["C"][16].throughput / results["Prism"]["C"][1].throughput
    paper_row("Prism C speedup 1 -> 16 threads", "near linear", f"{scale:.1f}x")


def test_prism_scales(results):
    for wl in WORKLOADS:
        series = results["Prism"][wl]
        assert series[16].throughput > 5 * series[1].throughput, wl


def test_prism_beats_matrixkv_at_scale(results):
    for wl in WORKLOADS:
        assert (
            results["Prism"][wl][16].throughput
            > results["MatrixKV"][wl][16].throughput
        ), wl


def test_kvell_qd1_below_qd64_on_reads(results):
    """A single outstanding IO per ring starves the SSDs (paper)."""
    assert (
        results["KVell(QD64)"]["C"][16].throughput
        > results["KVell(QD1)"]["C"][16].throughput
    )


def test_matrixkv_write_scaling_saturates(results):
    """Compaction debt caps MatrixKV's A throughput well below linear."""
    series = results["MatrixKV"]["A"]
    speedup = series[16].throughput / series[1].throughput
    assert speedup < 10
