"""Figure 8 + Table 4: Prism vs SLM-DB (single thread).

Paper: Prism up to 22.7x on writes, ~14x on reads, 2.5x on scans;
SLM-DB shows *lower* C latency because it leans on the OS page cache
("not apple-to-apple", §7.4).
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import slmdb_comparison
from repro.bench.report import latency_table, throughput_table

WORKLOADS = ("LOAD", "A", "B", "C", "D", "E")


@pytest.fixture(scope="module")
def results():
    return slmdb_comparison(workloads=WORKLOADS)


def test_fig08_throughput(results):
    banner("Figure 8 — Prism vs SLM-DB throughput (single thread)")
    print(throughput_table("Prism vs SLM-DB", results, WORKLOADS))
    print()
    paper_row(
        "A: Prism / SLM-DB",
        "up to 22.7x",
        f"{results['Prism']['A'].throughput / results['SLM-DB']['A'].throughput:.1f}x",
    )
    paper_row(
        "E: Prism / SLM-DB",
        "2.5x",
        f"{results['Prism']['E'].throughput / results['SLM-DB']['E'].throughput:.1f}x",
    )


def test_table4_latency(results):
    banner("Table 4 — Prism vs SLM-DB latency (us)")
    print(latency_table("latency", results, ("A", "C", "E")))
    print()
    paper_row(
        "C: SLM-DB lower latency (page cache)",
        "10 vs 25 us avg",
        f"{results['SLM-DB']['C'].latency.average():.1f} vs "
        f"{results['Prism']['C'].latency.average():.1f} us",
    )


def test_prism_wins_writes(results):
    for wl in ("LOAD", "A"):
        assert results["Prism"][wl].throughput > results["SLM-DB"][wl].throughput


def test_prism_wins_scans(results):
    assert results["Prism"]["E"].throughput > results["SLM-DB"]["E"].throughput


def test_slmdb_write_tail_is_terrible(results):
    """Flush stalls give SLM-DB a millisecond-scale write p99
    (paper: 1363 us vs Prism's 90 us)."""
    assert (
        results["SLM-DB"]["A"].latency.p99()
        > results["Prism"]["A"].latency.p99()
    )
