"""§7.6 scalar claims: NVM space overhead and recovery time.

Paper: ~5.4 GB of NVM per 100 M pairs (54 B/key for key index + HSIT);
recovery 6.9 s (Prism) vs 10.4 s (KVell, full SSD scan) after 100 GB.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.experiments import nvm_space, recovery_comparison


def test_nvm_space():
    out = nvm_space()
    banner("§7.6 — NVM space overhead")
    print(f"  keys:        {out['keys']:.0f}")
    print(f"  HSIT bytes:  {out['hsit_bytes']:.0f}")
    print(f"  index bytes: {out['index_bytes']:.0f}")
    print(f"  per key:     {out['bytes_per_key']:.1f} B")
    print()
    paper_row("NVM bytes per key", "~54 B (5.4 GB / 100 M)", f"{out['bytes_per_key']:.1f} B")
    assert 10 < out["bytes_per_key"] < 200


def test_recovery_time():
    out = recovery_comparison()
    banner("§7.6 — recovery time")
    print(f"  Prism:  {out['prism_seconds'] * 1e3:.3f} ms "
          f"({out['prism_keys']:.0f} keys recovered)")
    print(f"  KVell:  {out['kvell_seconds'] * 1e3:.3f} ms (full SSD scan)")
    print()
    paper_row("Prism vs KVell", "6.9 s vs 10.4 s (Prism faster)",
              f"{out['prism_seconds'] * 1e3:.3f} vs {out['kvell_seconds'] * 1e3:.3f} ms")
    # Prism recovers from NVM metadata; KVell scans the whole dataset.
    assert out["prism_seconds"] < out["kvell_seconds"]
