"""§8 (discussion) as an experiment: Prism on emerging storage media.

The paper argues its design transfers to CXL-based persistent memory,
ultra-low-latency SSDs, and PCIe Gen5 flash.  This extension swaps
those devices into the same cost-parity harness:

* CXL persistent memory adds ~2x latency to every PWB/HSIT/index
  access — the write path should slow modestly but stay microsecond-
  scale (the protocol does a handful of NVM operations per op);
* Optane SSDs cut Value Storage read latency 5x at the price of
  bandwidth — cache-miss-heavy workloads should gain;
* Gen5 flash doubles Value Storage bandwidth — scan-heavy and
  reclamation-heavy workloads gain headroom.
"""

import pytest

from benchmarks.conftest import banner, paper_row
from repro.bench.extensions import media_matrix


@pytest.fixture(scope="module")
def results():
    return media_matrix()


def test_media_matrix(results):
    banner("Extension (§8) — Prism across storage generations")
    header = f"  {'configuration':24}" + "".join(
        f"{wl:>12}" for wl in ("A", "C", "E")
    ) + f"{'A p50 us':>12}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for label, runs in results.items():
        row = f"  {label:24}" + "".join(
            f"{runs[wl].kops:>12.1f}" for wl in ("A", "C", "E")
        )
        row += f"{runs['A'].latency.median():>12.1f}"
        print(row)
    print()
    paper_row(
        "CXL-NVM write path",
        "workable (byte-addressable)",
        f"A p50 {results['cxl-nvm+gen4']['A'].latency.median():.1f} us",
    )


def test_cxl_nvm_keeps_microsecond_writes(results):
    """One CXL hop must not push the write path out of the us range."""
    assert results["cxl-nvm+gen4"]["A"].latency.median() < 20


def test_cxl_nvm_slower_than_dcpmm_but_close(results):
    base = results["dcpmm+gen4 (paper)"]["A"].throughput
    cxl = results["cxl-nvm+gen4"]["A"].throughput
    assert cxl < base * 1.05
    assert cxl > base * 0.4  # degraded, not broken


def test_every_variant_functions(results):
    for label, runs in results.items():
        for wl in ("A", "C", "E"):
            assert runs[wl].throughput > 0, (label, wl)
