#!/usr/bin/env python
"""Capacity planning: how PWB, SVC, and SSD-count choices shape
performance (the paper's Figures 13 and 15 as a what-if tool).

Sweeps one dimension at a time on a fixed workload and prints the
trade-off, the way an operator sizing a deployment would.

Run:  python examples/tiered_storage_tuning.py
"""

from repro.bench import build_prism, preload, run_workload
from repro.workloads import WORKLOADS

MB = 1024**2
KEYS = 6000
OPS = 5000
THREADS = 8


def sweep_pwb() -> None:
    print("=" * 66)
    print("NVM write buffer (PWB) sizing — write-heavy YCSB-A")
    print("=" * 66)
    print(f"{'PWB total':>12} {'A Kops':>10} {'avg us':>9} {'p99 us':>9} {'WAF':>7}")
    for pwb in (1 * MB, 2 * MB, 4 * MB, 8 * MB):
        store = build_prism(
            num_threads=THREADS, pwb_total=pwb, expected_keys=KEYS * 3
        )
        preload(store, KEYS, 1024, num_threads=THREADS)
        r = run_workload(store, WORKLOADS["A"], OPS, KEYS, num_threads=THREADS)
        print(
            f"{pwb // MB:>10}MB {r.kops:>10.1f} {r.latency.average():>9.1f} "
            f"{r.latency.p99():>9.1f} {r.waf:>7.2f}"
        )
    print("  -> a larger buffer absorbs more overwrites: higher")
    print("     throughput AND less flash wear (lower WAF).\n")


def sweep_svc() -> None:
    print("=" * 66)
    print("DRAM value cache (SVC) sizing — read-only YCSB-C")
    print("=" * 66)
    print(f"{'SVC size':>12} {'C Kops':>10} {'avg us':>9} {'hit rate':>9}")
    for svc in (1 * MB, 2 * MB, 4 * MB, 8 * MB):
        store = build_prism(
            num_threads=THREADS, svc_capacity=svc, expected_keys=KEYS * 3
        )
        preload(store, KEYS, 1024, num_threads=THREADS)
        r = run_workload(
            store, WORKLOADS["C"], OPS, KEYS, num_threads=THREADS,
            warmup_ops=OPS // 2,
        )
        hits = store.svc.hits
        touches = hits + store.svc.admissions
        rate = hits / touches if touches else 0.0
        print(f"{svc // MB:>10}MB {r.kops:>10.1f} "
              f"{r.latency.average():>9.1f} {rate:>9.1%}")
    print("  -> diminishing returns once the hot set fits (Figure 15b).\n")


def sweep_ssds() -> None:
    print("=" * 66)
    print("SSD aggregation — write bandwidth scaling, YCSB-A")
    print("=" * 66)
    print(f"{'#SSDs':>8} {'A Kops':>10} {'p99 us':>9}")
    for n in (1, 2, 4, 8):
        store = build_prism(
            num_threads=THREADS, num_ssds=n, expected_keys=KEYS * 3
        )
        preload(store, KEYS, 1024, num_threads=THREADS)
        r = run_workload(store, WORKLOADS["A"], OPS, KEYS, num_threads=THREADS)
        print(f"{n:>8} {r.kops:>10.1f} {r.latency.p99():>9.1f}")
    print("  -> one Value Storage per SSD aggregates bandwidth (Fig. 13);")
    print("     the PWB keeps latency flat regardless of device count.")


if __name__ == "__main__":
    sweep_pwb()
    sweep_svc()
    sweep_ssds()
