#!/usr/bin/env python
"""Serving a production-style workload (the paper's Figure 10b).

Replays a Nutanix-like mix — 57% updates, 41% reads, 2% scans, with
real-world skew — against Prism and KVell at equal hardware cost, and
inspects where Prism's advantage comes from: write absorption in the
PWB and value-granular caching.

Run:  python examples/production_mix.py
"""

from repro.bench import build_kvell, build_prism, preload, run_workload
from repro.workloads import NUTANIX

KEYS = 8000
OPS = 8000
THREADS = 8


def main() -> None:
    dataset = KEYS * 1024
    stores = {
        "Prism": build_prism(
            num_threads=THREADS, dataset_bytes=dataset, expected_keys=KEYS * 3
        ),
        "KVell": build_kvell(dataset_bytes=dataset),
    }
    results = {}
    for name, store in stores.items():
        print(f"loading {name}...")
        preload(store, KEYS, 1024, num_threads=THREADS)
        results[name] = run_workload(
            store, NUTANIX, OPS, KEYS, num_threads=THREADS,
            warmup_ops=OPS // 2,
        )

    print()
    print(f"{'store':8} {'Kops/s':>10} {'avg us':>9} {'p50':>8} "
          f"{'p99':>8} {'WAF':>7}")
    for name, r in results.items():
        print(f"{name:8} {r.kops:>10.1f} {r.latency.average():>9.1f} "
              f"{r.latency.median():>8.1f} {r.latency.p99():>8.1f} "
              f"{r.waf:>7.2f}")

    ratio = results["Prism"].throughput / results["KVell"].throughput
    print(f"\nPrism / KVell throughput: {ratio:.2f}x   (paper: 1.44x)")

    prism = stores["Prism"]
    stats = prism.stats()
    print("\nwhere Prism's advantage comes from:")
    print(f"  PWB reclamations (writes batched to flash): {stats['reclaims']:.0f}")
    print(f"  SVC hit count (reads served from DRAM):     {stats['svc_hits']:.0f}")
    print(f"  SSD write amplification:                    {stats['waf']:.2f}")
    print(f"  flash endurance consumed:                   "
          f"{max(s.endurance_consumed() for s in prism.ssds):.2e} of lifetime")


if __name__ == "__main__":
    main()
