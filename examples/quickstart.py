#!/usr/bin/env python
"""Quickstart: Prism as an embedded key-value store.

Creates a Prism instance on simulated heterogeneous devices, writes,
reads, scans, deletes, then survives a power failure.

Run:  python examples/quickstart.py
"""

from repro import Prism, PrismConfig

MB = 1024**2


def main() -> None:
    # A small instance: 2 simulated flash SSDs, per-thread NVM write
    # buffers, and a DRAM value cache.
    config = PrismConfig(
        num_threads=2,
        num_ssds=2,
        pwb_capacity=4 * MB,
        svc_capacity=16 * MB,
    )
    store = Prism(config)

    # --- basic operations -------------------------------------------
    store.put(b"user:alice", b'{"age": 34, "city": "Vancouver"}')
    store.put(b"user:bob", b'{"age": 27, "city": "Seoul"}')
    store.put(b"user:carol", b'{"age": 41, "city": "Blacksburg"}')

    print("get user:alice ->", store.get(b"user:alice").decode())

    # Updates are absorbed by the NVM write buffer: only the newest
    # version will ever reach flash.
    store.put(b"user:alice", b'{"age": 35, "city": "Vancouver"}')
    print("after update   ->", store.get(b"user:alice").decode())

    # Ordered range scans come from the persistent key index.
    print("\nscan user:a.. (3):")
    for key, value in store.scan(b"user:a", 3):
        print("  ", key.decode(), "=", value.decode())

    store.delete(b"user:bob")
    print("\nafter delete, user:bob ->", store.get(b"user:bob"))

    # --- durability --------------------------------------------------
    # Writes are durable the moment put() returns: survive a power cut.
    store.put(b"user:dave", b'{"age": 52}')
    store.crash()  # drop DRAM + unflushed NVM cache lines
    report = store.recover()
    print(
        f"\nrecovered {report.recovered_keys} keys in "
        f"{report.duration * 1e6:.1f} virtual us "
        f"({report.pwb_values_flushed} flushed from the write buffer)"
    )
    print("after crash, user:dave ->", store.get(b"user:dave").decode())

    # --- observability -----------------------------------------------
    stats = store.stats()
    print("\nstore statistics:")
    for key in ("puts", "gets", "scans", "reclaims", "waf", "nvm_bytes_used"):
        print(f"  {key:16} {stats[key]}")


if __name__ == "__main__":
    main()
