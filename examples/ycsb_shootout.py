#!/usr/bin/env python
"""YCSB shoot-out: Prism against the paper's four baselines.

Loads a dataset into each store at cost-parity configurations
(Table 1, scaled) and runs YCSB A/C/E, printing a Figure-7-style
table.  All numbers are virtual-time metrics from the simulated
devices; ratios between stores are the meaningful quantity.

Run:  python examples/ycsb_shootout.py [--keys N] [--ops N] [--threads N]
"""

import argparse

from repro.bench import (
    build_kvell,
    build_matrixkv,
    build_prism,
    build_rocksdb_nvm,
    preload,
    run_workload,
)
from repro.bench.report import latency_table, throughput_table
from repro.workloads import WORKLOADS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys", type=int, default=8000)
    parser.add_argument("--ops", type=int, default=8000)
    parser.add_argument("--threads", type=int, default=8)
    args = parser.parse_args()

    dataset = args.keys * 1024
    factories = {
        "Prism": lambda: build_prism(
            num_threads=args.threads,
            dataset_bytes=dataset,
            expected_keys=args.keys * 2,
        ),
        "KVell": lambda: build_kvell(dataset_bytes=dataset),
        "MatrixKV": lambda: build_matrixkv(dataset_bytes=dataset),
        "RocksDB-NVM": lambda: build_rocksdb_nvm(dataset_bytes=dataset),
    }
    workloads = ("A", "C", "E")
    results = {}
    for name, make in factories.items():
        print(f"loading {name} ({args.keys} keys)...")
        store = make()
        preload(store, args.keys, 1024, num_threads=args.threads)
        results[name] = {}
        for wl in workloads:
            ops = args.ops if wl != "E" else max(200, args.ops // 5)
            results[name][wl] = run_workload(
                store,
                WORKLOADS[wl],
                ops,
                args.keys,
                num_threads=args.threads,
                warmup_ops=ops // 2,
            )
            print(" ", results[name][wl].summary())

    print()
    print(throughput_table("YCSB shoot-out (Figure 7 style)", results, workloads))
    print()
    print(latency_table("Latency (Table 3 style)", results, workloads))
    print()
    prism_a = results["Prism"]["A"].throughput
    for rival in ("KVell", "MatrixKV", "RocksDB-NVM"):
        ratio = prism_a / results[rival]["A"].throughput
        print(f"  YCSB-A: Prism is {ratio:.1f}x {rival}")


if __name__ == "__main__":
    main()
