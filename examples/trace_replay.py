#!/usr/bin/env python
"""Record a workload once, replay it everywhere.

Captures a write-heavy YCSB-A stream into a portable trace file, then
replays the *identical* operation sequence against Prism and KVell —
the apples-to-apples methodology production evaluations use (and the
closest public stand-in for the paper's Nutanix trace replay, §7.5).

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import Prism, PrismConfig, VThread
from repro.bench import build_kvell, build_prism
from repro.workloads import YCSB_A, capture_workload, read_trace, replay

KEYS = 3000
OPS = 6000


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "ycsb_a.trace"
    count = capture_workload(
        YCSB_A, OPS, KEYS, trace_path, value_size=512, seed=11
    )
    size_kb = trace_path.stat().st_size // 1024
    print(f"captured {count} operations into {trace_path} ({size_kb} KB)")

    dataset = KEYS * 512
    stores = {
        "Prism": build_prism(num_threads=1, dataset_bytes=dataset,
                             expected_keys=KEYS * 3),
        "KVell": build_kvell(dataset_bytes=dataset),
    }
    print(f"\nreplaying the identical sequence against {len(stores)} engines:")
    results = {}
    for name, store in stores.items():
        thread = VThread(0, store.clock)
        start = thread.now
        replayed = replay(store, read_trace(trace_path), thread)
        elapsed = thread.now - start
        results[name] = (replayed / elapsed, store)
        print(f"  {name:8} {replayed} ops in {elapsed * 1e3:8.2f} virtual ms "
              f"-> {replayed / elapsed / 1e3:8.1f} Kops/s   "
              f"waf={store.waf():.2f}")

    # Both engines must end with identical visible contents.
    prism, kvell = results["Prism"][1], results["KVell"][1]
    a = prism.scan(b"u", 100_000)
    b = kvell.scan(b"u", 100_000)
    assert a == b, "engines diverged on the same trace!"
    print(f"\nverified: both engines hold identical contents "
          f"({len(a)} live keys)")
    ratio = results["Prism"][0] / results["KVell"][0]
    print(f"Prism / KVell on this trace: {ratio:.2f}x")


if __name__ == "__main__":
    main()
