#!/usr/bin/env python
"""Crash-consistency walkthrough: the cross-media protocol in action.

Demonstrates what the HSIT's flush-on-read dirty-bit protocol and
backward pointers guarantee (§5.4–5.5): acknowledged writes survive a
power failure; an update whose forward pointer never became durable
rolls back to the previous value; and Prism recovers without any log
replay — it just walks the index and checks well-coupledness.

Run:  python examples/crash_recovery.py
"""

import random

from repro import Prism, PrismConfig
from repro.core import pointers as ptr

KB = 1024
MB = 1024**2


def demo_acknowledged_writes_survive() -> None:
    print("=" * 64)
    print("1. Acknowledged writes survive a power failure")
    print("=" * 64)
    store = Prism(PrismConfig(num_threads=2, pwb_capacity=256 * KB,
                              svc_capacity=1 * MB))
    rng = random.Random(7)
    model = {}
    for i in range(2000):
        key = b"acct:%04d" % rng.randrange(400)
        value = b"balance=%08d" % rng.randrange(10**8)
        store.put(key, value)
        model[key] = value
    print(f"  wrote {len(model)} live keys "
          f"({store.reclaims} background reclamations ran)")

    store.crash()  # DRAM gone, unflushed NVM lines gone
    report = store.recover()
    print(f"  recovered {report.recovered_keys} keys; "
          f"{report.pwb_values_flushed} flushed out of write buffers; "
          f"{report.vs_records_validated} validated on flash")
    intact = sum(store.get(k) == v for k, v in model.items())
    print(f"  verified: {intact}/{len(model)} values intact\n")
    assert intact == len(model)


def demo_torn_update_rolls_back() -> None:
    print("=" * 64)
    print("2. A torn update rolls back to the old value (Figure 6)")
    print("=" * 64)
    store = Prism(PrismConfig(num_threads=1, pwb_capacity=256 * KB,
                              svc_capacity=1 * MB))
    store.put(b"k", b"old-value")
    store.flush()  # durable on flash

    # Re-enact the middle of an update: the new value reaches the PWB
    # (with its backward pointer), the HSIT forward pointer is stored —
    # but the crash hits before the pointer's cache line is flushed.
    idx = store.index.lookup(b"k")
    offset = store.pwbs[0].append(idx, b"new-value")
    dirty_word = ptr.set_dirty(ptr.encode_pwb(0, offset))
    store.nvm.store(None, store.hsit._addr(idx), dirty_word.to_bytes(8, "little"))
    print("  new value written to PWB; forward pointer stored, NOT flushed")

    store.crash()
    store.recover()
    print(f"  after recovery: k = {store.get(b'k').decode()!r} "
          "(the un-acknowledged update vanished)\n")
    assert store.get(b"k") == b"old-value"


def demo_recovery_is_log_free() -> None:
    print("=" * 64)
    print("3. Recovery walks NVM metadata — no log replay, no SSD scan")
    print("=" * 64)
    store = Prism(PrismConfig(num_threads=4, pwb_capacity=512 * KB,
                              svc_capacity=4 * MB))
    for i in range(5000):
        store.put(b"doc:%05d" % i, b"x" * 200)
    store.flush()
    data_bytes = store.ssd_bytes_written()
    store.crash()
    report = store.recover(recovery_threads=4)
    # What a KVell-style full-device scan would have cost:
    scan_cost = store.ssds[0].scan_time(data_bytes // len(store.ssds))
    print(f"  dataset on flash: {data_bytes // 1024} KB")
    print(f"  Prism recovery:   {report.duration * 1e6:9.1f} virtual us")
    print(f"  full SSD scan:    {scan_cost * 1e6:9.1f} virtual us "
          "(what a log-less DRAM-SSD store pays)")
    print(f"  leaked HSIT entries reclaimed: {report.leaked_entries_reclaimed}")


if __name__ == "__main__":
    demo_acknowledged_writes_survive()
    demo_torn_update_rolls_back()
    demo_recovery_is_log_free()
