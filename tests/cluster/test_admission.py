"""Admission control: token bucket, queue caps, typed shedding."""

import pytest

from repro.cluster.admission import AdmissionController, TokenBucket
from repro.cluster.errors import ShardOverloadedError


class TestTokenBucket:
    def test_burst_then_refill(self):
        tb = TokenBucket(rate=10.0, burst=2.0)
        assert tb.try_take(0.0) == 0.0
        assert tb.try_take(0.0) == 0.0
        wait = tb.try_take(0.0)
        assert wait == pytest.approx(0.1)
        # After the hinted wait a token is available again.
        assert tb.try_take(wait) == 0.0

    def test_tokens_cap_at_burst(self):
        tb = TokenBucket(rate=100.0, burst=3.0)
        tb.try_take(0.0)
        # A long idle period must not bank more than `burst` tokens.
        for _ in range(3):
            assert tb.try_take(1000.0) == 0.0
        assert tb.try_take(1000.0) > 0.0

    def test_time_never_flows_backwards(self):
        tb = TokenBucket(rate=1.0, burst=1.0)
        assert tb.try_take(5.0) == 0.0
        # An earlier-timestamped request must not refill anything.
        assert tb.try_take(1.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_disabled_admits_everything(self):
        ac = AdmissionController(0)
        assert not ac.enabled
        for _ in range(10_000):
            ac.admit(0.0)
        assert ac.shed_queue == ac.shed_rate == 0

    def test_queue_depth_cap_sheds(self):
        ac = AdmissionController(3, max_queue_depth=2)
        ac.admit(0.0)
        ac.complete(1.0)
        ac.admit(0.0)
        ac.complete(1.0)
        with pytest.raises(ShardOverloadedError) as exc:
            ac.admit(0.5)  # both ops still in flight at t=0.5
        assert exc.value.shard_id == 3
        assert "queue depth" in exc.value.reason
        assert ac.shed_queue == 1
        # Once the in-flight ops end, admission resumes.
        ac.admit(1.5)
        assert ac.admitted == 3

    def test_rate_limit_sheds_with_retry_hint(self):
        ac = AdmissionController(1, rate=10.0, burst=1.0)
        ac.admit(0.0)
        with pytest.raises(ShardOverloadedError) as exc:
            ac.admit(0.0)
        assert exc.value.retry_after > 0.0
        assert ac.shed_rate == 1
        ac.admit(0.0 + exc.value.retry_after)

    def test_inflight_tracking_pops_finished(self):
        ac = AdmissionController(0, max_queue_depth=8)
        for end in (1.0, 2.0, 3.0):
            ac.admit(0.0)
            ac.complete(end)
        assert ac.inflight_at(0.5) == 3
        assert ac.inflight_at(2.5) == 1
        assert ac.inflight_at(3.5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0, max_queue_depth=0)
