"""The cluster router: replication, failover, re-replication,
admission integration, and the store-shaped facade."""

import pytest

from repro.cluster import (
    ClusterConfig,
    PrismCluster,
    ShardOverloadedError,
    ShardUnavailableError,
)
from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.vthread import VThread
from tests.conftest import small_prism_config


def small_factory(shard_id, clock):
    return Prism(
        small_prism_config(faults=FaultConfig(seed=9000 + shard_id)),
        metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
        clock=clock,
    )


def build(**overrides) -> PrismCluster:
    defaults = dict(num_shards=3, replication_factor=2)
    defaults.update(overrides)
    return PrismCluster(ClusterConfig(**defaults), shard_factory=small_factory)


def fill(cluster, n, thread, prefix=b"key"):
    for i in range(n):
        cluster.put(b"%s%04d" % (prefix, i), b"val%04d" % i, thread)


class TestBasicOps:
    def test_put_get_delete_roundtrip(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 100, t)
        for i in range(100):
            assert c.get(b"key%04d" % i, t) == b"val%04d" % i
        assert c.get(b"missing", t) is None
        assert c.delete(b"key0000", t) is True
        assert c.get(b"key0000", t) is None
        assert c.delete(b"key0000", t) is False

    def test_operations_advance_virtual_time(self):
        c = build()
        t = VThread(1, c.clock)
        t0 = t.now
        c.put(b"k", b"v", t)
        assert t.now > t0

    def test_scan_merges_across_shards(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 60, t)
        pairs = c.scan(b"key0010", 20, t)
        assert [k for k, _ in pairs] == [b"key%04d" % i for i in range(10, 30)]
        assert all(v == b"val%04d" % (10 + i) for i, (_, v) in enumerate(pairs))

    def test_replicas_hold_copies(self):
        """Every key is durable on exactly RF shard stores."""
        c = build(num_shards=4, replication_factor=2)
        t = VThread(1, c.clock)
        fill(c, 50, t)
        for i in range(50):
            key = b"key%04d" % i
            holders = [
                s.shard_id
                for s in c.shards
                if s.store.index.lookup(key) is not None
            ]
            assert sorted(holders) == sorted(c.ring.preference_list(key, 2))

    def test_len_counts_keys_once(self):
        c = build(num_shards=3, replication_factor=3)
        t = VThread(1, c.clock)
        fill(c, 40, t)
        assert len(c) == 40

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=2, replication_factor=3)
        with pytest.raises(ValueError):
            ClusterConfig(replication_mode="gossip")
        with pytest.raises(ValueError):
            ClusterConfig(read_policy="nearest")


class TestReplicationModes:
    def test_sync_waits_for_all_quorum_for_majority(self):
        """Per-mode ack timing: async returns at the primary's ack,
        quorum at the majority ack, sync at the slowest replica."""
        ends = {}
        for mode in ("async", "quorum", "sync"):
            c = build(num_shards=3, replication_factor=3, replication_mode=mode)
            t = VThread(1, c.clock)
            c.put(b"k", b"v", t)
            ends[mode] = t.now
        assert ends["async"] <= ends["quorum"] <= ends["sync"]

    def test_async_backlog_applies_on_read(self):
        """Async replication converges lazily: the replica applies its
        queue before serving, so spread reads are monotone per client."""
        c = build(
            num_shards=2,
            replication_factor=2,
            replication_mode="async",
            read_policy="spread",
        )
        t = VThread(1, c.clock)
        fill(c, 30, t)
        for i in range(30):
            assert c.get(b"key%04d" % i, t) == b"val%04d" % i

    def test_async_queue_drains_on_flush(self):
        c = build(num_shards=2, replication_factor=2, replication_mode="async")
        t = VThread(1, c.clock)
        fill(c, 30, t)
        c.flush()
        assert all(not s.queue for s in c.shards)
        assert c.stats()["cluster_repl_applied"] == 30.0


class TestFailover:
    def test_kill_shard_keeps_acked_data(self):
        c = build(num_shards=3, replication_factor=2)
        t = VThread(1, c.clock)
        fill(c, 120, t)
        c.kill_shard(1, t.now)
        for i in range(120):
            assert c.get(b"key%04d" % i, t) == b"val%04d" % i

    def test_failover_emits_events_and_metrics(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 60, t)
        c.kill_shard(0, t.now)
        assert len(c.events.of_kind("shard_down")) == 1
        rebuilds = c.events.of_kind("rebuild")
        assert len(rebuilds) == 1
        assert rebuilds[0]["keys_lost"] == 0
        assert c.metrics.gauge("cluster.recovery_seconds").value > 0.0
        assert c.stats()["cluster_shards_down"] == 1.0

    def test_rebuild_restores_replication_factor(self):
        c = build(num_shards=4, replication_factor=2)
        t = VThread(1, c.clock)
        fill(c, 80, t)
        c.kill_shard(2, t.now)
        down = {2}
        for i in range(80):
            key = b"key%04d" % i
            live_owners = c.ring.preference_list(key, 2, exclude=down)
            for sid in live_owners:
                assert c.shards[sid].store.index.lookup(key) is not None, (
                    f"{key!r} missing on live owner {sid} after rebuild"
                )

    def test_writes_after_failover_replicate(self):
        c = build(num_shards=3, replication_factor=2)
        t = VThread(1, c.clock)
        fill(c, 40, t)
        c.kill_shard(0, t.now)
        fill(c, 40, t, prefix=b"new")
        for i in range(40):
            assert c.get(b"new%04d" % i, t) == b"val%04d" % i

    def test_rf1_data_on_dead_shard_is_lost_and_counted(self):
        c = build(num_shards=3, replication_factor=1)
        t = VThread(1, c.clock)
        fill(c, 90, t)
        dead = 1
        owned = [
            b"key%04d" % i
            for i in range(90)
            if c.ring.lookup(b"key%04d" % i) == dead
        ]
        assert owned, "pick a shard that owns something"
        c.kill_shard(dead, t.now)
        assert c.events.of_kind("rebuild")[0]["keys_lost"] == len(owned)
        for key in owned:
            assert c.get(key, t) is None

    def test_all_owners_down_raises_unavailable(self):
        c = build(num_shards=2, replication_factor=1)
        t = VThread(1, c.clock)
        c.put(b"k", b"v", t)
        c.kill_shard(0, t.now)
        c.kill_shard(1, t.now)
        with pytest.raises(ShardUnavailableError):
            c.get(b"k", t)

    def test_double_fail_is_idempotent(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 20, t)
        c.kill_shard(1, t.now)
        c.fail_shard(1, t.now)
        assert len(c.events.of_kind("shard_down")) == 1


class TestAdmissionIntegration:
    def test_queue_cap_sheds_through_router(self):
        c = build(num_shards=1, replication_factor=1, max_queue_depth=1)
        t1 = VThread(1, c.clock)
        t2 = VThread(2, c.clock)
        c.put(b"a", b"v", t1)
        # t2 starts inside t1's op window: the single slot is taken.
        t2.now = t1.now / 2 if t1.now > 0 else 0.0
        with pytest.raises(ShardOverloadedError):
            c.put(b"b", b"v", t2)
        assert c.metrics.counter("cluster.shed").value == 1

    def test_rate_limit_sheds_through_router(self):
        c = build(
            num_shards=1, replication_factor=1,
            rate_limit_ops=1.0, rate_burst=2.0,
        )
        t = VThread(1, c.clock)
        c.put(b"a", b"v", t)
        c.put(b"b", b"v", t)
        with pytest.raises(ShardOverloadedError) as exc:
            c.put(b"c", b"v", t)
        assert exc.value.retry_after > 0.0


class TestFacade:
    def test_store_shaped_surface(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 30, t)
        assert c.name == "PrismCluster"
        assert c.bytes_put > 0
        assert c.ssd_bytes_written() >= 0
        assert isinstance(c.waf(), float)
        stats = c.stats()
        assert stats["cluster_shards"] == 3.0
        assert isinstance(c.gc_events, list)
        c.flush()
        c.close()

    def test_merged_shard_metrics(self):
        c = build()
        t = VThread(1, c.clock)
        fill(c, 20, t)
        merged = c.merged_shard_metrics()
        # Shard registries are prefixed; the merged view is not.
        assert merged.to_dict() is not None

    def test_shared_clock_enforced(self):
        with pytest.raises(ValueError):
            PrismCluster(
                ClusterConfig(num_shards=1),
                shard_factory=lambda sid, clock: Prism(small_prism_config()),
            )
