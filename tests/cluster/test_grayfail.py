"""End-to-end gray failure: injection through the router's defenses.

Tier-1 runs a small smoke configuration (cheap enough for every CI
run); the full-size bench gates are marked ``slow_gray``.
"""

import json

import pytest

from repro.bench import grayfail as gf
from repro.cluster.crash_sweep import ClusterCrashSweep
from repro.cluster.health import HealthConfig
from repro.cluster.runner import GrayPlan
from repro.faults.crash_sweep import default_ops

SMOKE = dict(num_keys=800, num_ops=2500)


@pytest.fixture(scope="module")
def smoke_runs():
    return gf.grayfail_comparison(**SMOKE)


class TestGrayPlan:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            GrayPlan(shard_id=0, at_fraction=1.0)

    def test_gray_shard_is_injected_and_run_stays_green(self, smoke_runs):
        undefended = smoke_runs["undefended"]
        counters = undefended.run.metrics["counters"]
        assert counters["fault.slow_injections"] > 0
        assert counters["cluster.gray_injected"] == 1
        # Gray failure is silent: nothing errors, nothing is lost.
        assert undefended.ops_failed == 0
        assert undefended.audit["lost_acked"] == 0
        assert undefended.audit["wrong_value"] == 0


class TestDefense:
    def test_defense_counters_present_in_metrics_json(self, smoke_runs):
        """The metrics JSON schema: every defense counter is present
        (pre-touched) even when a mechanism never fired."""
        counters = smoke_runs["defended"].run.metrics["counters"]
        for name in (
            "hedge.fired", "hedge.won", "hedge.wasted",
            "breaker.opened", "breaker.closed", "fault.slow_injections",
        ):
            assert name in counters, f"missing counter {name}"

    def test_hedges_fire_and_accounting_adds_up(self, smoke_runs):
        counters = smoke_runs["defended"].run.metrics["counters"]
        assert counters["hedge.fired"] > 0
        assert (
            counters["hedge.won"] + counters["hedge.wasted"]
            == counters["hedge.fired"]
        )

    def test_breaker_opens_on_the_gray_shard(self, smoke_runs):
        counters = smoke_runs["defended"].run.metrics["counters"]
        assert counters["breaker.opened"] > 0

    def test_defended_tail_beats_undefended(self, smoke_runs):
        defended = gf.read_p99(smoke_runs["defended"])
        undefended = gf.read_p99(smoke_runs["undefended"])
        assert defended < undefended

    def test_gates_pass_at_smoke_size(self, smoke_runs):
        ok_tail, msg = gf.check_tail(
            smoke_runs["healthy"], smoke_runs["defended"]
        )
        assert ok_tail, msg
        ok_cost, msg = gf.check_overhead(smoke_runs["defended"])
        assert ok_cost, msg

    def test_defended_run_loses_nothing(self, smoke_runs):
        defended = smoke_runs["defended"]
        assert defended.audit["lost_acked"] == 0
        assert defended.audit["wrong_value"] == 0


class TestDeterminism:
    def test_two_defended_gray_runs_are_byte_identical(self):
        def payload():
            results = gf.grayfail_comparison(num_keys=400, num_ops=1200)
            return json.dumps(
                results["defended"].run.metrics, sort_keys=True, indent=1
            )

        assert payload() == payload()


class TestGrayCrashSweep:
    def test_gray_shard_must_differ_from_crash_shard(self):
        with pytest.raises(ValueError):
            ClusterCrashSweep(gray_shard=0)

    def test_kill_under_gray_keeps_durability(self):
        sweep = ClusterCrashSweep(
            ops=default_ops(120, 30, seed=7), gray_shard=1
        )
        report = sweep.run()
        assert report.ok, report.summary()


@pytest.mark.slow_gray
class TestFullGates:
    def test_full_size_gates(self):
        results = gf.grayfail_comparison()
        ok_tail, msg = gf.check_tail(results["healthy"], results["defended"])
        assert ok_tail, msg
        ok_cost, msg = gf.check_overhead(results["defended"])
        assert ok_cost, msg

    def test_full_gray_crash_sweep(self):
        sweep = ClusterCrashSweep(gray_shard=1)
        report = sweep.run()
        assert report.ok, report.summary()


class TestHealthyDefenseOverhead:
    def test_armed_but_healthy_cluster_hedges_rarely(self):
        """With no gray fault, the defense must stay near-free: no
        breaker opens and wasted hedges stay under the overhead gate."""
        results = {
            "healthy": gf.grayfail_comparison(
                num_keys=400, num_ops=1200
            )["healthy"],
        }
        cluster = gf._build(HealthConfig(), 400)
        from repro.cluster.runner import run_cluster_workload

        armed = run_cluster_workload(
            cluster, gf.READ_HEAVY_UNIFORM, 1200, 400,
            clients_per_shard=2, seed=5,
        )
        cluster.close()
        counters = armed.run.metrics["counters"]
        assert counters["breaker.opened"] == 0
        ok, msg = gf.check_overhead(armed)
        assert ok, msg
