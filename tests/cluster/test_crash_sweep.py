"""Cluster crash sweep: a shard death at discovered crash points must
never surface a lost or stale value through the router."""

import pytest

from repro.cluster.crash_sweep import ClusterCrashSweep
from repro.faults.crash_sweep import default_ops, main as sweep_main


@pytest.fixture(scope="module")
def sweep() -> ClusterCrashSweep:
    return ClusterCrashSweep(ops=default_ops(num_ops=160, num_keys=32))


@pytest.fixture(scope="module")
def labels(sweep):
    found = sweep.discover()
    assert found, "workload reached no crash points on shard 0"
    return found


class TestDiscovery:
    def test_discovery_is_deterministic(self, sweep, labels):
        assert sweep.discover() == labels

    def test_labels_cover_write_path(self, labels):
        # The tight shard config must at least reach PWB writeback.
        assert any("pwb" in label or "log" in label for label in labels), labels


class TestShardDeathAtLabel:
    def test_first_labels_keep_contract(self, sweep, labels):
        """Spot-check a few labels inline (the full sweep is the
        slow_cluster job / CI smoke)."""
        for label in sorted(labels)[:3]:
            outcome = sweep.verify_label(label)
            assert outcome.fired, f"{label} never fired"
            assert outcome.violations == [], (label, outcome.violations)
            assert outcome.keys_checked > 0

    def test_unreachable_occurrence_reports_not_fired(self, sweep, labels):
        label = sorted(labels)[0]
        outcome = sweep.verify_label(label, occurrence=10_000)
        assert not outcome.fired
        assert not outcome.ok


@pytest.mark.slow_cluster
class TestFullSweep:
    def test_every_label_keeps_contract(self, sweep):
        report = sweep.run()
        assert report.ok, report.summary()

    def test_cli_cluster_mode(self):
        assert sweep_main(["--cluster", "--ops", "160", "--keys", "32"]) == 0
