"""Cluster workload runner: the ledger's legality rules, mid-run shard
death under load, and 1-shard bit-identity with a bare Prism."""

import pytest

from repro.bench.runner import preload, run_workload
from repro.cluster import ClusterConfig, PrismCluster
from repro.cluster.runner import KillPlan, WriteLedger, run_cluster_workload
from repro.core.prism import Prism
from repro.faults.injector import FaultConfig
from repro.obs.metrics import MetricsRegistry
from repro.workloads.ycsb import WorkloadSpec
from tests.conftest import small_prism_config

SPEC_A = WorkloadSpec(name="A", read=0.5, update=0.5, distribution="uniform")


def small_factory(shard_id, clock):
    return Prism(
        small_prism_config(faults=FaultConfig(seed=9000 + shard_id)),
        metrics=MetricsRegistry(prefix=f"shard{shard_id}/"),
        clock=clock,
    )


def build(**overrides) -> PrismCluster:
    defaults = dict(num_shards=3, replication_factor=2)
    defaults.update(overrides)
    return PrismCluster(ClusterConfig(**defaults), shard_factory=small_factory)


class TestWriteLedger:
    def test_latest_acked_value_is_legal(self):
        lg = WriteLedger()
        lg.ack(b"k", 0.0, 1.0, b"v1")
        lg.ack(b"k", 2.0, 3.0, b"v2")
        assert lg.legal_values(b"k") == {b"v2"}

    def test_concurrent_acked_writes_both_legal(self):
        lg = WriteLedger()
        lg.ack(b"k", 0.0, 2.0, b"v1")
        lg.ack(b"k", 1.0, 3.0, b"v2")  # overlaps: either may win
        assert lg.legal_values(b"k") == {b"v1", b"v2"}

    def test_interrupted_write_is_maybe_applied(self):
        lg = WriteLedger()
        lg.ack(b"k", 0.0, 1.0, b"v1")
        lg.interrupt(b"k", 2.0, 3.0, b"v2")
        assert lg.legal_values(b"k") == {b"v1", b"v2"}

    def test_superseded_interrupt_is_not_legal(self):
        lg = WriteLedger()
        lg.interrupt(b"k", 0.0, 1.0, b"torn")
        lg.ack(b"k", 2.0, 3.0, b"v2")
        assert lg.legal_values(b"k") == {b"v2"}

    def test_acked_delete_makes_none_legal(self):
        lg = WriteLedger()
        lg.ack(b"k", 0.0, 1.0, b"v1")
        lg.ack(b"k", 2.0, 3.0, None)
        assert lg.legal_values(b"k") == {None}

    def test_never_written_key_allows_none(self):
        lg = WriteLedger()
        lg.interrupt(b"k", 0.0, 1.0, b"maybe")
        assert lg.legal_values(b"k") == {None, b"maybe"}


class TestRunWithoutFailure:
    def test_clean_run_audits_clean(self):
        c = build()
        preload(c, 300, num_threads=2, seed=1)
        res = run_cluster_workload(
            c, SPEC_A, 600, 300, clients_per_shard=2, seed=2
        )
        assert res.ops_ok == 600
        assert res.ops_shed == res.ops_failed == 0
        assert res.audit["lost_acked"] == 0
        assert res.audit["wrong_value"] == 0
        assert res.recovery_seconds is None
        assert res.run.duration > 0
        assert res.run.metrics is not None

    def test_shed_ops_are_counted_not_raised(self):
        c = build(num_shards=1, replication_factor=1, max_queue_depth=1)
        preload(c, 100, num_threads=1, seed=1)
        res = run_cluster_workload(
            c, SPEC_A, 300, 100, clients_per_shard=4, seed=2
        )
        assert res.ops_shed > 0
        assert res.ops_ok + res.ops_shed + res.ops_failed == 300
        # Shed writes never acked, so they cannot be "lost".
        assert res.audit["lost_acked"] == 0


class TestRunWithKill:
    def test_quorum_kill_loses_no_acked_writes(self):
        c = build(num_shards=3, replication_factor=2)
        preload(c, 400, num_threads=2, seed=1)
        res = run_cluster_workload(
            c, SPEC_A, 900, 400, clients_per_shard=2, seed=2,
            kill_plan=KillPlan(shard_id=1, at_fraction=0.5),
        )
        assert res.killed_shard == 1
        assert res.audit["lost_acked"] == 0
        assert res.audit["wrong_value"] == 0
        assert res.recovery_seconds is not None and res.recovery_seconds > 0
        assert res.run.stats["cluster_shards_down"] == 1.0
        assert res.run.metrics["gauges"]["cluster.recovery_seconds"] > 0

    def test_rf1_kill_reports_losses(self):
        """At RF=1 a dead shard's keys are genuinely gone — the audit
        must say so rather than paper over it."""
        c = build(num_shards=3, replication_factor=1)
        preload(c, 400, num_threads=2, seed=1)
        res = run_cluster_workload(
            c, SPEC_A, 900, 400, clients_per_shard=2, seed=2,
            kill_plan=KillPlan(shard_id=0, at_fraction=0.5),
        )
        assert res.audit["lost_acked"] > 0

    def test_kill_plan_validation(self):
        with pytest.raises(ValueError):
            KillPlan(shard_id=0, at_fraction=0.0)
        with pytest.raises(ValueError):
            KillPlan(shard_id=0, at_fraction=1.0)


class TestBitIdentity:
    def test_one_shard_cluster_matches_bare_prism(self):
        """The acceptance gate: a 1-shard RF=1 cluster driven by the
        standard benchmark runner is bit-identical to the same Prism
        driven directly — same virtual duration, same latency
        distribution, same write amplification."""
        spec = WorkloadSpec(name="B", read=0.95, update=0.05)

        def run(store):
            preload(store, 300, num_threads=2, seed=1)
            return run_workload(store, spec, 500, 300, num_threads=4, seed=2)

        via_cluster = run(
            PrismCluster(
                ClusterConfig(num_shards=1, replication_factor=1),
                shard_factory=small_factory,
            )
        )
        direct = run(
            Prism(
                small_prism_config(faults=FaultConfig(seed=9000)),
                metrics=MetricsRegistry(prefix="shard0/"),
            )
        )
        assert via_cluster.duration == direct.duration
        assert via_cluster.latency.average() == direct.latency.average()
        assert via_cluster.latency.median() == direct.latency.median()
        assert via_cluster.latency.p99() == direct.latency.p99()
        assert via_cluster.waf == direct.waf
        for kind in direct.per_kind:
            assert (
                via_cluster.per_kind[kind].average()
                == direct.per_kind[kind].average()
            )
