"""Live resharding: minimal movement, dual-read window, crash safety.

The elasticity contract under test:

* membership changes move *only* keys whose owner set changed
  (Hypothesis-tested on the pure planner);
* reads and writes stay correct throughout the migration window
  (forwarded reads from old owners, redirected writes to new owners),
  and the :class:`WriteLedger` audit stays green across concurrent
  put/delete traffic mid-migration;
* a draining shard rejects new writes with a typed error the router
  recovers from, while reads and migration traffic pass;
* shard death at any point of the migration resolves it — abort with
  resync when the joining member dies, fast-forward otherwise — with
  zero lost acknowledged writes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.admission import (
    KIND_INTERNAL,
    KIND_READ,
    KIND_WRITE,
    AdmissionController,
)
from repro.cluster.crash_sweep import (
    RebalanceCrashSweep,
    default_cluster_factory,
)
from repro.cluster.errors import RebalanceInProgressError, ShardDrainingError
from repro.cluster.health import HealthConfig, HealthMonitor
from repro.cluster.rebalance import plan_moves
from repro.cluster.ring import (
    DuplicateShardError,
    HashRing,
    LastShardError,
    UnknownShardError,
)
from repro.cluster.runner import (
    RebalancePlan,
    WriteLedger,
    run_cluster_workload,
)
from repro.cluster.shard import STATE_DRAINING, STATE_RETIRED
from repro.faults.crash_sweep import default_ops
from repro.obs.metrics import EventLog, MetricsRegistry
from repro.sim.vthread import VThread
from repro.workloads.ycsb import WorkloadSpec

KEYS = [b"key-%05d" % i for i in range(300)]

shard_sets = st.sets(st.integers(min_value=0, max_value=15), min_size=2, max_size=6)


def small_cluster():
    """The tight 3-shard RF=2 quorum cluster the crash sweep uses."""
    return default_cluster_factory()


def fill(cluster, keys, prefix=b"v0-"):
    t = VThread(1, cluster.clock, name="client")
    for k in keys:
        cluster.put(k, prefix + k, t)
    return t


# ----------------------------------------------------------------------
# ring membership edge cases (typed errors, drain-time preference lists)
# ----------------------------------------------------------------------
class TestRingMembership:
    def test_remove_last_shard_refused(self):
        ring = HashRing([3])
        with pytest.raises(LastShardError):
            ring.remove_shard(3)
        with pytest.raises(LastShardError):
            ring.with_shard_removed(3)
        assert ring.shards == {3}  # untouched after the refusal

    def test_remove_unknown_shard_typed(self):
        ring = HashRing([0, 1])
        with pytest.raises(UnknownShardError):
            ring.remove_shard(7)
        with pytest.raises(UnknownShardError):
            ring.with_shard_removed(7)

    def test_add_duplicate_typed(self):
        ring = HashRing([0, 1])
        with pytest.raises(DuplicateShardError):
            ring.add_shard(1)

    def test_with_methods_leave_original_untouched(self):
        ring = HashRing([0, 1, 2])
        grown = ring.with_shard_added(3)
        shrunk = ring.with_shard_removed(2)
        assert ring.shards == {0, 1, 2}
        assert grown.shards == {0, 1, 2, 3}
        assert shrunk.shards == {0, 1}
        # Same (members, vnodes, seed) → same placement as in-place.
        inplace = HashRing([0, 1, 2])
        inplace.add_shard(3)
        assert all(grown.lookup(k) == inplace.lookup(k) for k in KEYS)

    def test_preference_lists_valid_when_rf_exceeds_survivors(self):
        """Mid-drain a ring can have fewer members than the replica
        count; preference lists must shrink, never pad or raise."""
        ring = HashRing([0, 1, 2]).with_shard_removed(2)
        for key in KEYS[:50]:
            prefs = ring.preference_list(key, 3)
            assert len(prefs) == 2
            assert len(set(prefs)) == 2
        # And excluding one of the two survivors leaves exactly one.
        for key in KEYS[:20]:
            assert len(ring.preference_list(key, 3, exclude={0})) == 1

    def test_owned_ranges_partition_matches_lookup(self):
        """Every key position falls in exactly one member's arc, and
        that member is the lookup() owner — the cutover units tile the
        ring."""
        ring = HashRing([0, 1, 2, 3], vnodes=16)
        arcs = {sid: ring.owned_ranges(sid) for sid in ring.shards}
        for key in KEYS:
            pos = ring.key_position(key)
            holders = [
                sid
                for sid, ranges in arcs.items()
                for arc in ranges
                if HashRing.position_in_range(pos, arc)
            ]
            assert holders == [ring.lookup(key)]

    def test_owned_ranges_unknown_shard(self):
        with pytest.raises(UnknownShardError):
            HashRing([0]).owned_ranges(9)


# ----------------------------------------------------------------------
# the planner: minimal movement, property-tested
# ----------------------------------------------------------------------
class TestPlanMoves:
    @settings(max_examples=25, deadline=None)
    @given(shards=shard_sets, new=st.integers(min_value=16, max_value=20))
    def test_add_moves_only_changed_owners(self, shards, new):
        """The tentpole property: growing the ring plans a move for a
        key iff its preference list changed, and every new copy target
        is the joining shard."""
        old = HashRing(shards)
        grown = old.with_shard_added(new)
        rf = min(2, len(shards))
        moves = plan_moves(old, grown, KEYS, rf)
        for key in KEYS:
            before = tuple(old.preference_list(key, rf))
            after = tuple(grown.preference_list(key, rf))
            if before == after:
                assert key not in moves
            else:
                spec = moves[key]
                assert spec.old_owners == before
                assert spec.new_owners == after
                assert set(spec.targets) == {new}
                assert new not in spec.drop

    @settings(max_examples=25, deadline=None)
    @given(shards=shard_sets)
    def test_remove_moves_only_victims_keys(self, shards):
        victim = min(shards)
        old = HashRing(shards)
        shrunk = old.with_shard_removed(victim)
        rf = min(2, len(shards) - 1)
        moves = plan_moves(old, shrunk, KEYS, rf)
        for key, spec in moves.items():
            # Only keys the victim (co-)owned move, and it never
            # appears among the new owners.
            assert victim in spec.old_owners
            assert victim not in spec.new_owners
            assert victim not in spec.targets

    def test_identical_rings_plan_nothing(self):
        ring = HashRing([0, 1, 2])
        assert plan_moves(ring, HashRing([0, 1, 2]), KEYS, 2) == {}


# ----------------------------------------------------------------------
# draining admission
# ----------------------------------------------------------------------
class TestDrainAdmission:
    def test_drain_rejects_writes_only(self):
        ctrl = AdmissionController(0)
        ctrl.start_drain()
        with pytest.raises(ShardDrainingError) as err:
            ctrl.admit(0.0, KIND_WRITE)
        assert err.value.shard_id == 0
        ctrl.admit(0.0, KIND_READ)  # the dual-read window needs reads
        ctrl.admit(0.0, KIND_INTERNAL)  # migration traffic passes
        assert ctrl.drain_rejects == 1
        ctrl.stop_drain()
        ctrl.admit(0.0, KIND_WRITE)

    def test_drain_gate_precedes_load_shedding(self):
        """Draining rejection is typed, not an overload shed, even on
        a rate-limited shard."""
        ctrl = AdmissionController(0, rate=1.0, burst=1.0)
        ctrl.start_drain()
        with pytest.raises(ShardDrainingError):
            ctrl.admit(0.0, KIND_WRITE)
        assert ctrl.shed_rate == 0

    def test_router_retries_write_at_next_owner(self):
        """An operator-drained primary sheds the write; the router's
        retry promotes the key's next ring owner."""
        cluster = small_cluster()
        t = fill(cluster, KEYS[:40])
        # Pick a key whose primary is shard 0, then drain shard 0
        # directly (no migration — the raw retry path).
        key = next(k for k in KEYS[:40] if cluster.ring.lookup(k) == 0)
        cluster.shards[0].start_drain()
        cluster.put(key, b"after-drain", t)
        assert cluster.metrics.counter("rebalance.drain_rejects").value >= 1
        # The write landed on live non-draining owners.
        prefs = cluster.ring.preference_list(key, 2, exclude={0})
        got = cluster.shards[prefs[0]].store.get(key, t)
        assert got == b"after-drain"
        cluster.shards[0].retire()


# ----------------------------------------------------------------------
# health-scorer exemption
# ----------------------------------------------------------------------
class TestHealthExemption:
    def _monitor(self):
        return HealthMonitor(
            2, HealthConfig(), MetricsRegistry(), EventLog("t")
        )

    def test_register_adds_new_member(self):
        mon = self._monitor()
        mon.register(5)
        mon.record_read(5, 0.001, 1.0)  # must not raise

    def test_exempt_shard_records_nothing(self):
        mon = self._monitor()
        mon.record_read(0, 0.001, 1.0)
        baseline = mon.shards[0].samples
        mon.set_exempt(0, True)
        mon.record_read(0, 10.0, 2.0)  # a horrible migration read
        mon.record_failure(0, 3.0)
        assert mon.shards[0].samples == baseline
        mon.set_exempt(0, False)
        mon.record_read(0, 0.001, 4.0)
        assert mon.shards[0].samples == baseline + 1


# ----------------------------------------------------------------------
# live add/remove under traffic
# ----------------------------------------------------------------------
class TestLiveResharding:
    def test_add_shard_serves_correctly_throughout(self):
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        sid = cluster.add_shard(bandwidth=64 * 1024)
        assert sid == 3
        assert cluster.rebalancing
        for i, k in enumerate(KEYS):
            if i % 3 == 0:
                cluster.put(k, b"v1-" + k, t)
            want = (b"v1-" if i % 3 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want
        cluster.finish_rebalance()
        assert not cluster.rebalancing
        assert sorted(cluster.ring.shards) == [0, 1, 2, 3]
        for i, k in enumerate(KEYS):
            want = (b"v1-" if i % 3 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want
        assert len(cluster) == len(KEYS)
        moved = cluster.metrics.counter("rebalance.keys_moved").value
        forwarded = cluster.metrics.counter("rebalance.forwarded_reads").value
        assert moved > 0 and forwarded > 0
        assert cluster.events.of_kind("rebalance_done")
        assert cluster.events.of_kind("range_cutover")

    def test_remove_shard_drains_and_retires(self):
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        cluster.remove_shard(0, bandwidth=64 * 1024)
        assert cluster.shards[0].state == STATE_DRAINING
        for i, k in enumerate(KEYS):
            if i % 4 == 0:
                cluster.put(k, b"v1-" + k, t)
            want = (b"v1-" if i % 4 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want
        cluster.finish_rebalance()
        assert cluster.shards[0].state == STATE_RETIRED
        assert sorted(cluster.ring.shards) == [1, 2]
        for i, k in enumerate(KEYS):
            want = (b"v1-" if i % 4 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want
        assert len(cluster) == len(KEYS)

    def test_only_one_migration_at_a_time(self):
        cluster = small_cluster()
        fill(cluster, KEYS[:50])
        cluster.add_shard(bandwidth=1024)
        with pytest.raises(RebalanceInProgressError):
            cluster.add_shard()
        with pytest.raises(RebalanceInProgressError):
            cluster.remove_shard(0)
        cluster.finish_rebalance()

    def test_remove_down_shard_refused(self):
        cluster = small_cluster()
        fill(cluster, KEYS[:50])
        cluster.kill_shard(0)
        with pytest.raises(ValueError):
            cluster.remove_shard(0)

    def test_scan_spans_the_dual_read_window(self):
        cluster = small_cluster()
        t = fill(cluster, KEYS[:60])
        cluster.remove_shard(0, bandwidth=32 * 1024)
        got = dict(cluster.scan(KEYS[0], 30, t))
        assert got == {k: b"v0-" + k for k in KEYS[:30]}
        cluster.finish_rebalance()


# ----------------------------------------------------------------------
# crash safety: deaths mid-migration
# ----------------------------------------------------------------------
class TestCrashDuringMigration:
    def test_target_death_aborts_and_resyncs(self):
        """The joining shard dies: routing reverts to the old ring and
        migration-window writes (acked at the *new* owners) are pushed
        back to the old owners — none may be lost."""
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        sid = cluster.add_shard(bandwidth=16 * 1024)
        for i, k in enumerate(KEYS):
            if i % 4 == 0:
                cluster.put(k, b"v1-" + k, t)
        cluster.kill_shard(sid)
        assert not cluster.rebalancing
        assert sorted(cluster.ring.shards) == [0, 1, 2]
        assert cluster.metrics.counter("rebalance.aborted").value == 1
        for i, k in enumerate(KEYS):
            want = (b"v1-" if i % 4 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want

    def test_source_death_fast_forwards(self):
        """An old owner dies mid-stream: the handoff completes
        immediately and the rebuild restores RF on the new ring."""
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        cluster.add_shard(bandwidth=16 * 1024)
        for i, k in enumerate(KEYS):
            if i % 4 == 0:
                cluster.put(k, b"v1-" + k, t)
        cluster.kill_shard(0)
        assert not cluster.rebalancing
        assert sorted(cluster.ring.shards) == [0, 1, 2, 3]
        for i, k in enumerate(KEYS):
            want = (b"v1-" if i % 4 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want

    def test_draining_shard_death_mid_scale_in(self):
        """The leaving shard dies before its handoff finishes; its
        remaining keys stream from the surviving replica copies."""
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        cluster.remove_shard(0, bandwidth=16 * 1024)
        for i, k in enumerate(KEYS):
            if i % 4 == 0:
                cluster.put(k, b"v1-" + k, t)
        cluster.kill_shard(0)
        assert not cluster.rebalancing
        assert sorted(cluster.ring.shards) == [1, 2]
        for i, k in enumerate(KEYS):
            want = (b"v1-" if i % 4 == 0 else b"v0-") + k
            assert cluster.get(k, t) == want


# ----------------------------------------------------------------------
# ledger audit across the migration window
# ----------------------------------------------------------------------
class TestLedgerMidMigration:
    def test_concurrent_put_delete_audit_clean(self):
        """Interleaved puts and deletes while the migrator streams: the
        ledger audit must find every acked mutation's final value legal
        — no lost acked writes, no resurrected deletes."""
        cluster = small_cluster()
        t = fill(cluster, KEYS)
        ledger = WriteLedger()
        for k in KEYS:
            ledger.ack(k, 0.0, t.now, b"v0-" + k)
        cluster.add_shard(bandwidth=32 * 1024)
        for i, k in enumerate(KEYS):
            start = t.now
            if i % 3 == 0:
                cluster.put(k, b"v1-" + k, t)
                ledger.ack(k, start, t.now, b"v1-" + k)
            elif i % 3 == 1:
                cluster.delete(k, t)
                ledger.ack(k, start, t.now, None)
        cluster.finish_rebalance()
        report = ledger.audit(cluster, t)
        assert report["lost_acked"] == 0
        assert report["wrong_value"] == 0
        assert report["keys_checked"] == len(KEYS)

    def test_workload_rebalance_plan_audit_clean(self):
        """The scale-out-mid-run experiment shape, tiny: YCSB-A with a
        RebalancePlan; the built-in audit must come back green and the
        migration outcome recorded."""
        cluster = small_cluster()
        spec = WorkloadSpec(name="A-uni", read=0.5, update=0.5,
                            distribution="uniform")
        result = run_cluster_workload(
            cluster, spec, 600, 120, clients_per_shard=2, value_size=64,
            seed=11,
            rebalance_plan=RebalancePlan(
                action="add", at_fraction=0.3, bandwidth=32 * 1024
            ),
        )
        assert result.audit["lost_acked"] == 0
        assert result.audit["wrong_value"] == 0
        assert result.rebalanced_shard == 3
        assert result.rebalance["completed"] and not result.rebalance["aborted"]
        assert result.rebalance["time_to_rebalance"] > 0
        counters = result.run.metrics["counters"]
        assert counters["rebalance.keys_moved"] > 0
        gauges = result.run.metrics["gauges"]
        assert "rebalance.cutover_seconds" in gauges
        assert "rebalance.time_to_rebalance_seconds" in gauges


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_identical_reshards_are_bit_identical(self):
        """Two identical runs with a mid-stream add land on the same
        virtual-time instant and the same counters."""

        def one():
            cluster = small_cluster()
            t = fill(cluster, KEYS[:120])
            cluster.add_shard(bandwidth=32 * 1024)
            for i, k in enumerate(KEYS[:120]):
                if i % 3 == 0:
                    cluster.put(k, b"v1-" + k, t)
                cluster.get(k, t)
            cluster.finish_rebalance()
            moved = cluster.metrics.counter("rebalance.keys_moved").value
            return repr(t.now), moved

        assert one() == one()


# ----------------------------------------------------------------------
# crash sweep + bench gates (slow: full replay matrices)
# ----------------------------------------------------------------------
@pytest.mark.slow_rebalance
class TestRebalanceSweep:
    @pytest.mark.parametrize("role", RebalanceCrashSweep.ROLES)
    def test_sweep_role_passes(self, role):
        sweep = RebalanceCrashSweep(
            ops=default_ops(160, 40, 7), role=role
        )
        report = sweep.run()
        assert report.labels, "no crash labels reached inside the window"
        assert report.ok, report.summary()


@pytest.mark.slow_rebalance
class TestBenchGates:
    def test_rebalance_gates_pass_smoke(self):
        from repro.bench.rebalance import check_rebalance, cluster_rebalance

        results = cluster_rebalance(
            num_keys=1000, num_ops=2400, clients_per_shard=2,
            bandwidth=64 * 1024,
        )
        for label, res in results.items():
            ok, msg = check_rebalance(res)
            assert ok, f"{label}: {msg}"
