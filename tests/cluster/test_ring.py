"""Consistent-hash ring: placement, stability, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import HashRing

KEYS = [b"key-%05d" % i for i in range(400)]

shard_sets = st.sets(st.integers(min_value=0, max_value=31), min_size=2, max_size=8)


class TestLookup:
    def test_lookup_is_deterministic_across_instances(self):
        """Two independently built rings agree on every key — placement
        depends only on (members, vnodes, seed), never process state."""
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 2, 1, 0])  # insertion order must not matter
        for key in KEYS:
            assert a.lookup(key) == b.lookup(key)

    def test_lookup_returns_member(self):
        ring = HashRing([4, 7, 9])
        for key in KEYS:
            assert ring.lookup(key) in {4, 7, 9}

    def test_empty_ring_raises(self):
        # remove_shard refuses to empty the ring, so build it empty.
        ring = HashRing([])
        with pytest.raises(ValueError):
            ring.lookup(b"k")

    def test_balance_is_reasonable(self):
        """With enough vnodes no shard owns a wildly outsized share."""
        ring = HashRing(range(4), vnodes=64)
        counts = ring.ownership_histogram([b"key-%05d" % i for i in range(4000)])
        assert min(counts.values()) > 0
        assert max(counts.values()) < 3 * (4000 // 4)

    def test_seed_changes_placement(self):
        a = HashRing([0, 1, 2, 3], seed=0)
        b = HashRing([0, 1, 2, 3], seed=1)
        assert any(a.lookup(k) != b.lookup(k) for k in KEYS)


class TestPreferenceList:
    def test_distinct_and_primary_first(self):
        ring = HashRing(range(5))
        for key in KEYS[:50]:
            prefs = ring.preference_list(key, 3)
            assert len(prefs) == len(set(prefs)) == 3
            assert prefs[0] == ring.lookup(key)

    def test_exclude_promotes_next_shard(self):
        """Excluding the primary yields the old list minus the primary,
        extended by the next live shard — the failover promotion rule."""
        ring = HashRing(range(5))
        for key in KEYS[:50]:
            before = ring.preference_list(key, 3)
            after = ring.preference_list(key, 3, exclude={before[0]})
            assert before[0] not in after
            assert after[:2] == before[1:3]

    def test_want_capped_by_available(self):
        ring = HashRing([0, 1])
        assert len(ring.preference_list(b"k", 5)) == 2
        assert ring.preference_list(b"k", 5, exclude={0, 1}) == []


class TestStability:
    """The consistent-hashing contract, property-tested: membership
    changes only re-map keys whose owner actually changed."""

    @settings(max_examples=30, deadline=None)
    @given(shards=shard_sets, new=st.integers(min_value=32, max_value=40))
    def test_add_only_remaps_to_new_shard(self, shards, new):
        ring = HashRing(shards)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add_shard(new)
        for key, owner in before.items():
            after = ring.lookup(key)
            # A key either kept its owner or moved to the new member —
            # never from one old shard to another.
            assert after == owner or after == new

    @settings(max_examples=30, deadline=None)
    @given(shards=shard_sets)
    def test_remove_only_remaps_orphans(self, shards):
        victim = min(shards)
        ring = HashRing(shards)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove_shard(victim)
        for key, owner in before.items():
            if owner != victim:
                assert ring.lookup(key) == owner

    @settings(max_examples=30, deadline=None)
    @given(shards=shard_sets, new=st.integers(min_value=32, max_value=40))
    def test_add_then_remove_roundtrips(self, shards, new):
        ring = HashRing(shards)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add_shard(new)
        ring.remove_shard(new)
        assert {key: ring.lookup(key) for key in KEYS} == before

    @settings(max_examples=30, deadline=None)
    @given(shards=shard_sets)
    def test_exclude_equals_removal(self, shards):
        """Routing around a down shard (exclude) must place keys exactly
        where an actual membership change would."""
        victim = max(shards)
        ring = HashRing(shards)
        shrunk = HashRing(shards - {victim})
        for key in KEYS[:100]:
            assert (
                ring.preference_list(key, 2, exclude={victim})
                == shrunk.preference_list(key, 2)
            )

    def test_membership_errors(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add_shard(0)
        with pytest.raises(ValueError):
            ring.remove_shard(5)
