"""Health scoring, gray verdicts, circuit breakers, hedge delay."""

import pytest

from repro.cluster.health import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)
from repro.obs.metrics import MetricsRegistry

US = 1e-6


def _config(**kw):
    defaults = dict(min_samples=4, open_after=2, reset_timeout=1e-3,
                    probe_successes=2)
    defaults.update(kw)
    return HealthConfig(**defaults)


def _warm(monitor, healthy_shards, latency=50 * US, n=None, at=0.0):
    """Feed ``n`` healthy samples to each listed shard."""
    n = n if n is not None else monitor.config.min_samples
    for _ in range(n):
        for sid in healthy_shards:
            monitor.record_read(sid, latency, at)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthConfig(gray_factor=1.0)
        with pytest.raises(ValueError):
            HealthConfig(hedge_quantile=1.0)
        with pytest.raises(ValueError):
            HealthConfig(op_deadline=0.0)


class TestCircuitBreaker:
    def test_closed_to_open_after_gray_streak(self):
        metrics = MetricsRegistry()
        b = CircuitBreaker(0, _config(), metrics)
        b.on_verdict(True, at=1.0)
        assert b.state == STATE_CLOSED
        b.on_verdict(True, at=2.0)
        assert b.state == STATE_OPEN
        assert metrics.counter("breaker.opened").value == 1

    def test_healthy_verdict_resets_streak(self):
        b = CircuitBreaker(0, _config())
        b.on_verdict(True, at=1.0)
        b.on_verdict(False, at=2.0)
        b.on_verdict(True, at=3.0)
        assert b.state == STATE_CLOSED

    def test_open_blocks_until_reset_timeout(self):
        b = CircuitBreaker(0, _config())
        b.trip(at=1.0)
        assert not b.allow(at=1.0005)  # inside reset_timeout
        assert b.allow(at=1.002)  # timeout elapsed: half-open probe
        assert b.state == STATE_HALF_OPEN

    def test_half_open_closes_after_probe_successes(self):
        metrics = MetricsRegistry()
        b = CircuitBreaker(0, _config(), metrics)
        b.trip(at=0.0)
        b.allow(at=2e-3)
        b.on_verdict(False, at=2e-3)
        assert b.state == STATE_HALF_OPEN  # one probe is not enough
        b.on_verdict(False, at=3e-3)
        assert b.state == STATE_CLOSED
        assert metrics.counter("breaker.closed").value == 1

    def test_half_open_gray_probe_reopens(self):
        b = CircuitBreaker(0, _config())
        b.trip(at=0.0)
        b.allow(at=2e-3)
        b.on_verdict(True, at=2e-3)
        assert b.state == STATE_OPEN
        assert b.opened_at == 2e-3  # the reset clock restarts


class TestHealthMonitor:
    def test_gray_when_score_exceeds_peer_median(self):
        m = HealthMonitor(3, _config())
        _warm(m, (0, 1), n=8)
        _warm(m, (2,), latency=500 * US, n=8)
        assert m.is_gray(2)
        assert not m.is_gray(0)

    def test_cluster_wide_slowdown_is_not_gray(self):
        m = HealthMonitor(3, _config())
        _warm(m, (0, 1, 2), latency=500 * US, n=8)
        assert not any(m.is_gray(sid) for sid in range(3))

    def test_no_verdict_before_min_samples(self):
        m = HealthMonitor(2, _config())
        m.record_read(0, 500 * US, at=0.0)
        assert not m.is_gray(0)
        assert m.breakers[0].gray_streak == 0

    def test_gray_shard_opens_its_breaker(self):
        m = HealthMonitor(3, _config())
        _warm(m, (0, 1), n=8)
        for _ in range(8):
            m.record_read(2, 500 * US, at=1.0)
        assert m.breakers[2].state == STATE_OPEN
        assert not m.allow(2, at=1.0)
        assert m.allow(0, at=1.0)

    def test_recovered_shard_closes_via_probes(self):
        cfg = _config()
        m = HealthMonitor(3, cfg)
        _warm(m, (0, 1), n=8)
        for _ in range(8):
            m.record_read(2, 500 * US, at=1.0)
        assert m.breakers[2].state == STATE_OPEN
        at = 1.0 + 2 * cfg.reset_timeout
        assert m.allow(2, at)  # half-opens
        # Healthy probe latencies close it (per-sample verdicts).
        for i in range(cfg.probe_successes):
            m.record_read(2, 50 * US, at + i * US)
        assert m.breakers[2].state == STATE_CLOSED

    def test_failure_counts_as_gray_evidence(self):
        m = HealthMonitor(2, _config())
        m.record_failure(0, at=0.0)
        m.record_failure(0, at=1.0)
        assert m.breakers[0].state == STATE_OPEN

    def test_enable_breaker_false_never_blocks(self):
        m = HealthMonitor(3, _config(enable_breaker=False))
        _warm(m, (0, 1), n=8)
        for _ in range(8):
            m.record_read(2, 500 * US, at=1.0)
        assert m.allow(2, at=1.0)
        assert m.breakers[2].state == STATE_CLOSED


class TestHedgeDelay:
    def test_infinite_until_warm(self):
        m = HealthMonitor(2, _config())
        assert m.hedge_delay() == float("inf")

    def test_tracks_quantile_with_median_cap_and_floor(self):
        cfg = _config(hedge_min_delay=10 * US, hedge_median_cap=3.0)
        m = HealthMonitor(2, cfg)
        # 64 samples at 50us: p95 == median == 50us -> delay 50us.
        _warm(m, (0, 1), latency=50 * US, n=32)
        assert m.hedge_delay() == pytest.approx(50 * US)
        # Pollute with a gray tail: the cap keeps the delay anchored
        # at 3x the (healthy) median instead of chasing the p95.
        for _ in range(40):
            m.record_read(1, 500 * US, at=1.0)
        assert m.hedge_delay() <= 3.0 * 50 * US + 1e-12

    def test_floor_applies(self):
        cfg = _config(hedge_min_delay=100 * US)
        m = HealthMonitor(2, cfg)
        _warm(m, (0, 1), latency=1 * US, n=32)
        assert m.hedge_delay() == pytest.approx(100 * US)


class TestSnapshotAndMetrics:
    def test_snapshot_reports_scores_and_states(self):
        m = HealthMonitor(2, _config())
        _warm(m, (0, 1), n=4)
        snap = m.snapshot()
        assert snap["shard0"]["breaker"] == STATE_CLOSED
        assert snap["shard0"]["score_us"] == pytest.approx(50.0)

    def test_set_metrics_rebinds_breakers(self):
        m = HealthMonitor(2, _config())
        fresh = MetricsRegistry()
        m.set_metrics(fresh)
        m.breakers[0].trip(at=0.0)
        assert fresh.counter("breaker.opened").value == 1
