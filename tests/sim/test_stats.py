import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import LatencyRecorder, Timeline


class TestLatencyRecorder:
    def test_empty(self):
        rec = LatencyRecorder()
        assert rec.average() == 0.0
        assert rec.median() == 0.0
        assert rec.p99() == 0.0
        assert len(rec) == 0

    def test_single_sample_microseconds(self):
        rec = LatencyRecorder()
        rec.record(5e-6)
        assert rec.average() == pytest.approx(5.0)
        assert rec.median() == pytest.approx(5.0)

    def test_percentile_interpolation(self):
        rec = LatencyRecorder()
        for v in (1e-6, 2e-6, 3e-6, 4e-6):
            rec.record(v)
        assert rec.percentile(50) == pytest.approx(2.5)
        assert rec.percentile(0) == pytest.approx(1.0)
        assert rec.percentile(100) == pytest.approx(4.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_percentile_out_of_range(self):
        rec = LatencyRecorder()
        rec.record(1e-6)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record(1e-6)
        summary = rec.summary()
        assert set(summary) == {"count", "avg_us", "p50_us", "p99_us"}

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=200))
    def test_percentiles_are_monotone(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        # tolerance: interpolation of equal samples can differ by 1 ulp
        assert rec.percentile(10) <= rec.percentile(50) + 1e-9
        assert rec.percentile(50) <= rec.percentile(99) + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=200))
    def test_average_within_range(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        lo = rec.percentile(0)
        hi = rec.percentile(100)
        assert lo - 1e-9 <= rec.average() <= hi + 1e-9


class TestTimeline:
    def test_bucketing(self):
        tl = Timeline(bucket_seconds=1.0)
        tl.record(0.5)
        tl.record(0.9)
        tl.record(1.1)
        assert tl.series() == [2.0, 1.0]

    def test_rate_scaling(self):
        tl = Timeline(bucket_seconds=0.5)
        tl.record(0.1)
        assert tl.series() == [2.0]  # 1 op / 0.5 s

    def test_empty_series(self):
        assert Timeline().series() == []

    def test_marks(self):
        tl = Timeline(bucket_seconds=1.0)
        tl.mark(2.5, "gc")
        assert tl.events[2] == ["gc"]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            Timeline(bucket_seconds=0)

    def test_min_over_max_stability(self):
        tl = Timeline(bucket_seconds=1.0)
        for t in (0.1, 0.2, 1.1, 1.2, 2.1, 2.2, 3.5):
            tl.record(t)
        # interior buckets are all 2 ops -> perfectly stable
        assert tl.min_over_max() == pytest.approx(1.0)

    def test_series_until(self):
        tl = Timeline(bucket_seconds=1.0)
        tl.record(0.5)
        assert len(tl.series(until=4.0)) == 5
