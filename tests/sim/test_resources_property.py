"""Property tests for :class:`BandwidthChannel` edge cases.

The channel is the hottest function in the simulator and carries a
fast path (arrival bucket absorbs the whole transfer), a saturation
skip (``_full_floor``), and a pruning scheme (``PRUNE_WINDOW`` /
``_PRUNE_TRIGGER``).  These tests pin the invariants those shortcuts
must preserve:

* completion never beats line rate, and capacity per bucket is never
  exceeded;
* requests stamped *earlier* than previously seen traffic still reuse
  leftover capacity from their own time (out-of-order arrival);
* the ``_full_floor`` skip is invisible: a saturated channel produces
  the same completion times as a fresh channel replaying the same
  post-saturation traffic would if it had walked every full bucket;
* pruning only forgets buckets older than ``PRUNE_WINDOW``, so results
  within the window are unchanged by when pruning triggers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.resources import BandwidthChannel

BW = 1e9  # 1 GB/s
BUCKET = 10e-6  # => 10 KB capacity per bucket


def _fresh():
    return BandwidthChannel(BW, bucket=BUCKET)


sizes = st.integers(min_value=1, max_value=200_000)
offsets = st.floats(min_value=0.0, max_value=5e-3,
                    allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(requests=st.lists(st.tuples(offsets, sizes), min_size=1, max_size=60))
def test_never_beats_line_rate_and_capacity(requests):
    ch = _fresh()
    for at, nbytes in requests:
        end = ch.request(at, nbytes)
        assert end >= at + nbytes / ch.bandwidth - 1e-15
    # No bucket ever exceeds its capacity.
    assert all(used <= ch._capacity + 1e-6 for used in ch._used.values())


@settings(max_examples=100, deadline=None)
@given(
    early_at=st.floats(min_value=0.0, max_value=40e-6,
                       allow_nan=False, allow_infinity=False),
    early_bytes=st.integers(min_value=1, max_value=5_000),
    late_bucket=st.integers(min_value=8, max_value=40),
)
def test_out_of_order_arrival_reuses_leftover_capacity(
    early_at, early_bytes, late_bucket
):
    """Background work stamped in the past must drain capacity from
    its own (partially used) bucket, not queue behind newer traffic."""
    ch = _fresh()
    # Newer traffic first: a large transfer far in the future.
    ch.request(late_bucket * BUCKET, 9_000)
    # Now an out-of-order request in the past.  Its own buckets are
    # untouched by the later traffic, so it must complete exactly as
    # it would on an idle channel — bit-identical, not merely close.
    end = ch.request(early_at, early_bytes)
    assert repr(end) == repr(_fresh().request(early_at, early_bytes))
    assert end >= early_at + early_bytes / ch.bandwidth - 1e-15


@settings(max_examples=60, deadline=None)
@given(
    storm=st.integers(min_value=5, max_value=40),
    tail=st.lists(sizes, min_size=1, max_size=20),
)
def test_full_floor_skip_matches_bucket_walk(storm, tail):
    """Saturate one channel (raising ``_full_floor``), then replay the
    same tail traffic on a fresh channel pre-filled bucket by bucket
    without the skip.  Completions must be bit-identical."""
    fast = _fresh()
    # Saturating storm: every request at t=0 drains buckets in order.
    for _ in range(storm):
        fast.request(0.0, 25_000)
    assert fast._full_floor > 0  # the skip is actually engaged
    # Mirror channel: same bucket usage, but _full_floor left at zero
    # so every request re-walks the full backlog.
    slow = _fresh()
    slow._used = dict(fast._used)
    assert slow._full_floor == 0
    for nbytes in tail:
        assert repr(fast.request(0.0, nbytes)) == repr(
            slow.request(0.0, nbytes)
        )


@settings(max_examples=40, deadline=None)
@given(
    n_old=st.integers(min_value=1, max_value=30),
    recent=st.lists(st.tuples(st.integers(min_value=0, max_value=100), sizes),
                    min_size=1, max_size=30),
)
def test_prune_preserves_results_within_window(n_old, recent):
    """Force a prune, then check traffic inside PRUNE_WINDOW of the
    newest bucket completes exactly as on an unpruned channel."""
    window_buckets = int(BandwidthChannel.PRUNE_WINDOW / BUCKET)
    now_bucket = 10 * window_buckets
    pruned = _fresh()
    plain = _fresh()
    # Ancient traffic: far outside the window relative to now_bucket.
    for i in range(n_old):
        for ch in (pruned, plain):
            ch.request(i * BUCKET, 4_000)
    # Trigger pruning on one channel only (prune keeps >= cutoff).
    pruned._prune(now_bucket)
    assert all(i >= now_bucket - window_buckets for i in pruned._used)
    # Fresh traffic within the window of now_bucket: identical results.
    base = (now_bucket - window_buckets // 2) * BUCKET
    for bucket_off, nbytes in recent:
        at = base + bucket_off * BUCKET
        assert repr(pruned.request(at, nbytes)) == repr(
            plain.request(at, nbytes)
        )


def test_prune_trigger_threshold():
    """The map is bounded: exceeding _PRUNE_TRIGGER distinct buckets
    prunes everything older than PRUNE_WINDOW behind the newest."""
    ch = _fresh()
    trigger = BandwidthChannel._PRUNE_TRIGGER
    # Touch more distinct buckets than the trigger.  Float rounding of
    # i * BUCKET occasionally collapses adjacent indices, so overshoot
    # by 20% to guarantee the map actually crosses the threshold.
    for i in range(int(trigger * 1.2)):
        ch.request(i * BUCKET, 1)
    assert ch._horizon > 0  # a prune fired
    assert len(ch._used) <= trigger + 1  # the map stays bounded
    # Requests older than the horizon are clamped forward, not lost.
    end = ch.request(0.0, 1_000)
    assert end >= ch._horizon * BUCKET
