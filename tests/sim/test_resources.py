import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.resources import BandwidthChannel, FIFOServer, VLock
from repro.sim.vthread import VThread


class TestFIFOServer:
    def test_serves_immediately_when_idle(self):
        server = FIFOServer()
        start, end = server.service(1.0, 0.5)
        assert (start, end) == (1.0, 1.5)

    def test_queues_behind_earlier_request(self):
        server = FIFOServer()
        server.service(0.0, 1.0)
        start, end = server.service(0.5, 1.0)
        assert (start, end) == (1.0, 2.0)

    def test_idle_gap_not_charged(self):
        server = FIFOServer()
        server.service(0.0, 1.0)
        start, _ = server.service(5.0, 1.0)
        assert start == 5.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            FIFOServer().service(0.0, -1.0)

    def test_utilization(self):
        server = FIFOServer()
        server.service(0.0, 2.0)
        assert server.utilization(4.0) == pytest.approx(0.5)
        assert server.utilization(0.0) == 0.0


class TestVLock:
    def test_uncontended_acquire_is_free(self):
        lock = VLock()
        t = VThread(0)
        t.spend(1e-6)
        lock.acquire(t)
        assert t.now == pytest.approx(1e-6)
        lock.release(t)
        assert lock.contended == 0

    def test_contended_acquire_waits(self):
        clock = VirtualClock()
        a, b = VThread(0, clock), VThread(1, clock)
        lock = VLock()
        lock.acquire(a)
        a.spend(5e-6)  # critical section
        lock.release(a)
        lock.acquire(b)  # b arrives at time 0, must wait for a
        assert b.now == pytest.approx(5e-6)
        assert lock.contended == 1
        lock.release(b)

    def test_double_acquire_raises(self):
        lock = VLock()
        t = VThread(0)
        lock.acquire(t)
        with pytest.raises(RuntimeError):
            lock.acquire(t)

    def test_release_by_non_owner_raises(self):
        lock = VLock()
        a, b = VThread(0), VThread(1)
        lock.acquire(a)
        with pytest.raises(RuntimeError):
            lock.release(b)

    def test_context_manager_unsupported(self):
        with pytest.raises(TypeError):
            VLock().__enter__()


class TestBandwidthChannel:
    def test_single_transfer_line_rate(self):
        ch = BandwidthChannel(1e9)
        end = ch.request(0.0, 1000)
        assert end == pytest.approx(1e-6)

    def test_latency_is_pipelined(self):
        ch = BandwidthChannel(1e9)
        e1 = ch.request(0.0, 1000, latency=50e-6)
        e2 = ch.request(0.0, 1000, latency=50e-6)
        # Both complete ~50us after their transfer; they do not
        # serialize on the latency.
        assert e1 < 52e-6
        assert e2 < 53e-6

    def test_saturation_pushes_completions_out(self):
        ch = BandwidthChannel(1e9, bucket=10e-6)  # 10 KB per bucket
        first = ch.request(0.0, 10_000)
        second = ch.request(0.0, 10_000)
        assert second > first
        assert second == pytest.approx(20e-6)

    def test_past_request_uses_past_capacity(self):
        ch = BandwidthChannel(1e9, bucket=10e-6)
        ch.request(100e-6, 5_000)
        early = ch.request(10e-6, 5_000)
        assert early < 20e-6

    def test_zero_bytes(self):
        ch = BandwidthChannel(1e9)
        assert ch.request(1.0, 0, latency=2e-6) == pytest.approx(1.0 + 2e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            BandwidthChannel(1e9).request(0.0, -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BandwidthChannel(0)
        with pytest.raises(ValueError):
            BandwidthChannel(1e9, lanes=0)
        with pytest.raises(ValueError):
            BandwidthChannel(1e9, bucket=0)

    def test_bytes_accounting(self):
        ch = BandwidthChannel(1e9)
        ch.request(0.0, 123)
        ch.request(0.0, 877)
        assert ch.bytes_moved == 1000

    def test_lanes_multiply_capacity(self):
        one = BandwidthChannel(1e9, lanes=1)
        two = BandwidthChannel(1e9, lanes=2)
        assert two.bandwidth == 2 * one.bandwidth

    @settings(max_examples=50, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e-2),
                st.integers(min_value=1, max_value=100_000),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_completion_never_beats_line_rate(self, requests):
        ch = BandwidthChannel(5e9)
        for at, nbytes in requests:
            end = ch.request(at, nbytes)
            assert end >= at + nbytes / ch.bandwidth - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=50_000), min_size=2, max_size=50)
    )
    def test_aggregate_throughput_bounded(self, sizes):
        """N bytes offered at t=0 cannot all finish before N/bandwidth."""
        ch = BandwidthChannel(1e9)
        last = max(ch.request(0.0, s) for s in sizes)
        total = sum(sizes)
        assert last >= total / ch.bandwidth - ch.bucket
