import pytest

from repro.sim.clock import VirtualClock
from repro.sim.vthread import VThread


def test_spend_advances_local_and_global_clock():
    clock = VirtualClock()
    t = VThread(0, clock)
    t.spend(1e-6)
    assert t.now == pytest.approx(1e-6)
    assert clock.now == pytest.approx(1e-6)
    assert t.cpu_time == pytest.approx(1e-6)


def test_negative_spend_rejected():
    t = VThread(0)
    with pytest.raises(ValueError):
        t.spend(-1.0)


def test_wait_until_only_moves_forward():
    t = VThread(0)
    t.wait_until(5.0)
    assert t.now == 5.0
    t.wait_until(1.0)
    assert t.now == 5.0


def test_wait_does_not_count_as_cpu():
    t = VThread(0)
    t.wait_until(1.0)
    assert t.cpu_time == 0.0


def test_threads_share_clock():
    clock = VirtualClock()
    a = VThread(0, clock)
    b = VThread(1, clock)
    a.spend(2e-6)
    assert clock.now == pytest.approx(2e-6)
    assert b.now == 0.0  # local clocks are independent


def test_fork_background_inherits_time():
    t = VThread(0)
    t.spend(1e-6)
    helper = t.fork_background("helper")
    assert helper.background
    assert helper.now == t.now
    assert helper.clock is t.clock


def test_new_thread_starts_at_private_clock_zero():
    t = VThread(3)
    assert t.now == 0.0
    assert not t.background
