from repro.sim.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_observe_advances():
    clock = VirtualClock()
    clock.observe(1.5)
    assert clock.now == 1.5


def test_observe_never_goes_backwards():
    clock = VirtualClock()
    clock.observe(2.0)
    clock.observe(1.0)
    assert clock.now == 2.0


def test_reset():
    clock = VirtualClock()
    clock.observe(3.0)
    clock.reset()
    assert clock.now == 0.0
