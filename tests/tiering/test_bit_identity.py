"""Tiering-off bit-identity against the pre-tiering seed.

The same golden file the read-cache PR froze: with
``enable_tiering=False`` (the default), the storage-list refactor, the
reclaim-batch factoring, the GC partition hook, and the stats()
addition must all leave a seeded YCSB-A run byte-identical — same
metrics JSON, same final virtual time, bit for bit.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.runner import preload, run_workload
from repro.bench.stores import build_prism
from repro.workloads.ycsb import WORKLOADS

GOLDEN = Path(__file__).parent.parent / "cache" / "golden_ycsb_a.metrics.json"
GOLDEN_FINAL_VTIME = "0.007268891925289018"


def test_tiering_off_run_is_byte_identical_to_seed():
    store = build_prism(num_threads=4)
    assert store.tiering is None
    assert store.cold_ssds == []
    preload(store, 1500, num_threads=4)
    result = run_workload(store, WORKLOADS["A"], 3000, 1500, 4)
    payload = json.dumps(result.metrics, sort_keys=True, indent=1) + "\n"
    assert payload == GOLDEN.read_text()
    assert repr(store.clock.now) == GOLDEN_FINAL_VTIME
